#include "obs/clock.h"

#include <chrono>

namespace dnslocate::obs::detail {

thread_local const ClockSource* t_clock = nullptr;

std::uint64_t steady_now_ns() {
  static const std::chrono::steady_clock::time_point anchor = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - anchor)
                                        .count());
}

}  // namespace dnslocate::obs::detail
