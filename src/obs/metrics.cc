#include "obs/metrics.h"

#include <functional>
#include <thread>

namespace dnslocate::obs {

namespace detail {
bool g_metrics_enabled = false;
bool g_tracing_enabled = false;
}  // namespace detail

namespace {
Config g_config;
}  // namespace

void enable(const Config& config) {
  g_config = config;
  if (g_config.trace_buffer_events == 0) g_config.trace_buffer_events = 1;
  detail::g_metrics_enabled = config.metrics;
  detail::g_tracing_enabled = config.tracing;
}

void disable() {
  detail::g_metrics_enabled = false;
  detail::g_tracing_enabled = false;
}

const Config& config() { return g_config; }

std::size_t shard_index() {
  thread_local const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kCounterShards;
  return index;
}

Histogram::Snapshot& Histogram::Snapshot::merge(const Snapshot& other) {
  // Merge two ascending (index, count) lists; equal indices add.
  std::vector<std::pair<std::size_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0, b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() || other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first, buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
  count += other.count;
  sum += other.sum;
  return *this;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) snap.buckets.emplace_back(i, n);
  }
  snap.count = count();
  snap.sum = sum();
  return snap;
}

void Histogram::merge_from(const Histogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& Registry::counter(std::string_view name) {
  netbase::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>(std::string(name)))
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  netbase::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>(std::string(name))).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  netbase::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::string(name)))
             .first;
  return *it->second;
}

void Registry::reset() {
  netbase::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsSnapshot Registry::snapshot() const {
  netbase::MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) snap.counters.emplace_back(name, counter->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) snap.gauges.emplace_back(name, gauge->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    snap.histograms.emplace_back(name, histogram->snapshot());
  return snap;
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace dnslocate::obs
