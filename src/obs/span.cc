#include "obs/span.h"

#include <algorithm>

namespace dnslocate::obs {

namespace detail {
thread_local std::uint16_t t_span_depth = 0;
thread_local std::uint32_t t_probe = 0;
}  // namespace detail

std::vector<SpanEvent> TraceRing::events() const {
  std::vector<SpanEvent> out;
  std::size_t have = static_cast<std::size_t>(std::min<std::uint64_t>(next_, events_.size()));
  out.reserve(have);
  std::size_t start = next_ > events_.size() ? next_ % events_.size() : 0;
  for (std::size_t i = 0; i < have; ++i) out.push_back(events_[(start + i) % events_.size()]);
  return out;
}

namespace {
/// Per-thread handle: keeps the ring alive (the collector may clear() while
/// this thread still exists) and re-registers when the collector's
/// generation moves on.
struct ThreadRing {
  std::shared_ptr<TraceRing> ring;
  std::uint64_t generation = ~std::uint64_t{0};
};
thread_local ThreadRing t_ring;
}  // namespace

TraceRing& TraceCollector::ring_for_this_thread() {
  if (t_ring.ring != nullptr &&
      t_ring.generation == generation_.load(std::memory_order_acquire))
    return *t_ring.ring;
  return register_ring();
}

TraceRing& TraceCollector::register_ring() {
  netbase::MutexLock lock(mutex_);
  t_ring.ring = std::make_shared<TraceRing>(config().trace_buffer_events, next_ordinal_++);
  t_ring.generation = generation_.load(std::memory_order_relaxed);
  rings_.push_back(t_ring.ring);
  return *t_ring.ring;
}

std::vector<SpanEvent> TraceCollector::gather() const {
  netbase::MutexLock lock(mutex_);
  std::vector<SpanEvent> out;
  for (const auto& ring : rings_) {
    auto events = ring->events();
    out.insert(out.end(), events.begin(), events.end());
  }
  return out;
}

std::uint64_t TraceCollector::dropped() const {
  netbase::MutexLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void TraceCollector::clear() {
  netbase::MutexLock lock(mutex_);
  rings_.clear();
  next_ordinal_ = 0;
  generation_.fetch_add(1, std::memory_order_release);
}

TraceCollector& collector() {
  static TraceCollector instance;
  return instance;
}

}  // namespace dnslocate::obs
