// Process-wide metrics registry: lock-free sharded counters, gauges, and
// log-linear-bucket latency histograms with deterministic merge.
//
// Design goals, in order:
//  1. Zero cost when disabled. Observability is compiled in unconditionally,
//     but with the runtime flag off every record path is a single branch on a
//     plain (non-atomic) bool — no atomic operations, no TLS, no allocation.
//  2. Exactness when enabled. Counters are sharded across cache lines and
//     incremented with relaxed atomics, so concurrent increments sum exactly
//     (the fleet-wide totals must agree to the digit with the per-probe
//     structs they mirror — see docs/ARCHITECTURE.md, "Observability").
//  3. Deterministic export. Snapshots iterate metrics in name order and
//     histogram merge is bucket-wise addition: associative, commutative, and
//     independent of thread interleaving.
//
// The enable flag is intentionally a plain bool: it must be flipped while the
// process is quiescent (before worker threads spawn / after they join), which
// is how the examples, benches, and tests use it.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/thread_annotations.h"

namespace dnslocate::obs {

/// Runtime configuration, set by enable().
struct Config {
  bool metrics = false;
  bool tracing = false;
  /// Capacity (events) of each per-thread span ring buffer.
  std::size_t trace_buffer_events = 8192;
};

/// Turn observability on. Call while single-threaded (startup, or between
/// fleet runs); the flag reads are deliberately unsynchronized.
void enable(const Config& config);
/// Turn everything off again (the registry keeps its values until reset()).
void disable();
[[nodiscard]] const Config& config();

namespace detail {
// Plain bools: one predictable branch on the fast path, no atomics.
extern bool g_metrics_enabled;
extern bool g_tracing_enabled;
}  // namespace detail

[[nodiscard]] inline bool metrics_enabled() { return detail::g_metrics_enabled; }
[[nodiscard]] inline bool tracing_enabled() { return detail::g_tracing_enabled; }

/// Shard count for counters. Threads hash onto shards; the value is the sum.
inline constexpr std::size_t kCounterShards = 16;

/// Stable per-thread shard index (cached in a thread_local).
std::size_t shard_index();

/// Monotone counter, sharded to keep concurrent increments off a shared
/// cache line. value() sums the shards — exact regardless of interleaving.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t delta = 1) {
    if (!metrics_enabled()) return;
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Record regardless of the runtime flag (tests and internal bookkeeping).
  void add_always(std::uint64_t delta = 1) {
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) total += shard.value.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Shard& shard : shards_) shard.value.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kCounterShards> shards_{};
  std::string name_;
};

/// Last-write-wins signed gauge (set) with relaxed add for deltas.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(std::int64_t value) {
    if (!metrics_enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    if (!metrics_enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::atomic<std::int64_t> value_{0};
  std::string name_;
};

/// Log-linear-bucket histogram over unsigned 64-bit values (HdrHistogram
/// style): values below 2^kSubBucketBits land in unit-wide buckets; above
/// that, each power-of-two octave is split into 2^kSubBucketBits linear
/// sub-buckets, so relative error is bounded by 1/2^kSubBucketBits across
/// the whole range. Bucket boundaries depend only on these constants, so a
/// merge (bucket-wise add) is associative, commutative, and deterministic.
class Histogram {
 public:
  static constexpr unsigned kSubBucketBits = 4;  // 16 sub-buckets per octave
  static constexpr std::size_t kSubBucketCount = 1u << kSubBucketBits;
  static constexpr std::size_t kBucketCount =
      kSubBucketCount + (64 - kSubBucketBits) * kSubBucketCount;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void record(std::uint64_t value) {
    if (!metrics_enabled()) return;
    record_always(value);
  }
  void record_always(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket index for a value (stable across processes and hosts).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) {
    if (value < kSubBucketCount) return static_cast<std::size_t>(value);
    unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(value));
    unsigned shift = msb - kSubBucketBits;
    std::size_t sub = static_cast<std::size_t>(value >> shift) & (kSubBucketCount - 1);
    std::size_t octave = msb - kSubBucketBits + 1;
    return octave * kSubBucketCount + sub;
  }

  /// Smallest value mapping to `index` (the exported bucket boundary).
  [[nodiscard]] static std::uint64_t bucket_lower_bound(std::size_t index) {
    if (index < kSubBucketCount) return index;
    std::size_t octave = index / kSubBucketCount;
    std::uint64_t sub = index % kSubBucketCount;
    return (kSubBucketCount + sub) << (octave - 1);
  }

  /// A point-in-time copy, and the unit of deterministic merging.
  struct Snapshot {
    std::vector<std::pair<std::size_t, std::uint64_t>> buckets;  // (index, count), ascending
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    Snapshot& merge(const Snapshot& other);
    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Fold another histogram's occupancy into this one (deterministic).
  void merge_from(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::string name_;
};

/// Everything the exporters need, captured at one instant, name-sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/// Name -> metric registry. Lookup takes a mutex; instrumentation sites
/// cache the returned reference in a function-local static, so the lock is
/// paid once per site, not per event. Metrics are never deleted (reset()
/// only zeroes them), so cached references stay valid for process lifetime.
class Registry {
 public:
  Counter& counter(std::string_view name) DNSLOCATE_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) DNSLOCATE_EXCLUDES(mutex_);
  Histogram& histogram(std::string_view name) DNSLOCATE_EXCLUDES(mutex_);

  /// Zero every metric (benches and tests; handles stay valid).
  void reset() DNSLOCATE_EXCLUDES(mutex_);

  /// Deterministic (name-ordered) copy of every metric.
  [[nodiscard]] MetricsSnapshot snapshot() const DNSLOCATE_EXCLUDES(mutex_);

 private:
  // The registration lock: guards the name->metric maps, never the metric
  // values (those are atomics inside Counter/Gauge/Histogram, updated
  // lock-free by instrumentation sites holding cached references).
  mutable netbase::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      DNSLOCATE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      DNSLOCATE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      DNSLOCATE_GUARDED_BY(mutex_);
};

/// The process-wide registry the instrumentation records into.
Registry& registry();

}  // namespace dnslocate::obs
