// Timestamp source for spans and latency histograms.
//
// The default is the process steady clock (anchored at first use, so
// timestamps start near zero). Simulated contexts install a per-thread
// override wrapping the simulator's event clock: a probe measured over
// `SimTransport` then stamps every span and histogram sample with simulated
// nanoseconds, making fleet traces bit-identical across runs and hosts —
// the wall clock never leaks into simulated telemetry. Real-socket
// transports leave the default in place and measure wall time, which is the
// honest reading there. See ISSUE/ARCHITECTURE "Observability".
#pragma once

#include <cstdint>

namespace dnslocate::obs {

/// Source of "now" in nanoseconds. Implementations must be monotone
/// per-thread for the duration of their installation.
class ClockSource {
 public:
  virtual ~ClockSource() = default;
  [[nodiscard]] virtual std::uint64_t now_ns() const = 0;
};

namespace detail {
extern thread_local const ClockSource* t_clock;
/// Steady clock nanoseconds since the process anchor (first call).
std::uint64_t steady_now_ns();
}  // namespace detail

/// Current time from this thread's installed clock (steady by default).
[[nodiscard]] inline std::uint64_t now_ns() {
  const ClockSource* clock = detail::t_clock;
  return clock != nullptr ? clock->now_ns() : detail::steady_now_ns();
}

/// True when a simulated (or otherwise overridden) clock is installed.
[[nodiscard]] inline bool thread_clock_overridden() { return detail::t_clock != nullptr; }

/// RAII install of a clock source for the current thread; restores the
/// previous source (nesting-safe — SimTransport installs inside run_probe's
/// installation without harm).
class ScopedClock {
 public:
  explicit ScopedClock(const ClockSource* source) : previous_(detail::t_clock) {
    detail::t_clock = source;
  }
  ~ScopedClock() { detail::t_clock = previous_; }
  ScopedClock(const ScopedClock&) = delete;
  ScopedClock& operator=(const ScopedClock&) = delete;

 private:
  const ClockSource* previous_;
};

}  // namespace dnslocate::obs
