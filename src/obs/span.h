// Scoped tracing spans, recorded into fixed-size per-thread ring buffers.
//
// A Span is an RAII region: construction stamps the start, destruction
// stamps the end and pushes one fixed-size event into the calling thread's
// ring. Rings never allocate after creation and never block — when full
// they overwrite the oldest event and count the loss, so tracing a
// multi-hour fleet costs bounded memory. Nesting is tracked with a
// thread-local depth, and ScopedProbe attributes every span opened inside
// it to a probe id, which the Chrome-trace exporter uses as the trace "tid"
// (per-probe lanes with simulated-clock timestamps are monotone and
// deterministic; see obs/clock.h).
//
// Span names must be string literals (or otherwise outlive the collector):
// events store the pointer, not a copy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netbase/thread_annotations.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace dnslocate::obs {

/// One completed span. `probe` is probe_id + 1 (0 = unattributed);
/// `sim_clock` records whether the timestamps came from a simulated clock.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t probe = 0;
  std::uint32_t thread = 0;  // ring owner's ordinal (registration order)
  std::uint16_t depth = 0;
  bool sim_clock = false;
};

/// Fixed-capacity single-producer ring of span events. The owning thread
/// pushes; readers must only look while the producer is quiescent (after
/// joins / between runs), which is when exports happen.
class TraceRing {
 public:
  TraceRing(std::size_t capacity, std::uint32_t thread_ordinal)
      : events_(capacity), thread_(thread_ordinal) {}

  void push(const SpanEvent& event) {
    SpanEvent& slot = events_[next_ % events_.size()];
    slot = event;
    slot.thread = thread_;
    ++next_;
  }

  /// Events in record order, oldest first (at most `capacity`).
  [[nodiscard]] std::vector<SpanEvent> events() const;
  [[nodiscard]] std::uint64_t recorded() const { return next_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return next_ > events_.size() ? next_ - events_.size() : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return events_.size(); }
  [[nodiscard]] std::uint32_t thread_ordinal() const { return thread_; }

 private:
  std::vector<SpanEvent> events_;
  std::uint64_t next_ = 0;
  std::uint32_t thread_;
};

/// Owns every thread's ring. Threads register lazily on their first span;
/// rings outlive their threads (shared_ptr), so a fleet's worker spans are
/// still exportable after the pool joins.
class TraceCollector {
 public:
  /// The calling thread's ring. The fast path is one TLS read and one
  /// relaxed generation check; the mutex is taken only on first use per
  /// thread (and again after clear() invalidates the cached ring).
  TraceRing& ring_for_this_thread() DNSLOCATE_EXCLUDES(mutex_);

  /// Every event from every ring, oldest-first per ring, rings in
  /// registration order. Call only at quiescent points.
  [[nodiscard]] std::vector<SpanEvent> gather() const DNSLOCATE_EXCLUDES(mutex_);

  /// Events lost to ring overwrite, summed over rings.
  [[nodiscard]] std::uint64_t dropped() const DNSLOCATE_EXCLUDES(mutex_);

  /// Drop all rings (live threads re-register on their next span).
  void clear() DNSLOCATE_EXCLUDES(mutex_);

 private:
  TraceRing& register_ring() DNSLOCATE_EXCLUDES(mutex_);

  // Guards ring registration, not ring contents: each TraceRing is
  // single-producer (its owning thread) and only read at quiescent points.
  mutable netbase::Mutex mutex_;
  std::vector<std::shared_ptr<TraceRing>> rings_ DNSLOCATE_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> generation_{0};
  std::uint32_t next_ordinal_ DNSLOCATE_GUARDED_BY(mutex_) = 0;
};

/// The process-wide collector the spans record into.
TraceCollector& collector();

namespace detail {
extern thread_local std::uint16_t t_span_depth;
extern thread_local std::uint32_t t_probe;  // probe_id + 1; 0 = none
}  // namespace detail

/// Probe id attributed to spans on this thread (probe_id + 1; 0 = none).
[[nodiscard]] inline std::uint32_t current_probe() { return detail::t_probe; }

/// RAII probe attribution: spans opened on this thread while alive carry
/// `probe_id`. Nests (inner wins, outer restored).
class ScopedProbe {
 public:
  explicit ScopedProbe(std::uint32_t probe_id) : previous_(detail::t_probe) {
    detail::t_probe = probe_id + 1;
  }
  ~ScopedProbe() { detail::t_probe = previous_; }
  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

 private:
  std::uint32_t previous_;
};

/// RAII span. When tracing is disabled, construction and destruction are a
/// single branch each — no clock read, no TLS write, no ring access.
class Span {
 public:
  explicit Span(const char* name) {
    if (!tracing_enabled()) return;
    name_ = name;
    start_ = now_ns();
    depth_ = detail::t_span_depth++;
  }
  ~Span() {
    if (name_ == nullptr) return;
    --detail::t_span_depth;
    SpanEvent event;
    event.name = name_;
    event.start_ns = start_;
    event.end_ns = now_ns();
    event.probe = detail::t_probe;
    event.depth = depth_;
    event.sim_clock = thread_clock_overridden();
    collector().ring_for_this_thread().push(event);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint16_t depth_ = 0;
};

}  // namespace dnslocate::obs
