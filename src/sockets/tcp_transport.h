// DNS over TCP (RFC 7766): the transport clients fall back to when a UDP
// response comes back truncated (TC=1). One connection per query — the
// simple, correct behaviour for a measurement tool.
#pragma once

#include <chrono>

#include "core/transport.h"

namespace dnslocate::sockets {

/// Plain TCP DNS transport with 2-octet length framing. Runs through the
/// shared exchange kernel (core/exchange.h), so TCP answers get the same
/// RFC 5452 acceptance, duplicate-window continuation, and arbitration
/// evidence (spoofed IDs, conflicting follow-up frames, 0x20 rewrites) as
/// every other channel — a stream is harder to inject into than a datagram
/// flow, but an in-path middlebox terminates it just as easily.
class TcpTransport : public core::QueryTransport {
 public:
  struct Config {
    /// Keep reading follow-up frames (a pipelining server or an in-path
    /// rewriter can send more than one) for this long after the first
    /// accepted answer. A server that closes the connection ends the
    /// window immediately, so the common case pays nothing.
    std::chrono::milliseconds duplicate_window{200};
    /// Default retry policy for queries whose QueryOptions carry none.
    /// Single-shot by default: each retry attempt is a fresh connection
    /// with a re-randomized query.
    core::RetryPolicy retry;
    /// Seed for the per-attempt re-randomization stream.
    std::uint64_t retry_seed = 0x5eed5eed;
  };

  TcpTransport() = default;
  explicit TcpTransport(Config config) : config_(config) {}

  core::QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                          const core::QueryOptions& options = {}) override;

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override;

 private:
  Config config_;
};

/// UDP-first transport with automatic TCP retry when the UDP answer is
/// truncated — what a stub resolver actually does. The localization
/// pipeline itself never needs this (its answers are small), but tools
/// built on the library do.
class FallbackTransport : public core::QueryTransport {
 public:
  FallbackTransport(core::QueryTransport& udp, core::QueryTransport& tcp)
      : udp_(udp), tcp_(tcp) {}

  core::QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                          const core::QueryOptions& options = {}) override;

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override {
    return udp_.supports_family(family);
  }
  [[nodiscard]] bool supports_ttl() const override { return udp_.supports_ttl(); }

  [[nodiscard]] std::uint64_t tcp_retries() const { return tcp_retries_; }

 private:
  core::QueryTransport& udp_;
  core::QueryTransport& tcp_;
  std::uint64_t tcp_retries_ = 0;
};

}  // namespace dnslocate::sockets
