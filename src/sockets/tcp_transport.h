// DNS over TCP (RFC 7766): the transport clients fall back to when a UDP
// response comes back truncated (TC=1). One connection per query — the
// simple, correct behaviour for a measurement tool.
#pragma once

#include <chrono>

#include "core/transport.h"

namespace dnslocate::sockets {

/// Plain TCP DNS transport with 2-octet length framing.
class TcpTransport : public core::QueryTransport {
 public:
  core::QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                          const core::QueryOptions& options = {}) override;

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override;

 private:
  core::QueryResult query_once(const netbase::Endpoint& server, const dnswire::Message& message,
                               const core::QueryOptions& options);
};

/// UDP-first transport with automatic TCP retry when the UDP answer is
/// truncated — what a stub resolver actually does. The localization
/// pipeline itself never needs this (its answers are small), but tools
/// built on the library do.
class FallbackTransport : public core::QueryTransport {
 public:
  FallbackTransport(core::QueryTransport& udp, core::QueryTransport& tcp)
      : udp_(udp), tcp_(tcp) {}

  core::QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                          const core::QueryOptions& options = {}) override;

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override {
    return udp_.supports_family(family);
  }
  [[nodiscard]] bool supports_ttl() const override { return udp_.supports_ttl(); }

  [[nodiscard]] std::uint64_t tcp_retries() const { return tcp_retries_; }

 private:
  core::QueryTransport& udp_;
  core::QueryTransport& tcp_;
  std::uint64_t tcp_retries_ = 0;
};

}  // namespace dnslocate::sockets
