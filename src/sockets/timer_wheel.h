// Hashed timer wheel for the async query engine: every per-query deadline
// (attempt timeout, retry backoff, duplicate-collection window) is one entry
// here, and the engine's single poll() loop asks the wheel how long it may
// sleep instead of each query sleeping on its own thread.
//
// Scale note: an engine caps in-flight queries in the tens, so the wheel
// favours simplicity over asymptotics — slots are flat vectors, rescheduling
// is lazy (a slot entry is live only if it still matches the key's current
// deadline), and next_deadline() is an exact scan of the active set.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace dnslocate::sockets {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  explicit TimerWheel(std::chrono::milliseconds tick = std::chrono::milliseconds(10),
                      std::size_t slots = 256)
      : tick_(tick), slots_(slots) {}

  /// Arm (or re-arm) the timer for `key`. A key has at most one live
  /// deadline: rescheduling supersedes the previous entry, which dies lazily
  /// in its old slot.
  void schedule(std::uint64_t key, TimePoint deadline) {
    active_[key] = deadline;
    std::uint64_t slot_tick = std::max(tick_of(deadline), last_tick_);
    slots_[static_cast<std::size_t>(slot_tick % slots_.size())].push_back(
        Entry{key, deadline});
  }

  /// Disarm `key` (no-op if not armed). The stale slot entry dies lazily.
  void cancel(std::uint64_t key) { active_.erase(key); }

  [[nodiscard]] bool empty() const { return active_.empty(); }
  [[nodiscard]] std::size_t size() const { return active_.size(); }

  /// Exact earliest live deadline — the engine's poll() horizon.
  [[nodiscard]] std::optional<TimePoint> next_deadline() const {
    std::optional<TimePoint> earliest;
    for (const auto& [key, deadline] : active_)
      if (!earliest || deadline < *earliest) earliest = deadline;
    return earliest;
  }

  /// Advance the wheel to `now`, collecting every key whose live deadline
  /// has passed. Due keys are disarmed before being returned.
  [[nodiscard]] std::vector<std::uint64_t> advance(TimePoint now) {
    std::vector<std::uint64_t> due;
    std::uint64_t now_tick = tick_of(now);
    // Scan every slot the hand passed over since the last advance (clamped
    // to one full revolution — beyond that the slots repeat). Re-scanning
    // the starting slot is harmless: entries are judged by deadline.
    std::uint64_t steps = now_tick >= last_tick_ ? now_tick - last_tick_ : 0;
    steps = std::min<std::uint64_t>(steps, slots_.size() - 1);
    for (std::uint64_t t = last_tick_; t <= last_tick_ + steps; ++t) {
      auto& slot = slots_[static_cast<std::size_t>(t % slots_.size())];
      std::size_t kept = 0;
      for (Entry& entry : slot) {
        auto it = active_.find(entry.key);
        if (it == active_.end() || it->second != entry.deadline) continue;  // superseded
        if (entry.deadline <= now) {
          due.push_back(entry.key);
          active_.erase(it);
          continue;
        }
        slot[kept++] = entry;  // future round of this slot
      }
      slot.resize(kept);
    }
    last_tick_ = now_tick;
    return due;
  }

 private:
  struct Entry {
    std::uint64_t key;
    TimePoint deadline;
  };

  [[nodiscard]] std::uint64_t tick_of(TimePoint when) const {
    return static_cast<std::uint64_t>(when.time_since_epoch() / tick_);
  }

  std::chrono::milliseconds tick_;
  std::vector<std::vector<Entry>> slots_;
  std::unordered_map<std::uint64_t, TimePoint> active_;
  std::uint64_t last_tick_ = 0;
};

}  // namespace dnslocate::sockets
