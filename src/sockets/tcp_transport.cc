#include "sockets/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/exchange.h"
#include "dnswire/encoder.h"
#include "obs/span.h"
#include "simnet/rng.h"

namespace dnslocate::sockets {
namespace {

class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }
  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

socklen_t to_sockaddr(const netbase::Endpoint& endpoint, sockaddr_storage& storage) {
  std::memset(&storage, 0, sizeof storage);
  if (endpoint.address.is_v4()) {
    auto* sa = reinterpret_cast<sockaddr_in*>(&storage);
    sa->sin_family = AF_INET;
    sa->sin_port = htons(endpoint.port);
    auto bytes = endpoint.address.v4().to_bytes();
    std::memcpy(&sa->sin_addr, bytes.data(), 4);
    return sizeof(sockaddr_in);
  }
  auto* sa = reinterpret_cast<sockaddr_in6*>(&storage);
  sa->sin6_family = AF_INET6;
  sa->sin6_port = htons(endpoint.port);
  const auto& bytes = endpoint.address.v6().bytes();
  std::memcpy(&sa->sin6_addr, bytes.data(), 16);
  return sizeof(sockaddr_in6);
}

using Clock = std::chrono::steady_clock;

/// Wait until the fd is ready for `events` or the deadline passes.
bool wait_ready(int fd, short events, Clock::time_point deadline) {
  while (true) {
    auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
    if (remaining.count() <= 0) return false;
    pollfd pfd{fd, events, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready > 0) return true;
    if (ready < 0 && errno == EINTR) continue;
    return false;
  }
}

bool send_all(int fd, const std::uint8_t* data, std::size_t size, Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < size) {
    if (!wait_ready(fd, POLLOUT, deadline)) return false;
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int fd, std::uint8_t* data, std::size_t size, Clock::time_point deadline) {
  std::size_t received = 0;
  while (received < size) {
    if (!wait_ready(fd, POLLIN, deadline)) return false;
    ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n == 0) return false;  // peer closed early
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

/// The TCP ExchangeChannel: one non-blocking connection per attempt,
/// RFC 7766 2-octet length framing, one framed message per receive(). The
/// connected stream pins the source (the kernel's wrong-source check can
/// never fire here), so over TCP the spoof evidence comes from frames that
/// fail RFC 5452 acceptance — a middlebox answering with the wrong ID or an
/// unechoed question is tallied exactly like a UDP off-path guess.
class TcpChannel final : public core::ExchangeChannel {
 public:
  TcpChannel(const netbase::Endpoint& server, const core::QueryOptions& options)
      : server_(server), options_(options) {}

  [[nodiscard]] std::chrono::nanoseconds now() override {
    return Clock::now().time_since_epoch();
  }

  bool begin_attempt_and_send(const dnswire::Message& attempt,
                              std::chrono::nanoseconds deadline) override {
    int domain = server_.address.is_v4() ? AF_INET : AF_INET6;
    fd_.reset(::socket(domain, SOCK_STREAM | SOCK_NONBLOCK, 0));
    if (!fd_.valid()) return false;
    auto deadline_at = Clock::time_point(deadline);

    sockaddr_storage dest{};
    socklen_t dest_len = to_sockaddr(server_, dest);
    int rc = ::connect(fd_.get(), reinterpret_cast<const sockaddr*>(&dest), dest_len);
    if (rc < 0 && errno != EINPROGRESS) return false;
    if (rc < 0) {
      if (!wait_ready(fd_.get(), POLLOUT, deadline_at)) return false;
      int error = 0;
      socklen_t len = sizeof error;
      ::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &error, &len);
      if (error != 0) return false;
    }

    // RFC 7766 §8: two-octet length prefix, then the message.
    dnswire::WireBuffer wire = dnswire::encode_message(attempt);
    if (wire.size() > 0xffff) return false;
    std::vector<std::uint8_t> framed;
    framed.reserve(wire.size() + 2);
    framed.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
    framed.push_back(static_cast<std::uint8_t>(wire.size() & 0xff));
    framed.insert(framed.end(), wire.begin(), wire.end());
    return send_all(fd_.get(), framed.data(), framed.size(), deadline_at);
  }

  Inbound* receive(std::chrono::nanoseconds horizon,
                   const core::CancelToken& cancel) override {
    if (cancel.cancelled()) return nullptr;
    auto horizon_at = Clock::time_point(horizon);
    std::uint8_t length_prefix[2];
    if (!recv_all(fd_.get(), length_prefix, 2, horizon_at)) return nullptr;
    std::size_t length = static_cast<std::size_t>(length_prefix[0]) << 8 | length_prefix[1];

    in_.kind = Inbound::Kind::datagram;
    in_.icmp_from.reset();
    in_.source_matches = true;  // the connected stream pins the peer
    in_.source = core::source_key_from(server_);
    in_.payload.resize(length);
    // A zero-length frame decodes as nothing and is tallied as malformed by
    // the kernel; the stream stays aligned for the next frame either way.
    if (length > 0 && !recv_all(fd_.get(), in_.payload.data(), length, horizon_at))
      return nullptr;
    return &in_;
  }

  void end_attempt() override { fd_.reset(); }

  bool wait_backoff(std::chrono::milliseconds backoff,
                    const core::CancelToken& cancel) override {
    return core::interruptible_backoff(backoff, cancel);
  }

 private:
  netbase::Endpoint server_;
  const core::QueryOptions& options_;
  Fd fd_;
  Inbound in_;
};

}  // namespace

bool TcpTransport::supports_family(netbase::IpFamily family) const {
  int domain = family == netbase::IpFamily::v4 ? AF_INET : AF_INET6;
  Fd fd(::socket(domain, SOCK_STREAM, 0));
  return fd.valid();
}

core::QueryResult TcpTransport::query(const netbase::Endpoint& server,
                                      const dnswire::Message& message,
                                      const core::QueryOptions& options) {
  obs::Span query_span("transport/query_tcp");
  core::ExchangePolicy policy;
  // Per-query options win; the transport-level default applies otherwise.
  policy.retry = options.retry.enabled() ? options.retry : config_.retry;
  policy.duplicate_window = config_.duplicate_window;
  simnet::Rng rng(config_.retry_seed ^ (static_cast<std::uint64_t>(message.id) << 32));
  TcpChannel channel(server, options);
  core::QueryResult result = core::run_exchange(channel, message, options, policy, rng);
  record_telemetry(result);
  return result;
}

core::QueryResult FallbackTransport::query(const netbase::Endpoint& server,
                                           const dnswire::Message& message,
                                           const core::QueryOptions& options) {
  core::QueryResult result = udp_.query(server, message, options);
  if (result.answered() && result.response->flags.tc) {
    ++tcp_retries_;
    if (obs::metrics_enabled()) {
      static obs::Counter& fallbacks =
          obs::registry().counter("transport_tcp_fallbacks_total");
      fallbacks.add_always(1);
    }
    core::QueryResult tcp_result = tcp_.query(server, message, options);
    if (tcp_result.answered()) return tcp_result;
    // TCP failed: the truncated UDP answer is still the best we have.
  }
  return result;
}

}  // namespace dnslocate::sockets
