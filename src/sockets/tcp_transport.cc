#include "sockets/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "obs/span.h"

namespace dnslocate::sockets {
namespace {

class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

 private:
  int fd_;
};

socklen_t to_sockaddr(const netbase::Endpoint& endpoint, sockaddr_storage& storage) {
  std::memset(&storage, 0, sizeof storage);
  if (endpoint.address.is_v4()) {
    auto* sa = reinterpret_cast<sockaddr_in*>(&storage);
    sa->sin_family = AF_INET;
    sa->sin_port = htons(endpoint.port);
    auto bytes = endpoint.address.v4().to_bytes();
    std::memcpy(&sa->sin_addr, bytes.data(), 4);
    return sizeof(sockaddr_in);
  }
  auto* sa = reinterpret_cast<sockaddr_in6*>(&storage);
  sa->sin6_family = AF_INET6;
  sa->sin6_port = htons(endpoint.port);
  const auto& bytes = endpoint.address.v6().bytes();
  std::memcpy(&sa->sin6_addr, bytes.data(), 16);
  return sizeof(sockaddr_in6);
}

using Clock = std::chrono::steady_clock;

/// Wait until the fd is ready for `events` or the deadline passes.
bool wait_ready(int fd, short events, Clock::time_point deadline) {
  while (true) {
    auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
    if (remaining.count() <= 0) return false;
    pollfd pfd{fd, events, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready > 0) return true;
    if (ready < 0 && errno == EINTR) continue;
    if (ready == 0) return false;
    return false;
  }
}

bool send_all(int fd, const std::uint8_t* data, std::size_t size, Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < size) {
    if (!wait_ready(fd, POLLOUT, deadline)) return false;
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int fd, std::uint8_t* data, std::size_t size, Clock::time_point deadline) {
  std::size_t received = 0;
  while (received < size) {
    if (!wait_ready(fd, POLLIN, deadline)) return false;
    ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n == 0) return false;  // peer closed early
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool TcpTransport::supports_family(netbase::IpFamily family) const {
  int domain = family == netbase::IpFamily::v4 ? AF_INET : AF_INET6;
  Fd fd(::socket(domain, SOCK_STREAM, 0));
  return fd.valid();
}

core::QueryResult TcpTransport::query(const netbase::Endpoint& server,
                                      const dnswire::Message& message,
                                      const core::QueryOptions& options) {
  obs::Span query_span("transport/query_tcp");
  core::QueryResult result = query_once(server, message, options);
  // TCP is single-shot: one attempt, counted as a timeout when it yielded
  // no acceptable response (connection failures look like silence too).
  result.retry.attempts = 1;
  result.retry.timeouts = result.answered() ? 0 : 1;
  record_telemetry(result);
  return result;
}

core::QueryResult TcpTransport::query_once(const netbase::Endpoint& server,
                                           const dnswire::Message& message,
                                           const core::QueryOptions& options) {
  core::QueryResult result;
  int domain = server.address.is_v4() ? AF_INET : AF_INET6;
  Fd fd(::socket(domain, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) return result;

  auto started = Clock::now();
  auto deadline = started + options.timeout;

  sockaddr_storage dest{};
  socklen_t dest_len = to_sockaddr(server, dest);
  int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&dest), dest_len);
  if (rc < 0 && errno != EINPROGRESS) return result;
  if (rc < 0) {
    if (!wait_ready(fd.get(), POLLOUT, deadline)) return result;
    int error = 0;
    socklen_t len = sizeof error;
    ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &error, &len);
    if (error != 0) return result;
  }

  // RFC 7766 §8: two-octet length prefix, then the message.
  dnswire::WireBuffer wire = dnswire::encode_message(message);
  if (wire.size() > 0xffff) return result;
  std::vector<std::uint8_t> framed;
  framed.reserve(wire.size() + 2);
  framed.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
  framed.push_back(static_cast<std::uint8_t>(wire.size() & 0xff));
  framed.insert(framed.end(), wire.begin(), wire.end());
  if (!send_all(fd.get(), framed.data(), framed.size(), deadline)) return result;

  std::uint8_t length_prefix[2];
  if (!recv_all(fd.get(), length_prefix, 2, deadline)) return result;
  std::size_t length = static_cast<std::size_t>(length_prefix[0]) << 8 | length_prefix[1];
  if (length == 0) return result;
  std::vector<std::uint8_t> body(length);
  if (!recv_all(fd.get(), body.data(), length, deadline)) return result;

  auto response = dnswire::decode_message(body);
  if (!response || !dnswire::is_acceptable_response(message, *response)) return result;
  result.status = core::QueryResult::Status::answered;
  result.rtt =
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - started);
  result.response = *response;
  result.all_responses.push_back(std::move(*response));
  return result;
}

core::QueryResult FallbackTransport::query(const netbase::Endpoint& server,
                                           const dnswire::Message& message,
                                           const core::QueryOptions& options) {
  core::QueryResult result = udp_.query(server, message, options);
  if (result.answered() && result.response->flags.tc) {
    ++tcp_retries_;
    if (obs::metrics_enabled()) {
      static obs::Counter& fallbacks =
          obs::registry().counter("transport_tcp_fallbacks_total");
      fallbacks.add_always(1);
    }
    core::QueryResult tcp_result = tcp_.query(server, message, options);
    if (tcp_result.answered()) return tcp_result;
    // TCP failed: the truncated UDP answer is still the best we have.
  }
  return result;
}

}  // namespace dnslocate::sockets
