// Event-driven batched query engine over real POSIX UDP sockets.
//
// Where UdpTransport opens one socket per attempt and sleeps through each
// query's timeout and backoff in turn, UdpEngine multiplexes every in-flight
// query of a batch over ONE shared non-blocking socket per address family.
// Responses are demultiplexed by (server endpoint, transaction ID,
// 0x20-encoded question name) — the same acceptance predicate RFC 5452
// prescribes and dnswire::is_acceptable_response implements — and every
// per-query deadline (attempt timeout, retry backoff, duplicate-collection
// window) lives on a timer wheel driven from a single poll() loop. A probe's
// wall clock becomes the max of its query timelines instead of their sum.
//
// Per-query semantics are deliberately identical to UdpTransport: same retry
// policy evaluation, same per-query re-randomization stream (seeded
// retry_seed ^ (original ID << 32)), same duplicate-collection window after
// the first answer, same cancellation outcome (abandoned queries report
// timeouts, answers are never fabricated). Only the scheduling differs.
#pragma once

#include <chrono>

#include "core/query_batch.h"
#include "core/transport.h"

namespace dnslocate::sockets {

class UdpEngine : public core::QueryTransport, public core::AsyncQueryTransport {
 public:
  struct Config {
    /// Collect duplicate responses (query replication) for this long after
    /// a query's first response arrives.
    std::chrono::milliseconds duplicate_window{200};
    /// Default retry policy for queries whose QueryOptions carry none.
    core::RetryPolicy retry;
    /// Seed for the per-attempt re-randomization streams (same scheme as
    /// UdpTransport, so retried attempts carry identical contents).
    std::uint64_t retry_seed = 0x5eed5eed;
    /// Admission cap: queries beyond this many stay queued until a slot
    /// frees. Bounds socket buffer pressure and burst size on the wire.
    std::size_t max_inflight = 64;
  };

  UdpEngine() = default;
  explicit UdpEngine(Config config) : config_(config) {}

  /// Execute the whole batch in one poll() loop, all queries in flight
  /// together (up to max_inflight).
  void run(core::QueryBatch& batch) override;

  [[nodiscard]] core::QueryTransport& transport() override { return *this; }

  /// Single query — a batch of one through the same event loop.
  core::QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                          const core::QueryOptions& options = {}) override;

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override;
  [[nodiscard]] bool supports_ttl() const override { return true; }

 private:
  Config config_;
};

}  // namespace dnslocate::sockets
