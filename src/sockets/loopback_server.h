// An in-process UDP DNS server bound to 127.0.0.1, backed by the same
// DnsResponder behaviours as the simulator. Lets the socket transport and
// the full pipeline be exercised end-to-end over real sockets in tests,
// with no network access.
#pragma once

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "netbase/endpoint.h"
#include "dnswire/encoder.h"
#include "resolvers/server_app.h"

namespace dnslocate::sockets {

class LoopbackDnsServer {
 public:
  /// Binds 127.0.0.1 on an OS-assigned port and serves `responder` on a
  /// background thread until destruction. With `serve_tcp`, also listens on
  /// the same port number over TCP (RFC 7766 framing). Throws
  /// std::runtime_error when a socket cannot be created.
  ///
  /// `response_delay` holds each UDP answer back by that duration without
  /// blocking the serve loop (deferred-send queue): the server keeps
  /// ingesting queries while answers are pending, so concurrent clients see
  /// realistic overlapping round-trip latency rather than head-of-line
  /// serialization.
  explicit LoopbackDnsServer(std::shared_ptr<resolvers::DnsResponder> responder,
                             bool serve_tcp = false,
                             std::chrono::milliseconds response_delay = {});
  ~LoopbackDnsServer();

  LoopbackDnsServer(const LoopbackDnsServer&) = delete;
  LoopbackDnsServer& operator=(const LoopbackDnsServer&) = delete;

  /// Where to send queries.
  [[nodiscard]] netbase::Endpoint endpoint() const { return endpoint_; }

  [[nodiscard]] std::uint64_t queries_served() const { return queries_served_.load(); }
  [[nodiscard]] std::uint64_t tcp_queries_served() const { return tcp_queries_served_.load(); }

 private:
  /// A UDP answer waiting out the configured response delay.
  struct PendingSend {
    std::chrono::steady_clock::time_point due;
    dnswire::WireBuffer wire;
    sockaddr_storage to;
    socklen_t to_len;
  };

  void serve();
  void serve_udp_datagram();
  void serve_tcp_connection();
  void flush_due_sends();

  // Concurrency model: no mutex on purpose. All mutable state below is
  // either confined to the serve thread (fds, pending_) or an atomic
  // crossed by the owner thread (running_ to stop, the served counters to
  // read) — so there is no capability to annotate and nothing for the
  // thread-safety analysis to check. Adding shared state here means
  // introducing a netbase::Mutex and DNSLOCATE_GUARDED_BY first (R9
  // polices src/sockets/).
  std::shared_ptr<resolvers::DnsResponder> responder_;
  int fd_ = -1;
  int tcp_fd_ = -1;
  netbase::Endpoint endpoint_;
  std::chrono::milliseconds response_delay_{0};
  std::deque<PendingSend> pending_;  // serve-thread only; due times ascend
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> queries_served_{0};
  std::atomic<std::uint64_t> tcp_queries_served_{0};
  std::thread thread_;
};

}  // namespace dnslocate::sockets
