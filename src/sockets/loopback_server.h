// An in-process UDP DNS server bound to 127.0.0.1, backed by the same
// DnsResponder behaviours as the simulator. Lets the socket transport and
// the full pipeline be exercised end-to-end over real sockets in tests,
// with no network access.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "netbase/endpoint.h"
#include "resolvers/server_app.h"

namespace dnslocate::sockets {

class LoopbackDnsServer {
 public:
  /// Binds 127.0.0.1 on an OS-assigned port and serves `responder` on a
  /// background thread until destruction. With `serve_tcp`, also listens on
  /// the same port number over TCP (RFC 7766 framing). Throws
  /// std::runtime_error when a socket cannot be created.
  explicit LoopbackDnsServer(std::shared_ptr<resolvers::DnsResponder> responder,
                             bool serve_tcp = false);
  ~LoopbackDnsServer();

  LoopbackDnsServer(const LoopbackDnsServer&) = delete;
  LoopbackDnsServer& operator=(const LoopbackDnsServer&) = delete;

  /// Where to send queries.
  [[nodiscard]] netbase::Endpoint endpoint() const { return endpoint_; }

  [[nodiscard]] std::uint64_t queries_served() const { return queries_served_.load(); }
  [[nodiscard]] std::uint64_t tcp_queries_served() const { return tcp_queries_served_.load(); }

 private:
  void serve();
  void serve_udp_datagram();
  void serve_tcp_connection();

  std::shared_ptr<resolvers::DnsResponder> responder_;
  int fd_ = -1;
  int tcp_fd_ = -1;
  netbase::Endpoint endpoint_;
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> queries_served_{0};
  std::atomic<std::uint64_t> tcp_queries_served_{0};
  std::thread thread_;
};

}  // namespace dnslocate::sockets
