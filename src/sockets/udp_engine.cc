#include "sockets/udp_engine.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>

#include "core/exchange.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "dnswire/view.h"
#include "obs/clock.h"
#include "obs/span.h"
#include "simnet/rng.h"
#include "sockets/timer_wheel.h"

namespace dnslocate::sockets {
namespace {

using Clock = std::chrono::steady_clock;

class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }
  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

socklen_t to_sockaddr(const netbase::Endpoint& endpoint, sockaddr_storage& storage) {
  std::memset(&storage, 0, sizeof storage);
  if (endpoint.address.is_v4()) {
    auto* sa = reinterpret_cast<sockaddr_in*>(&storage);
    sa->sin_family = AF_INET;
    sa->sin_port = htons(endpoint.port);
    auto bytes = endpoint.address.v4().to_bytes();
    std::memcpy(&sa->sin_addr, bytes.data(), 4);
    return sizeof(sockaddr_in);
  }
  auto* sa = reinterpret_cast<sockaddr_in6*>(&storage);
  sa->sin6_family = AF_INET6;
  sa->sin6_port = htons(endpoint.port);
  const auto& bytes = endpoint.address.v6().bytes();
  std::memcpy(&sa->sin6_addr, bytes.data(), 16);
  return sizeof(sockaddr_in6);
}

/// Decode the kernel-filled source address of a datagram.
std::optional<netbase::Endpoint> from_sockaddr(const sockaddr_storage& storage) {
  if (storage.ss_family == AF_INET) {
    const auto* sa = reinterpret_cast<const sockaddr_in*>(&storage);
    std::array<std::uint8_t, 4> bytes{};
    std::memcpy(bytes.data(), &sa->sin_addr, 4);
    return netbase::Endpoint{netbase::Ipv4Address::from_bytes(bytes), ntohs(sa->sin_port)};
  }
  if (storage.ss_family == AF_INET6) {
    const auto* sa = reinterpret_cast<const sockaddr_in6*>(&storage);
    netbase::Ipv6Address::Bytes bytes{};
    std::memcpy(bytes.data(), &sa->sin6_addr, 16);
    return netbase::Endpoint{netbase::Ipv6Address(bytes), ntohs(sa->sin6_port)};
  }
  return std::nullopt;
}

/// Granularity at which the event loop re-checks manually-cancellable
/// tokens (same slice the blocking transport uses).
constexpr std::chrono::milliseconds kCancelPollSlice{50};

/// Per-query execution state: the same timeline UdpTransport walks with
/// blocking waits, expressed as an explicit machine the event loop advances.
struct QueryState {
  enum class Phase {
    queued,       // admitted but no datagram sent yet (over max_inflight)
    waiting,      // attempt on the wire, no answer yet
    collecting,   // answered; gathering replication duplicates
    backing_off,  // between attempts
    done,
  };

  const core::QuerySpec* spec = nullptr;
  Phase phase = Phase::queued;
  core::RetryPolicy policy;
  unsigned budget = 1;
  unsigned attempt = 0;  // attempts sent so far
  dnswire::Message attempt_message;
  simnet::Rng rng{0};

  Clock::time_point sent_at{};
  Clock::time_point attempt_deadline{};
  std::optional<Clock::time_point> duplicate_deadline;

  /// Acceptance/arbitration state, owned by the exchange kernel's ledger —
  /// the engine's demux routes datagrams, the ledger judges them.
  core::ExchangeLedger ledger;
  core::RetryTelemetry telemetry;

  [[nodiscard]] bool in_flight() const {
    return phase == Phase::waiting || phase == Phase::collecting;
  }
  /// The horizon the timer wheel should wake this query at.
  [[nodiscard]] Clock::time_point horizon() const {
    if (phase == Phase::collecting && duplicate_deadline)
      return std::min(attempt_deadline, *duplicate_deadline);
    return attempt_deadline;
  }
};

}  // namespace

bool UdpEngine::supports_family(netbase::IpFamily family) const {
  int domain = family == netbase::IpFamily::v4 ? AF_INET : AF_INET6;
  Fd fd(::socket(domain, SOCK_DGRAM, 0));
  return fd.valid();
}

void UdpEngine::run(core::QueryBatch& batch) {
  obs::Span run_span("engine/batch_run");
  std::uint64_t started_ns = obs::now_ns();
  if (batch.empty()) {
    core::note_batch_metrics(0, obs::now_ns() - started_ns, 0, false);
    return;
  }

  std::vector<QueryState> states(batch.size());
  std::deque<std::size_t> admission;       // not yet sent, in submission order
  std::unordered_multimap<std::uint16_t, std::size_t> by_id;  // live attempt IDs
  // Attempt IDs whose transaction finished (completed, cancelled, or the
  // attempt was retired by a retry). A response matching one of these is
  // dropped — but verified and counted, so arbitration evidence is exact.
  std::unordered_multimap<std::uint16_t, std::size_t> retired_ids;
  TimerWheel wheel;
  Fd socket_v4;
  Fd socket_v6;
  std::size_t inflight = 0;
  std::size_t peak_inflight = 0;
  std::size_t completed = 0;
  bool drained = false;
  bool any_cancelable = false;

  for (std::size_t i = 0; i < batch.size(); ++i) {
    QueryState& q = states[i];
    q.spec = &batch.spec(i);
    q.policy = q.spec->options.retry.enabled() ? q.spec->options.retry : config_.retry;
    q.budget = std::max(1u, q.policy.max_attempts);
    q.attempt_message = q.spec->message;
    // Same re-randomization stream UdpTransport derives, keyed by the
    // original transaction ID, so a retried attempt's fresh ID and 0x20
    // pattern are identical under either engine.
    q.rng = simnet::Rng(config_.retry_seed ^
                        (static_cast<std::uint64_t>(q.spec->message.id) << 32));
    if (q.spec->options.cancel.active()) any_cancelable = true;
    admission.push_back(i);
  }

  auto socket_for = [&](const netbase::Endpoint& server) -> int {
    Fd& fd = server.address.is_v4() ? socket_v4 : socket_v6;
    if (!fd.valid()) {
      int domain = server.address.is_v4() ? AF_INET : AF_INET6;
      fd.reset(::socket(domain, SOCK_DGRAM | SOCK_NONBLOCK, 0));
    }
    return fd.get();
  };

  auto unmap_id = [&](std::size_t i) {
    auto range = by_id.equal_range(states[i].attempt_message.id);
    for (auto it = range.first; it != range.second; ++it)
      if (it->second == i) {
        by_id.erase(it);
        retired_ids.emplace(states[i].attempt_message.id, i);
        break;
      }
  };

  auto complete = [&](std::size_t i) {
    QueryState& q = states[i];
    if (q.in_flight()) {
      --inflight;
      unmap_id(i);
    }
    wheel.cancel(i);
    q.phase = QueryState::Phase::done;
    q.ledger.result().retry = q.telemetry;
    batch.result(i) = q.ledger.result();
    record_telemetry(batch.result(i));
    ++completed;
  };

  auto send_attempt = [&](std::size_t i) {
    QueryState& q = states[i];
    ++q.attempt;
    q.telemetry.attempts = q.attempt;
    if (q.attempt > 1) core::prepare_retry_attempt(q.attempt_message, q.policy, q.rng);

    int fd = socket_for(q.spec->server);
    bool sent = false;
    if (fd >= 0) {
      if (q.spec->options.ttl) {
        int ttl = *q.spec->options.ttl;
        if (q.spec->server.address.is_v4())
          ::setsockopt(fd, IPPROTO_IP, IP_TTL, &ttl, sizeof ttl);
        else
          ::setsockopt(fd, IPPROTO_IPV6, IPV6_UNICAST_HOPS, &ttl, sizeof ttl);
      }
      sockaddr_storage dest{};
      socklen_t dest_len = to_sockaddr(q.spec->server, dest);
      dnswire::WireBuffer wire = dnswire::encode_message(q.attempt_message);
      sent = ::sendto(fd, wire.data(), wire.size(), 0,
                      reinterpret_cast<const sockaddr*>(&dest), dest_len) >= 0;
    }

    q.sent_at = Clock::now();
    if (!sent) {
      // Unsendable attempt (no socket / network down): burns the attempt
      // immediately, like UdpTransport's attempt() returning straight away.
      ++q.telemetry.timeouts;
      if (q.attempt < q.budget) {
        auto backoff = q.policy.backoff_before(q.attempt + 1);
        q.telemetry.backoff_waited += backoff;
        q.phase = QueryState::Phase::backing_off;
        q.attempt_deadline = q.sent_at + backoff;
        wheel.schedule(i, q.attempt_deadline);
      } else {
        complete(i);
      }
      return;
    }

    q.attempt_deadline = q.sent_at + q.spec->options.timeout;
    if (auto cancel_deadline = q.spec->options.cancel.deadline())
      q.attempt_deadline = std::min(q.attempt_deadline, *cancel_deadline);
    q.phase = QueryState::Phase::waiting;
    by_id.emplace(q.attempt_message.id, i);
    wheel.schedule(i, q.horizon());
  };

  auto admit = [&] {
    while (inflight < std::max<std::size_t>(1, config_.max_inflight) && !admission.empty()) {
      std::size_t i = admission.front();
      admission.pop_front();
      QueryState& q = states[i];
      if (q.spec->options.cancel.cancelled()) {
        // Drained before it was ever sent: an honest timeout with zero
        // attempts, never a fabricated answer.
        drained = true;
        complete(i);
        continue;
      }
      ++inflight;
      peak_inflight = std::max(peak_inflight, inflight);
      send_attempt(i);
      if (states[i].phase == QueryState::Phase::done ||
          states[i].phase == QueryState::Phase::backing_off)
        --inflight;  // send failed; slot freed (complete() handled done case)
    }
  };

  auto on_timer = [&](std::size_t i) {
    QueryState& q = states[i];
    switch (q.phase) {
      case QueryState::Phase::collecting:
        complete(i);  // duplicate window (or deadline) over; answer stands
        break;
      case QueryState::Phase::waiting: {
        // Attempt timed out.
        unmap_id(i);
        --inflight;
        ++q.telemetry.timeouts;
        if (q.attempt < q.budget && !q.spec->options.cancel.cancelled()) {
          auto backoff = q.policy.backoff_before(q.attempt + 1);
          q.telemetry.backoff_waited += backoff;
          q.phase = QueryState::Phase::backing_off;
          q.attempt_deadline = Clock::now() + backoff;
          wheel.schedule(i, q.attempt_deadline);
        } else {
          q.phase = QueryState::Phase::done;  // complete() below re-checks flight state
          wheel.cancel(i);
          q.ledger.result().retry = q.telemetry;
          batch.result(i) = q.ledger.result();
          record_telemetry(batch.result(i));
          ++completed;
        }
        break;
      }
      case QueryState::Phase::backing_off:
        // Backoff over: the slot was freed at timeout, so re-admit through
        // the in-flight cap.
        ++inflight;
        peak_inflight = std::max(peak_inflight, inflight);
        send_attempt(i);
        if (q.phase == QueryState::Phase::done || q.phase == QueryState::Phase::backing_off)
          --inflight;
        break;
      case QueryState::Phase::queued:
      case QueryState::Phase::done:
        break;
    }
  };

  auto drain_cancelled = [&] {
    for (std::size_t i = 0; i < states.size(); ++i) {
      QueryState& q = states[i];
      if (q.phase == QueryState::Phase::done || q.phase == QueryState::Phase::queued) continue;
      if (!q.spec->options.cancel.cancelled()) continue;
      if (q.phase == QueryState::Phase::collecting) {
        complete(i);  // already answered — the answer is kept, never dropped
        continue;
      }
      if (q.phase == QueryState::Phase::waiting) ++q.telemetry.timeouts;
      drained = true;
      complete(i);
    }
  };

  auto receive_on = [&](int fd) {
    while (true) {
      std::uint8_t buffer[4096];
      sockaddr_storage from{};
      socklen_t from_len = sizeof from;
      ssize_t n = ::recvfrom(fd, buffer, sizeof buffer, 0,
                             reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n <= 0) break;  // EAGAIN: drained the socket

      // Prefilter with the zero-copy view: a structural walk yields the
      // transaction ID and QR bit without materializing names or records,
      // so datagrams that match no in-flight query (scans, stray retries,
      // late duplicates after completion) never pay for a full decode.
      auto view = dnswire::decode_view({buffer, static_cast<std::size_t>(n)});
      if (!view || !view->is_response()) continue;
      if (by_id.find(view->id()) == by_id.end()) {
        // No in-flight attempt wants this ID. If it matches a retired
        // transaction (completed, cancelled, or a re-randomized earlier
        // attempt), verify it really is that transaction's response and
        // count the drop — silent ignores would make arbitration evidence
        // inexact (see ISSUE: late/spoof demux hardening).
        auto retired = retired_ids.equal_range(view->id());
        if (retired.first == retired.second) continue;
        auto late_response = view->to_message();
        auto late_source = from_sockaddr(from);
        if (!late_response || !late_source) continue;
        for (auto it = retired.first; it != retired.second; ++it) {
          const QueryState& q = states[it->second];
          if (*late_source == q.spec->server &&
              core::response_acceptable(q.attempt_message, *late_response)) {
            record_late_duplicate();
            break;
          }
        }
        continue;
      }

      auto source = from_sockaddr(from);
      if (!source) continue;
      auto response = view->to_message();
      if (!response) {
        // Structurally walkable but not fully decodable, on a live ID:
        // injection debris, attributed to the first in-flight candidate.
        auto range = by_id.equal_range(view->id());
        for (auto it = range.first; it != range.second; ++it)
          if (states[it->second].in_flight()) {
            states[it->second].ledger.note_malformed();
            break;
          }
        continue;
      }

      // Demux: transaction ID narrows to candidates, then the full RFC 5452
      // acceptance predicate (ID + opcode + echoed 0x20-encoded question)
      // and the source endpoint pin the response to one in-flight query.
      auto range = by_id.equal_range(response->id);
      bool settled = false;  // delivered, or recognized as a duplicate
      std::size_t wrong_source = states.size();  // acceptable, wrong endpoint
      std::size_t unacceptable = states.size();  // right endpoint, failed check
      for (auto it = range.first; it != range.second; ++it) {
        std::size_t i = it->second;
        QueryState& q = states[i];
        if (!q.in_flight()) continue;
        bool source_ok = *source == q.spec->server;
        bool acceptable = core::response_acceptable(q.attempt_message, *response);
        if (!source_ok || !acceptable) {
          if (acceptable) wrong_source = i;           // wrong-egress injection
          else if (source_ok) unacceptable = i;       // ID hit, question/0x20 miss
          continue;
        }

        // The ledger arbitrates (dedup, 0x20 evidence, accept-or-conflict);
        // the engine only reacts to the disposition: a first accept opens
        // the duplicate-collection window on the timer wheel.
        auto rtt =
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - q.sent_at);
        auto disposition = q.ledger.deliver(
            q.attempt_message, std::move(*response),
            core::source_key_from(reinterpret_cast<const std::uint8_t*>(&from),
                                  static_cast<std::size_t>(from_len)),
            core::payload_fingerprint(buffer, static_cast<std::size_t>(n)), rtt);
        settled = true;
        if (disposition == core::ExchangeLedger::Disposition::accepted) {
          q.duplicate_deadline = Clock::now() + config_.duplicate_window;
          q.phase = QueryState::Phase::collecting;
          wheel.schedule(i, q.horizon());
        }
        break;
      }
      if (!settled) {
        if (wrong_source != states.size())
          states[wrong_source].ledger.note_spoof();
        else if (unacceptable != states.size())
          states[unacceptable].ledger.note_spoof();
      }
    }
  };

  admit();
  while (completed < batch.size()) {
    drain_cancelled();
    admit();
    if (completed >= batch.size()) break;

    auto now = Clock::now();
    for (std::size_t i : wheel.advance(now)) on_timer(i);
    drain_cancelled();
    admit();
    if (completed >= batch.size()) break;

    auto horizon = wheel.next_deadline();
    auto timeout = std::chrono::milliseconds(1000);
    if (horizon) {
      timeout = std::chrono::duration_cast<std::chrono::milliseconds>(*horizon - Clock::now());
      // Round up so a wake never lands just before the deadline it serves.
      timeout = std::max(timeout, std::chrono::milliseconds(0)) + std::chrono::milliseconds(1);
    }
    if (any_cancelable) timeout = std::min(timeout, kCancelPollSlice);

    pollfd pfds[2];
    nfds_t nfds = 0;
    if (socket_v4.valid()) pfds[nfds++] = pollfd{socket_v4.get(), POLLIN, 0};
    if (socket_v6.valid()) pfds[nfds++] = pollfd{socket_v6.get(), POLLIN, 0};
    if (nfds == 0) {
      // No socket could be opened; timers alone drive progress.
      std::this_thread::sleep_for(std::min(timeout, std::chrono::milliseconds(5)));
      continue;
    }

    int ready = ::poll(pfds, nfds, static_cast<int>(timeout.count()));
    if (ready < 0 && errno != EINTR) break;
    if (ready > 0)
      for (nfds_t p = 0; p < nfds; ++p)
        if ((pfds[p].revents & POLLIN) != 0) receive_on(pfds[p].fd);
  }

  // Safety net: a broken poll loop must still fill every slot (as timeouts).
  for (std::size_t i = 0; i < states.size(); ++i)
    if (states[i].phase != QueryState::Phase::done) {
      states[i].ledger.result().retry = states[i].telemetry;
      batch.result(i) = states[i].ledger.result();
      record_telemetry(batch.result(i));
    }

  if (drained) batch.mark_drained();
  core::note_batch_metrics(batch.size(), obs::now_ns() - started_ns, peak_inflight, drained);
}

core::QueryResult UdpEngine::query(const netbase::Endpoint& server,
                                   const dnswire::Message& message,
                                   const core::QueryOptions& options) {
  core::QueryBatch batch;
  batch.add(server, message, options);
  run(batch);
  return batch.result(0);
}

}  // namespace dnslocate::sockets
