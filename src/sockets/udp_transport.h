// Real-network QueryTransport over POSIX UDP sockets. This is what makes
// the library deployable: the same LocalizationPipeline that runs against
// the simulator runs, unchanged, against the actual Internet from any host
// that can send DNS queries (no root needed — except for the optional TTL
// probing, which uses the IP_TTL/IPV6_UNICAST_HOPS socket options and works
// unprivileged on Linux too).
#pragma once

#include <chrono>

#include "core/transport.h"

namespace dnslocate::sockets {

class UdpTransport : public core::QueryTransport {
 public:
  struct Config {
    /// Collect duplicate responses (query replication) for this long after
    /// the first response arrives.
    std::chrono::milliseconds duplicate_window{200};
    /// Number of retransmissions on timeout (0 = single shot). The
    /// localization technique treats timeouts as meaningful, so retries
    /// default off.
    unsigned retries = 0;
  };

  UdpTransport() = default;
  explicit UdpTransport(Config config) : config_(config) {}

  core::QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                          const core::QueryOptions& options = {}) override;

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override;
  [[nodiscard]] bool supports_ttl() const override { return true; }

 private:
  core::QueryResult attempt(const netbase::Endpoint& server, const dnswire::Message& message,
                            const core::QueryOptions& options);

  Config config_;
};

}  // namespace dnslocate::sockets
