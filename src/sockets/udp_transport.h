// Real-network QueryTransport over POSIX UDP sockets. This is what makes
// the library deployable: the same LocalizationPipeline that runs against
// the simulator runs, unchanged, against the actual Internet from any host
// that can send DNS queries (no root needed — except for the optional TTL
// probing, which uses the IP_TTL/IPV6_UNICAST_HOPS socket options and works
// unprivileged on Linux too).
#pragma once

#include <chrono>

#include "core/transport.h"

namespace dnslocate::sockets {

class UdpTransport : public core::QueryTransport {
 public:
  struct Config {
    /// Collect duplicate responses (query replication) for this long after
    /// the first response arrives.
    std::chrono::milliseconds duplicate_window{200};
    /// Default retry policy for queries whose QueryOptions carry none. The
    /// localization technique treats timeouts as meaningful, so retries
    /// default off (single shot); when enabled, each attempt backs off
    /// exponentially and is re-randomized (fresh transaction ID, fresh
    /// 0x20 case bits) so stale responses cannot satisfy the retry.
    core::RetryPolicy retry;
    /// Seed for the per-attempt re-randomization stream.
    std::uint64_t retry_seed = 0x5eed5eed;
  };

  UdpTransport() = default;
  explicit UdpTransport(Config config) : config_(config) {}

  core::QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                          const core::QueryOptions& options = {}) override;

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override;
  [[nodiscard]] bool supports_ttl() const override { return true; }

 private:
  core::QueryResult attempt(const netbase::Endpoint& server, const dnswire::Message& message,
                            const core::QueryOptions& options);

  Config config_;
};

}  // namespace dnslocate::sockets
