#include "sockets/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/exchange.h"
#include "dnswire/encoder.h"
#include "obs/span.h"
#include "simnet/rng.h"

namespace dnslocate::sockets {
namespace {

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }
  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Build a sockaddr for the endpoint. Returns the length used.
socklen_t to_sockaddr(const netbase::Endpoint& endpoint, sockaddr_storage& storage) {
  std::memset(&storage, 0, sizeof storage);
  if (endpoint.address.is_v4()) {
    auto* sa = reinterpret_cast<sockaddr_in*>(&storage);
    sa->sin_family = AF_INET;
    sa->sin_port = htons(endpoint.port);
    auto bytes = endpoint.address.v4().to_bytes();
    std::memcpy(&sa->sin_addr, bytes.data(), 4);
    return sizeof(sockaddr_in);
  }
  auto* sa = reinterpret_cast<sockaddr_in6*>(&storage);
  sa->sin6_family = AF_INET6;
  sa->sin6_port = htons(endpoint.port);
  const auto& bytes = endpoint.address.v6().bytes();
  std::memcpy(&sa->sin6_addr, bytes.data(), 16);
  return sizeof(sockaddr_in6);
}

/// Granularity at which the receive wait re-checks a manually-cancellable
/// token (a deadline token caps the kernel's horizon directly).
constexpr std::chrono::milliseconds kCancelPollSlice{50};

using Clock = std::chrono::steady_clock;

/// The real-socket ExchangeChannel: one fresh SOCK_DGRAM socket per attempt
/// (so a straggler to an earlier attempt can never land on the retry's
/// flow), poll-sliced receive, sockaddr-byte source identity.
class UdpChannel final : public core::ExchangeChannel {
 public:
  UdpChannel(const netbase::Endpoint& server, const core::QueryOptions& options)
      : server_(server), options_(options) {}

  [[nodiscard]] std::chrono::nanoseconds now() override {
    return Clock::now().time_since_epoch();
  }

  bool begin_attempt_and_send(const dnswire::Message& attempt,
                              std::chrono::nanoseconds) override {
    int domain = server_.address.is_v4() ? AF_INET : AF_INET6;
    fd_.reset(::socket(domain, SOCK_DGRAM, 0));
    if (!fd_.valid()) return false;

    if (options_.ttl) {
      int ttl = *options_.ttl;
      if (server_.address.is_v4())
        ::setsockopt(fd_.get(), IPPROTO_IP, IP_TTL, &ttl, sizeof ttl);
      else
        ::setsockopt(fd_.get(), IPPROTO_IPV6, IPV6_UNICAST_HOPS, &ttl, sizeof ttl);
    }

    dest_len_ = to_sockaddr(server_, dest_);
    dnswire::WireBuffer wire = dnswire::encode_message(attempt);
    return ::sendto(fd_.get(), wire.data(), wire.size(), 0,
                    reinterpret_cast<const sockaddr*>(&dest_), dest_len_) >= 0;
  }

  Inbound* receive(std::chrono::nanoseconds horizon,
                   const core::CancelToken& cancel) override {
    while (true) {
      if (cancel.cancelled()) return nullptr;
      auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(horizon - now());
      if (remaining.count() <= 0) return nullptr;
      if (cancel.active()) remaining = std::min(remaining, kCancelPollSlice);

      pollfd pfd{fd_.get(), POLLIN, 0};
      int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) return nullptr;
      if (ready == 0) continue;  // slice elapsed or horizon reached; loop re-checks

      std::uint8_t buffer[4096];
      sockaddr_storage from{};
      socklen_t from_len = sizeof from;
      ssize_t n = ::recvfrom(fd_.get(), buffer, sizeof buffer, 0,
                             reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n <= 0) continue;

      // The reused slot (and its payload capacity) is valid until the next
      // receive(), per the seam contract.
      in_.kind = Inbound::Kind::datagram;
      in_.icmp_from.reset();
      in_.payload.assign(buffer, buffer + n);
      in_.source_matches =
          from_len == dest_len_ && std::memcmp(&from, &dest_, dest_len_) == 0;
      in_.source = core::source_key_from(reinterpret_cast<const std::uint8_t*>(&from),
                                         static_cast<std::size_t>(from_len));
      return &in_;
    }
  }

  void end_attempt() override { fd_.reset(); }

  bool wait_backoff(std::chrono::milliseconds backoff,
                    const core::CancelToken& cancel) override {
    return core::interruptible_backoff(backoff, cancel);
  }

 private:
  netbase::Endpoint server_;
  const core::QueryOptions& options_;
  Fd fd_;
  sockaddr_storage dest_{};
  socklen_t dest_len_ = 0;
  Inbound in_;
};

}  // namespace

bool UdpTransport::supports_family(netbase::IpFamily family) const {
  int domain = family == netbase::IpFamily::v4 ? AF_INET : AF_INET6;
  Fd fd(::socket(domain, SOCK_DGRAM, 0));
  return fd.valid();
}

core::QueryResult UdpTransport::query(const netbase::Endpoint& server,
                                      const dnswire::Message& message,
                                      const core::QueryOptions& options) {
  obs::Span query_span("transport/query");
  core::ExchangePolicy policy;
  // Per-query options win; the transport-level default applies otherwise.
  policy.retry = options.retry.enabled() ? options.retry : config_.retry;
  policy.duplicate_window = config_.duplicate_window;
  simnet::Rng rng(config_.retry_seed ^ (static_cast<std::uint64_t>(message.id) << 32));
  UdpChannel channel(server, options);
  core::QueryResult result = core::run_exchange(channel, message, options, policy, rng);
  record_telemetry(result);
  return result;
}

}  // namespace dnslocate::sockets
