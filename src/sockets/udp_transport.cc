#include "sockets/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "core/retry.h"
#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "obs/span.h"
#include "simnet/rng.h"

namespace dnslocate::sockets {
namespace {

/// RAII file descriptor.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

 private:
  int fd_;
};

/// Build a sockaddr for the endpoint. Returns the length used.
socklen_t to_sockaddr(const netbase::Endpoint& endpoint, sockaddr_storage& storage) {
  std::memset(&storage, 0, sizeof storage);
  if (endpoint.address.is_v4()) {
    auto* sa = reinterpret_cast<sockaddr_in*>(&storage);
    sa->sin_family = AF_INET;
    sa->sin_port = htons(endpoint.port);
    auto bytes = endpoint.address.v4().to_bytes();
    std::memcpy(&sa->sin_addr, bytes.data(), 4);
    return sizeof(sockaddr_in);
  }
  auto* sa = reinterpret_cast<sockaddr_in6*>(&storage);
  sa->sin6_family = AF_INET6;
  sa->sin6_port = htons(endpoint.port);
  const auto& bytes = endpoint.address.v6().bytes();
  std::memcpy(&sa->sin6_addr, bytes.data(), 16);
  return sizeof(sockaddr_in6);
}

std::chrono::steady_clock::time_point now() { return std::chrono::steady_clock::now(); }

/// Granularity at which waits re-check a manually-cancellable token (a
/// deadline token needs no polling — it caps the wait horizon directly).
constexpr std::chrono::milliseconds kCancelPollSlice{50};

/// Sleep for `backoff`, returning early (false) if the token fires. The wait
/// is sliced so a manual cancel interrupts it, and capped by the token's
/// deadline so a supervised probe never sleeps past its budget.
bool interruptible_backoff(std::chrono::milliseconds backoff, const core::CancelToken& cancel) {
  if (!cancel.active()) {
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    return true;
  }
  auto wake = now() + backoff;
  if (auto deadline = cancel.deadline()) wake = std::min(wake, *deadline);
  while (!cancel.cancelled()) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(wake - now());
    if (remaining.count() <= 0) break;
    std::this_thread::sleep_for(std::min(remaining, kCancelPollSlice));
  }
  return !cancel.cancelled();
}

/// FNV-1a over a byte range, used to recognise byte-identical duplicates.
std::uint64_t bytes_hash(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) h = (h ^ data[i]) * 0x100000001b3ull;
  return h;
}

}  // namespace

bool UdpTransport::supports_family(netbase::IpFamily family) const {
  int domain = family == netbase::IpFamily::v4 ? AF_INET : AF_INET6;
  Fd fd(::socket(domain, SOCK_DGRAM, 0));
  return fd.valid();
}

core::QueryResult UdpTransport::attempt(const netbase::Endpoint& server,
                                        const dnswire::Message& message,
                                        const core::QueryOptions& options) {
  obs::Span attempt_span("transport/attempt");
  core::QueryResult result;
  int domain = server.address.is_v4() ? AF_INET : AF_INET6;
  Fd fd(::socket(domain, SOCK_DGRAM, 0));
  if (!fd.valid()) return result;

  if (options.ttl) {
    int ttl = *options.ttl;
    if (server.address.is_v4())
      ::setsockopt(fd.get(), IPPROTO_IP, IP_TTL, &ttl, sizeof ttl);
    else
      ::setsockopt(fd.get(), IPPROTO_IPV6, IPV6_UNICAST_HOPS, &ttl, sizeof ttl);
  }

  sockaddr_storage dest{};
  socklen_t dest_len = to_sockaddr(server, dest);
  dnswire::WireBuffer wire = dnswire::encode_message(message);
  auto sent_at = now();
  if (::sendto(fd.get(), wire.data(), wire.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), dest_len) < 0)
    return result;

  auto deadline = sent_at + options.timeout;
  // A cancellation deadline caps the collection window; a manual token is
  // re-checked every poll slice.
  if (auto cancel_deadline = options.cancel.deadline())
    deadline = std::min(deadline, *cancel_deadline);
  std::optional<std::chrono::steady_clock::time_point> duplicate_deadline;
  // (source bytes, payload hash) of accepted responses: a byte-identical
  // datagram from the same source is network duplication, not replication.
  std::vector<std::pair<std::vector<std::uint8_t>, std::uint64_t>> seen;

  while (true) {
    if (options.cancel.cancelled()) break;
    auto horizon = duplicate_deadline ? std::min(*duplicate_deadline, deadline) : deadline;
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(horizon - now());
    if (remaining.count() <= 0) break;
    if (options.cancel.active()) remaining = std::min(remaining, kCancelPollSlice);

    pollfd pfd{fd.get(), POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) break;
    if (ready == 0) continue;  // slice elapsed or horizon reached; loop re-checks

    std::uint8_t buffer[4096];
    sockaddr_storage from{};
    socklen_t from_len = sizeof from;
    ssize_t n = ::recvfrom(fd.get(), buffer, sizeof buffer, 0,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n <= 0) continue;

    auto response = dnswire::decode_message({buffer, static_cast<std::size_t>(n)});
    if (!response) {
      ++result.arbitration.malformed;  // on our flow but not DNS
      continue;
    }
    if (from_len != dest_len || std::memcmp(&from, &dest, dest_len) != 0) {
      ++result.arbitration.spoof_suspected;  // wrong-egress injection
      continue;
    }
    if (!dnswire::is_acceptable_response(message, *response)) {
      ++result.arbitration.spoof_suspected;  // wrong ID / unechoed question
      continue;
    }

    std::vector<std::uint8_t> source(reinterpret_cast<std::uint8_t*>(&from),
                                     reinterpret_cast<std::uint8_t*>(&from) + from_len);
    std::uint64_t fingerprint = bytes_hash(buffer, static_cast<std::size_t>(n));
    bool duplicate = false;
    for (const auto& [src, hash] : seen)
      if (hash == fingerprint && src == source) {
        duplicate = true;
        break;
      }
    if (duplicate) continue;
    seen.emplace_back(std::move(source), fingerprint);

    // Accepted despite a re-cased question echo (RFC 5452 compares names
    // case-insensitively): record the rewrite as DPI-ambiguity evidence.
    if (const auto* echoed = response->question())
      if (const auto* asked = message.question())
        if (!(echoed->name == asked->name)) ++result.arbitration.case_mismatches;

    if (!result.answered()) {
      result.status = core::QueryResult::Status::answered;
      result.response = *response;
      result.rtt = std::chrono::duration_cast<std::chrono::microseconds>(now() - sent_at);
      duplicate_deadline = now() + config_.duplicate_window;
    } else if (core::responses_conflict(*result.response, *response)) {
      ++result.arbitration.conflicts;  // a different answer raced in
    }
    result.all_responses.push_back(std::move(*response));
  }
  return result;
}

core::QueryResult UdpTransport::query(const netbase::Endpoint& server,
                                      const dnswire::Message& message,
                                      const core::QueryOptions& options) {
  obs::Span query_span("transport/query");
  // Per-query options win; the transport-level default applies otherwise.
  const core::RetryPolicy& policy = options.retry.enabled() ? options.retry : config_.retry;
  unsigned budget = std::max(1u, policy.max_attempts);
  dnswire::Message attempt_message = message;
  simnet::Rng rng(config_.retry_seed ^ (static_cast<std::uint64_t>(message.id) << 32));
  core::RetryTelemetry telemetry;
  core::QueryResult result;
  core::ArbitrationEvidence evidence;  // accumulated across attempts

  for (unsigned attempt_number = 1; attempt_number <= budget; ++attempt_number) {
    if (attempt_number > 1) {
      auto backoff = policy.backoff_before(attempt_number);
      telemetry.backoff_waited += backoff;
      // The backoff wait honours the cancellation token: a supervised probe
      // stopped mid-backoff abandons its remaining attempts (reported as a
      // timeout — cancellation never manufactures an answer).
      if (!interruptible_backoff(backoff, options.cancel)) break;
      // Fresh transaction ID (and 0x20 pattern): a straggling response to
      // an earlier attempt fails the ID check instead of answering this one.
      core::rerandomize_query(attempt_message, policy, rng);
    }
    if (options.cancel.cancelled()) break;
    result = attempt(server, attempt_message, options);
    telemetry.attempts = attempt_number;
    evidence += result.arbitration;
    if (result.answered()) break;
    ++telemetry.timeouts;
  }
  result.retry = telemetry;
  result.arbitration = evidence;
  record_telemetry(result);
  return result;
}

}  // namespace dnslocate::sockets
