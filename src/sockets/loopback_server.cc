#include "sockets/loopback_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "dnswire/decoder.h"
#include "dnswire/encoder.h"

namespace dnslocate::sockets {

LoopbackDnsServer::LoopbackDnsServer(std::shared_ptr<resolvers::DnsResponder> responder,
                                     bool serve_tcp,
                                     std::chrono::milliseconds response_delay)
    : responder_(std::move(responder)), response_delay_(response_delay) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("LoopbackDnsServer: socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // OS-assigned
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd_);
    throw std::runtime_error("LoopbackDnsServer: bind() failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  endpoint_ = netbase::Endpoint{netbase::Ipv4Address(127, 0, 0, 1), ntohs(addr.sin_port)};

  if (serve_tcp) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      ::close(fd_);
      throw std::runtime_error("LoopbackDnsServer: tcp socket() failed");
    }
    int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    // Same port number as the UDP socket (distinct port spaces).
    if (::bind(tcp_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(tcp_fd_, 8) < 0) {
      ::close(fd_);
      ::close(tcp_fd_);
      throw std::runtime_error("LoopbackDnsServer: tcp bind/listen failed");
    }
  }

  thread_ = std::thread([this] { serve(); });
}

LoopbackDnsServer::~LoopbackDnsServer() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) ::close(fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
}

void LoopbackDnsServer::serve_udp_datagram() {
  std::uint8_t buffer[4096];
  sockaddr_storage from{};
  socklen_t from_len = sizeof from;
  ssize_t n = ::recvfrom(fd_, buffer, sizeof buffer, 0, reinterpret_cast<sockaddr*>(&from),
                         &from_len);
  if (n <= 0) return;

  auto query = dnswire::decode_message({buffer, static_cast<std::size_t>(n)});
  if (!query || query->is_response()) return;
  ++queries_served_;

  resolvers::QueryContext context;
  if (from.ss_family == AF_INET) {
    const auto* sa = reinterpret_cast<const sockaddr_in*>(&from);
    std::array<std::uint8_t, 4> bytes{};
    std::memcpy(bytes.data(), &sa->sin_addr, 4);
    context.client = netbase::Ipv4Address::from_bytes(bytes);
  }
  context.server_ip = endpoint_.address;

  auto response = responder_->respond(*query, context);
  if (!response) return;
  // UDP answers obey the advertised payload limit.
  resolvers::DnsServerApp::truncate_to_fit(
      *response, resolvers::DnsServerApp::udp_payload_limit(*query));
  dnswire::WireBuffer wire = dnswire::encode_message(*response);
  if (response_delay_.count() > 0) {
    // Hold the answer in the deferred queue; the serve loop flushes it when
    // due, so other clients' queries keep being ingested in the meantime.
    pending_.push_back(PendingSend{std::chrono::steady_clock::now() + response_delay_,
                                   std::move(wire), from, from_len});
    return;
  }
  ::sendto(fd_, wire.data(), wire.size(), 0, reinterpret_cast<const sockaddr*>(&from),
           from_len);
}

void LoopbackDnsServer::flush_due_sends() {
  auto now = std::chrono::steady_clock::now();
  while (!pending_.empty() && pending_.front().due <= now) {
    const PendingSend& send = pending_.front();
    ::sendto(fd_, send.wire.data(), send.wire.size(), 0,
             reinterpret_cast<const sockaddr*>(&send.to), send.to_len);
    pending_.pop_front();
  }
}

void LoopbackDnsServer::serve_tcp_connection() {
  int conn = ::accept(tcp_fd_, nullptr, nullptr);
  if (conn < 0) return;

  auto read_all = [&](std::uint8_t* data, std::size_t size) {
    std::size_t got = 0;
    while (got < size) {
      pollfd pfd{conn, POLLIN, 0};
      if (::poll(&pfd, 1, 1000) <= 0) return false;
      ssize_t n = ::recv(conn, data + got, size - got, 0);
      if (n <= 0) return false;
      got += static_cast<std::size_t>(n);
    }
    return true;
  };

  std::uint8_t prefix[2];
  if (read_all(prefix, 2)) {
    std::size_t length = static_cast<std::size_t>(prefix[0]) << 8 | prefix[1];
    std::vector<std::uint8_t> body(length);
    if (length > 0 && read_all(body.data(), length)) {
      auto query = dnswire::decode_message(body);
      if (query && !query->is_response()) {
        ++tcp_queries_served_;
        resolvers::QueryContext context;
        context.client = netbase::Ipv4Address(127, 0, 0, 1);
        context.server_ip = endpoint_.address;
        auto response = responder_->respond(*query, context);
        if (response) {
          // No truncation over TCP (RFC 7766).
          dnswire::WireBuffer wire = dnswire::encode_message(*response);
          std::vector<std::uint8_t> framed;
          framed.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
          framed.push_back(static_cast<std::uint8_t>(wire.size() & 0xff));
          framed.insert(framed.end(), wire.begin(), wire.end());
          ::send(conn, framed.data(), framed.size(), MSG_NOSIGNAL);
        }
      }
    }
  }
  ::close(conn);
}

void LoopbackDnsServer::serve() {
  while (running_.load()) {
    pollfd pfds[2];
    pfds[0] = {fd_, POLLIN, 0};
    nfds_t count = 1;
    if (tcp_fd_ >= 0) {
      pfds[1] = {tcp_fd_, POLLIN, 0};
      count = 2;
    }
    int timeout_ms = 50;
    if (!pending_.empty()) {
      auto until_due = std::chrono::duration_cast<std::chrono::milliseconds>(
          pending_.front().due - std::chrono::steady_clock::now());
      timeout_ms = static_cast<int>(std::clamp<long long>(until_due.count(), 0, 50));
    }
    int ready = ::poll(pfds, count, timeout_ms);
    flush_due_sends();
    if (ready <= 0) continue;
    if (pfds[0].revents & POLLIN) serve_udp_datagram();
    if (count == 2 && (pfds[1].revents & POLLIN)) serve_tcp_connection();
  }
}

}  // namespace dnslocate::sockets
