// NAT with connection tracking: masquerading (SNAT) and destination NAT
// (DNAT), including the DNAT interception rules the paper observed in CPE
// (XB6/XDNS) and in ISP middleboxes.
//
// The reply-direction un-rewrite performed by conntrack is exactly what
// makes interception "transparent": the alternate resolver's response is
// restored to carry the *original* destination (the target resolver) as its
// source address — i.e. the spoofing the paper describes in §2.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "simnet/device.h"
#include "simnet/packet.h"

namespace dnslocate::simnet {

/// A DNAT rule: divert matching new flows to `new_dst`.
struct DnatRule {
  /// Only packets arriving on this port match (e.g. the CPE's LAN port);
  /// nullopt matches every arrival port. Locally generated packets
  /// (in_port == nullopt at the hook) never match DNAT rules.
  std::optional<PortId> in_port;
  /// Destination UDP port to match (53 for DNS interception).
  std::uint16_t match_dport = 53;
  /// Restrict to one family — the paper found most interceptors act on
  /// IPv4 only (§4.1.1). nullopt matches both.
  std::optional<netbase::IpFamily> family;
  /// If non-empty, only these destinations are diverted ("only one resolver
  /// intercepted" pattern).
  std::vector<netbase::IpAddress> match_dsts;
  /// Destinations never diverted ("only one resolver allowed" pattern, or
  /// the ISP's own resolver).
  std::vector<netbase::IpAddress> exempt_dsts;
  /// Where diverted flows go (per family; the matching one is used).
  std::optional<netbase::IpAddress> new_dst_v4;
  std::optional<netbase::IpAddress> new_dst_v6;
  /// Optionally rewrite the destination port as well.
  std::optional<std::uint16_t> new_dport;
  /// Replication (Liu et al. §3.1): forward the original query *and* send a
  /// diverted copy, producing two responses racing back to the client.
  bool replicate = false;
  /// Interceptors that "discard queries to unroutable addresses" (§3.3):
  /// leave bogon-addressed queries alone so normal routing drops them.
  bool exempt_bogon_dsts = false;
  /// The inverse: a rule that *only* matches bogon destinations. Models
  /// policy-routed DNS proxies that answer whatever lands on them even when
  /// the diversion policy is scoped to specific resolvers.
  bool match_bogons_only = false;

  /// True if this rule matches the packet as a new flow.
  [[nodiscard]] bool matches(const UdpPacket& packet, std::optional<PortId> in) const;
  /// Diverted destination for the packet's family, if configured.
  [[nodiscard]] std::optional<netbase::IpAddress> target_for(const UdpPacket& packet) const;
};

/// A source-NAT (masquerade) rule: flows leaving `out_port` get their source
/// rewritten to the device address of the matching family.
struct SnatRule {
  PortId out_port = 0;
  std::optional<netbase::IpAddress> to_source_v4;
  std::optional<netbase::IpAddress> to_source_v6;
};

/// NAT hook implementing both rule types over a shared conntrack table.
class NatHook : public PacketHook {
 public:
  void add_dnat_rule(DnatRule rule) { dnat_rules_.push_back(std::move(rule)); }
  void add_snat_rule(SnatRule rule) { snat_rules_.push_back(std::move(rule)); }

  HookVerdict prerouting(Simulator&, Device&, UdpPacket&, std::optional<PortId> in_port) override;
  HookVerdict postrouting(Simulator&, Device&, UdpPacket&, PortId out_port) override;

  // Counters for tests and the case-study narrative.
  [[nodiscard]] std::uint64_t dnat_hits() const { return dnat_hits_; }
  [[nodiscard]] std::uint64_t snat_hits() const { return snat_hits_; }
  [[nodiscard]] std::uint64_t unnat_hits() const { return unnat_hits_; }
  [[nodiscard]] std::size_t conntrack_size() const { return entries_.size(); }

 private:
  struct Entry {
    FlowKey orig;        // flow as first seen, pre-translation
    FlowKey translated;  // flow as it leaves this device
  };

  /// Applies the reply-direction restoration if `packet` is the reply of a
  /// tracked flow. Returns true if a rewrite happened.
  bool try_unnat(Simulator& sim, Device& device, UdpPacket& packet);

  /// RELATED handling for ICMP errors: translates the destination and the
  /// quoted tuple of errors about tracked flows (both for errors transiting
  /// this NAT and for errors this device generated post-translation).
  bool try_icmp_related(Simulator& sim, Device& device, UdpPacket& packet);

  void reindex(std::uint64_t entry_id);

  std::vector<DnatRule> dnat_rules_;
  std::vector<SnatRule> snat_rules_;
  std::vector<Entry> entries_;
  std::unordered_map<FlowKey, std::uint64_t> by_orig_;
  std::unordered_map<FlowKey, std::uint64_t> by_reply_;  // keyed by translated.inverted()
  std::uint16_t next_ephemeral_ = 33000;
  std::uint64_t dnat_hits_ = 0;
  std::uint64_t snat_hits_ = 0;
  std::uint64_t unnat_hits_ = 0;
};

}  // namespace dnslocate::simnet
