#include "simnet/rng.h"

namespace dnslocate::simnet {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method for unbiased bounded draws.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  uniform(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::size_t Rng::weighted(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0) return uniform(weights.size());
  double draw = uniform01() * total;
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] > 0 ? weights[i] : 0;
    if (draw < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xa5a5a5a55a5a5a5aull); }

}  // namespace dnslocate::simnet
