// Adversarial interceptor models: nodes that *race* or *mangle* DNS rather
// than answer it like the cooperative interceptors of §3.
//
// - SpooferHook models an injector in the style of "Whac-A-Mole: Six Years
//   of DNS Spoofing" (arXiv 2011.12978): it watches port-53 queries cross a
//   device and injects a forged answer that races the genuine one, with a
//   deterministic injection-lead-time knob. On-path it copies the observed
//   transaction ID and 0x20 casing (the forgery passes RFC 5452 and the
//   transports surface it as a *conflict*); off-path it guesses IDs from a
//   seeded stream (the forgeries fail acceptance and are counted as
//   spoof-suspected evidence).
// - DpiHook models a DPI middlebox with configurable parsing ambiguities in
//   the style of "Fingerprinting DPI Devices by Their Ambiguities"
//   (arXiv 2509.09081): 0x20 case folding, EDNS OPT stripping, and
//   truncation-bit rewriting. Each ambiguity is observable end-to-end, so
//   the personality can be actively fingerprinted (core/fingerprint.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netbase/ipv4.h"
#include "netbase/ipv6.h"
#include "simnet/device.h"
#include "simnet/rng.h"
#include "simnet/time.h"

namespace dnslocate::simnet {

/// Knobs for a spoofing injector.
struct SpooferConfig {
  /// On-path spoofers read the transaction ID and exact question casing
  /// from the observed query, so their forgery passes RFC 5452 acceptance
  /// and must be caught by answer arbitration. Off-path spoofers guess IDs
  /// from the seeded stream below.
  bool on_path = true;
  /// How long after observing the query the forgery is injected. The
  /// genuine answer returns after the resolver round trip (~12 ms from the
  /// transit core in the default topology), so this directly sets the
  /// forgery's lead over — or lag behind — the real answer.
  SimDuration injection_delay = std::chrono::microseconds(100);
  /// Off-path only: forged IDs injected per observed query.
  unsigned id_guesses = 3;
  /// Source the forgery from an address other than the queried server
  /// (wrong egress). Such packets die at the client's conntrack-checking
  /// NATs or the transports' source check — useful for testing both.
  bool forge_source = false;
  netbase::Ipv4Address forged_source_v4 = netbase::Ipv4Address::from_bytes({203, 0, 113, 66});
  /// IP TTL stamped on injected packets. Injectors rarely match the
  /// genuine server's hop distance; a distinctive value makes the forgery
  /// attributable in traces.
  std::uint8_t injected_ttl = 23;
  /// Seed for the off-path ID-guess stream (deterministic per scenario).
  std::uint64_t seed = 0x5e00f;
  /// Payload of forged TXT answers (location queries resolve to airport
  /// codes; this string matches no resolver's catalogue).
  std::string display = "SPOOFED";
  /// Forged A/AAAA answer addresses.
  netbase::Ipv4Address answer_v4 = netbase::Ipv4Address::from_bytes({198, 51, 100, 66});
  netbase::Ipv6Address answer_v6{};
};

/// Injects forged answers for port-53 queries crossing the hosting device.
/// Install with Device::add_hook on a forwarding device (typically the
/// transit core); the hook observes without mutating and schedules its
/// forgery via Device::forward_injected.
class SpooferHook : public PacketHook {
 public:
  explicit SpooferHook(SpooferConfig config);

  HookVerdict prerouting(Simulator& sim, Device& device, UdpPacket& packet,
                         std::optional<PortId> in_port) override;

  [[nodiscard]] std::uint64_t queries_seen() const { return queries_seen_; }
  [[nodiscard]] std::uint64_t injections() const { return injections_; }
  [[nodiscard]] const SpooferConfig& config() const { return config_; }

 private:
  SpooferConfig config_;
  Rng rng_;
  std::uint64_t queries_seen_ = 0;
  std::uint64_t injections_ = 0;
};

/// One DPI middlebox personality: a vendor string plus the parsing
/// ambiguities it exhibits. The zoo() below enumerates the personalities
/// the fingerprint prober can name.
struct DpiPersonality {
  std::string vendor = "none";
  /// Lowercases the question name of forwarded queries. RFC 5452 still
  /// accepts the (case-folded) echo, but the 0x20 signal is destroyed and
  /// the transports record a case-mismatch on every answer.
  bool fold_case = false;
  /// Strips EDNS OPT records from forwarded queries. The server then
  /// answers without the RFC 6891 OPT echo — and with a 512-byte payload
  /// ceiling the client never asked for.
  bool strip_edns = false;
  /// Sets the truncation bit on forwarded responses while leaving the
  /// answer sections intact — a self-contradictory message no real server
  /// emits.
  bool rewrite_tc = false;

  [[nodiscard]] bool active() const { return fold_case || strip_edns || rewrite_tc; }
};

/// The personalities shipped with the zoo, for tests and the ablation.
/// Vendor names are fictional; each maps to one observable ambiguity set.
DpiPersonality dpi_foldix();    // fold_case
DpiPersonality dpi_optstrip();  // strip_edns
DpiPersonality dpi_truncor();   // rewrite_tc
DpiPersonality dpi_omnibox();   // all three

/// Applies a DpiPersonality to port-53 traffic crossing the hosting device.
/// Re-encodes mutated payloads; packets that fail to decode pass through
/// untouched (real DPI fails open on unparsable traffic).
class DpiHook : public PacketHook {
 public:
  explicit DpiHook(DpiPersonality personality);

  HookVerdict prerouting(Simulator& sim, Device& device, UdpPacket& packet,
                         std::optional<PortId> in_port) override;

  [[nodiscard]] std::uint64_t queries_mutated() const { return queries_mutated_; }
  [[nodiscard]] std::uint64_t responses_mutated() const { return responses_mutated_; }
  [[nodiscard]] const DpiPersonality& personality() const { return personality_; }

 private:
  DpiPersonality personality_;
  std::uint64_t queries_mutated_ = 0;
  std::uint64_t responses_mutated_ = 0;
};

}  // namespace dnslocate::simnet
