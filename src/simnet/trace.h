// Packet tracing: an optional observer that records datapath events.
// Used by the XB6 case-study example to print the DNAT role-switch, and by
// tests to assert on path properties (e.g. "the query never left the AS").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/packet.h"
#include "simnet/time.h"

namespace dnslocate::simnet {

/// What happened to a packet at a device.
enum class TraceEvent {
  transmitted,    // left a device via a link
  received,       // arrived at a device
  delivered,      // handed to a local UDP app
  forwarded,      // routed onward
  dropped_no_route,
  dropped_ttl,
  dropped_no_listener,  // addressed to the device but no app on that port
  dropped_by_hook,      // a filter dropped it
  dropped_loss,         // link loss
  dropped_fault,        // fault-plan loss (burst or residual random)
  fault_duplicated,     // fault plan delivered a second copy
  fault_delayed,        // fault plan reordered / jittered the delivery
  fault_truncated,      // fault plan chopped the payload
  dnat_rewritten,       // destination rewritten by NAT
  snat_rewritten,       // source rewritten by NAT
  unnat_rewritten,      // reply direction restored (the "spoofed" response)
  replicated,           // interceptor duplicated the query
};

std::string_view to_string(TraceEvent event);

/// Per-cause drop tally. The Simulator keeps one (always on, independent of
/// any TraceSink) so tests and the fault ablation can attribute every lost
/// packet to its cause.
struct DropCounters {
  std::uint64_t no_route = 0;        // unroutable / forwarding disabled / bogon
  std::uint64_t ttl_expired = 0;
  std::uint64_t no_listener = 0;     // delivered locally, no app on the port
  std::uint64_t by_hook = 0;         // a PacketHook returned drop
  std::uint64_t link_loss = 0;       // LinkConfig::loss_rate (i.i.d.)
  std::uint64_t queue_overflow = 0;  // finite-rate link tail drop
  std::uint64_t fault_burst = 0;     // FaultPlan bad-state loss
  std::uint64_t fault_random = 0;    // FaultPlan good-state loss

  [[nodiscard]] std::uint64_t total() const {
    return no_route + ttl_expired + no_listener + by_hook + link_loss + queue_overflow +
           fault_burst + fault_random;
  }

  DropCounters& operator+=(const DropCounters& other) {
    no_route += other.no_route;
    ttl_expired += other.ttl_expired;
    no_listener += other.no_listener;
    by_hook += other.by_hook;
    link_loss += other.link_loss;
    queue_overflow += other.queue_overflow;
    fault_burst += other.fault_burst;
    fault_random += other.fault_random;
    return *this;
  }
};

/// One trace record.
struct TraceRecord {
  SimTime at{};
  std::string device;
  TraceEvent event{};
  UdpPacket packet;   // post-event view of the packet
  std::string detail; // e.g. "dst 1.1.1.1:53 -> 10.0.0.1:53"

  [[nodiscard]] std::string to_string() const;
};

/// Collects trace records. Attach to a Simulator with set_trace().
class TraceSink {
 public:
  void record(SimTime at, const std::string& device, TraceEvent event, const UdpPacket& packet,
              std::string detail = {});

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// All records for a given trace_id lineage, rendered line by line.
  [[nodiscard]] std::string render() const;

  /// Count of records matching an event type.
  [[nodiscard]] std::size_t count(TraceEvent event) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace dnslocate::simnet
