// Packet tracing: an optional observer that records datapath events.
// Used by the XB6 case-study example to print the DNAT role-switch, and by
// tests to assert on path properties (e.g. "the query never left the AS").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/packet.h"
#include "simnet/time.h"

namespace dnslocate::simnet {

/// What happened to a packet at a device.
enum class TraceEvent {
  transmitted,    // left a device via a link
  received,       // arrived at a device
  delivered,      // handed to a local UDP app
  forwarded,      // routed onward
  dropped_no_route,
  dropped_ttl,
  dropped_no_listener,  // addressed to the device but no app on that port
  dropped_by_hook,      // a filter dropped it
  dropped_loss,         // link loss
  dnat_rewritten,       // destination rewritten by NAT
  snat_rewritten,       // source rewritten by NAT
  unnat_rewritten,      // reply direction restored (the "spoofed" response)
  replicated,           // interceptor duplicated the query
};

std::string_view to_string(TraceEvent event);

/// One trace record.
struct TraceRecord {
  SimTime at{};
  std::string device;
  TraceEvent event{};
  UdpPacket packet;   // post-event view of the packet
  std::string detail; // e.g. "dst 1.1.1.1:53 -> 10.0.0.1:53"

  [[nodiscard]] std::string to_string() const;
};

/// Collects trace records. Attach to a Simulator with set_trace().
class TraceSink {
 public:
  void record(SimTime at, const std::string& device, TraceEvent event, const UdpPacket& packet,
              std::string detail = {});

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// All records for a given trace_id lineage, rendered line by line.
  [[nodiscard]] std::string render() const;

  /// Count of records matching an event type.
  [[nodiscard]] std::size_t count(TraceEvent event) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace dnslocate::simnet
