#include "simnet/trace.h"

namespace dnslocate::simnet {

std::string_view to_string(TraceEvent event) {
  switch (event) {
    case TraceEvent::transmitted: return "transmitted";
    case TraceEvent::received: return "received";
    case TraceEvent::delivered: return "delivered";
    case TraceEvent::forwarded: return "forwarded";
    case TraceEvent::dropped_no_route: return "dropped_no_route";
    case TraceEvent::dropped_ttl: return "dropped_ttl";
    case TraceEvent::dropped_no_listener: return "dropped_no_listener";
    case TraceEvent::dropped_by_hook: return "dropped_by_hook";
    case TraceEvent::dropped_loss: return "dropped_loss";
    case TraceEvent::dropped_fault: return "dropped_fault";
    case TraceEvent::fault_duplicated: return "fault_duplicated";
    case TraceEvent::fault_delayed: return "fault_delayed";
    case TraceEvent::fault_truncated: return "fault_truncated";
    case TraceEvent::dnat_rewritten: return "dnat_rewritten";
    case TraceEvent::snat_rewritten: return "snat_rewritten";
    case TraceEvent::unnat_rewritten: return "unnat_rewritten";
    case TraceEvent::replicated: return "replicated";
  }
  return "?";
}

std::string TraceRecord::to_string() const {
  std::string out = "[" + std::to_string(at.count() / 1000) + "us] ";
  out += device;
  out += ": ";
  out += simnet::to_string(event);
  out += " ";
  out += packet.to_string();
  if (!detail.empty()) out += "  (" + detail + ")";
  return out;
}

void TraceSink::record(SimTime at, const std::string& device, TraceEvent event,
                       const UdpPacket& packet, std::string detail) {
  records_.push_back(TraceRecord{at, device, event, packet, std::move(detail)});
}

std::string TraceSink::render() const {
  std::string out;
  for (const auto& r : records_) {
    out += r.to_string();
    out += "\n";
  }
  return out;
}

std::size_t TraceSink::count(TraceEvent event) const {
  std::size_t n = 0;
  for (const auto& r : records_)
    if (r.event == event) ++n;
  return n;
}

}  // namespace dnslocate::simnet
