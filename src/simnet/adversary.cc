#include "simnet/adversary.h"

#include <utility>

#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "dnswire/message.h"
#include "dnswire/record.h"
#include "netbase/endpoint.h"
#include "simnet/simulator.h"

namespace dnslocate::simnet {
namespace {

/// Craft the forged answer for an observed query: a wrong address for
/// A/AAAA, a wrong display string for TXT (any class — location queries and
/// version.bind both get raced), an empty NOERROR otherwise.
dnswire::Message forge_answer(const dnswire::Message& query, const SpooferConfig& config) {
  const dnswire::Question* q = query.question();
  if (q == nullptr) return dnswire::make_response(query, dnswire::Rcode::NOERROR);
  switch (q->type) {
    case dnswire::RecordType::A: {
      dnswire::Message m = dnswire::make_response(query, dnswire::Rcode::NOERROR);
      m.answers.push_back(dnswire::make_a(q->name, config.answer_v4));
      return m;
    }
    case dnswire::RecordType::AAAA: {
      dnswire::Message m = dnswire::make_response(query, dnswire::Rcode::NOERROR);
      m.answers.push_back(dnswire::make_aaaa(q->name, config.answer_v6));
      return m;
    }
    case dnswire::RecordType::TXT:
      return dnswire::make_txt_response(query, config.display, 60);
    default:
      return dnswire::make_response(query, dnswire::Rcode::NOERROR);
  }
}

/// Build the injected packet for a forged response to `observed`.
UdpPacket forge_packet(const UdpPacket& observed, const dnswire::Message& response,
                       const SpooferConfig& config) {
  UdpPacket forged;
  forged.src = observed.dst;  // correct egress: looks like the queried server
  if (config.forge_source) {
    if (observed.dst.is_v4())
      forged.src = netbase::IpAddress(config.forged_source_v4);
    // v6 wrong-egress keeps the v4 knob simple: forge only for v4 flows.
  }
  forged.dst = observed.src;
  forged.sport = observed.dport;
  forged.dport = observed.sport;
  forged.ttl = config.injected_ttl;
  forged.channel = observed.channel;
  forged.payload = dnswire::encode_message(response);
  forged.trace_id = observed.trace_id;
  return forged;
}

}  // namespace

SpooferHook::SpooferHook(SpooferConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

HookVerdict SpooferHook::prerouting(Simulator& sim, Device& device, UdpPacket& packet,
                                    std::optional<PortId>) {
  // Observe only plain-UDP DNS queries; the injector cannot forge inside a
  // TLS stream, and it never reacts to responses (or to its own forgeries,
  // which re-enter via forward_injected and skip PREROUTING entirely).
  if (packet.kind != PacketKind::udp || packet.channel != Channel::udp ||
      packet.dport != netbase::kDnsPort)
    return HookVerdict::accept;
  auto query = dnswire::decode_message(packet.payload);
  if (!query || query->is_response()) return HookVerdict::accept;
  ++queries_seen_;

  if (config_.on_path) {
    // Full view of the query: the forgery copies the transaction ID and the
    // exact 0x20 casing, so it passes RFC 5452 and races the genuine answer.
    UdpPacket forged = forge_packet(packet, forge_answer(*query, config_), config_);
    ++injections_;
    sim.schedule(config_.injection_delay,
                 [&sim, device = &device, forged = std::move(forged)]() mutable {
                   device->forward_injected(sim, std::move(forged));
                 });
  } else {
    // Off-path behaviour: the ID is unknown, so each injection carries a
    // guess from the seeded stream. A wrong guess fails acceptance at the
    // client and is counted as spoof-suspected evidence.
    for (unsigned guess = 0; guess < config_.id_guesses; ++guess) {
      dnswire::Message response = forge_answer(*query, config_);
      response.id = static_cast<std::uint16_t>(rng_.next_u64());
      UdpPacket forged = forge_packet(packet, response, config_);
      ++injections_;
      sim.schedule(config_.injection_delay,
                   [&sim, device = &device, forged = std::move(forged)]() mutable {
                     device->forward_injected(sim, std::move(forged));
                   });
    }
  }
  return HookVerdict::accept;
}

DpiPersonality dpi_foldix() {
  DpiPersonality p;
  p.vendor = "foldix";
  p.fold_case = true;
  return p;
}

DpiPersonality dpi_optstrip() {
  DpiPersonality p;
  p.vendor = "optstrip";
  p.strip_edns = true;
  return p;
}

DpiPersonality dpi_truncor() {
  DpiPersonality p;
  p.vendor = "truncor";
  p.rewrite_tc = true;
  return p;
}

DpiPersonality dpi_omnibox() {
  DpiPersonality p;
  p.vendor = "omnibox";
  p.fold_case = true;
  p.strip_edns = true;
  p.rewrite_tc = true;
  return p;
}

DpiHook::DpiHook(DpiPersonality personality) : personality_(std::move(personality)) {}

HookVerdict DpiHook::prerouting(Simulator&, Device&, UdpPacket& packet, std::optional<PortId>) {
  if (packet.kind != PacketKind::udp || packet.channel != Channel::udp)
    return HookVerdict::accept;

  if (packet.dport == netbase::kDnsPort &&
      (personality_.fold_case || personality_.strip_edns)) {
    auto query = dnswire::decode_message(packet.payload);
    if (!query || query->is_response()) return HookVerdict::accept;  // fail open
    bool mutated = false;
    if (personality_.fold_case) {
      for (auto& question : query->questions) {
        dnswire::DnsName folded = question.name.to_lower();
        if (!(folded == question.name)) {
          question.name = std::move(folded);
          mutated = true;
        }
      }
    }
    if (personality_.strip_edns) {
      dnswire::RecordSection kept;
      for (auto& rr : query->additionals) {
        if (rr.type == dnswire::RecordType::OPT)
          mutated = true;
        else
          kept.push_back(std::move(rr));
      }
      if (mutated) query->additionals = std::move(kept);
    }
    if (mutated) {
      packet.payload = dnswire::encode_message(*query);
      ++queries_mutated_;
    }
    return HookVerdict::accept;
  }

  if (packet.sport == netbase::kDnsPort && personality_.rewrite_tc) {
    auto response = dnswire::decode_message(packet.payload);
    if (!response || !response->is_response()) return HookVerdict::accept;  // fail open
    if (!response->flags.tc) {
      // Set TC while leaving the answers intact: a self-contradictory
      // message no real server emits — the fingerprint probe's signal.
      response->flags.tc = true;
      packet.payload = dnswire::encode_message(*response);
      ++responses_mutated_;
    }
    return HookVerdict::accept;
  }

  return HookVerdict::accept;
}

}  // namespace dnslocate::simnet
