// Deterministic discrete-event simulator: owns devices, links, the event
// queue, and simulated time. One Simulator instance models one independent
// slice of Internet (a probe's home, its ISP, transit, and the resolvers).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "simnet/device.h"
#include "simnet/event_fn.h"
#include "simnet/fault.h"
#include "simnet/rng.h"
#include "simnet/time.h"
#include "simnet/trace.h"

namespace dnslocate::simnet {

/// Per-link properties.
struct LinkConfig {
  SimDuration latency = std::chrono::milliseconds(1);
  double loss_rate = 0.0;  // i.i.d. per-packet loss probability
  /// Link rate in bits/second; 0 = infinite (no serialization delay, no
  /// queueing). With a rate set, packets serialize one at a time and a
  /// FIFO queue forms; arrivals that would wait longer than
  /// `max_queue_delay` are tail-dropped.
  std::uint64_t bandwidth_bps = 0;
  SimDuration max_queue_delay = std::chrono::milliseconds(50);
  /// Fault-plan profile selector ("lan", "access", "isp", "transit", ...).
  /// Empty means the plan's default profile applies.
  std::string fault_class;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  [[nodiscard]] SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Construct and register a device. The simulator owns it; the returned
  /// reference stays valid for the simulator's lifetime.
  template <typename D = Device, typename... Args>
  D& add_device(Args&&... args) {
    auto owned = std::make_unique<D>(std::forward<Args>(args)...);
    D& ref = *owned;
    devices_.push_back(std::move(owned));
    return ref;
  }

  /// Connect two devices with a bidirectional link; returns the pair of
  /// freshly allocated port ids (a's port, b's port).
  std::pair<PortId, PortId> connect(Device& a, Device& b, LinkConfig config = {});

  /// Schedule `fn` to run after `delay`. EventFn keeps packet-delivery
  /// closures in inline storage — see event_fn.h.
  void schedule(SimDuration delay, EventFn fn);

  /// Transmit `packet` out of `port` on `from`; the peer receives it after
  /// the link latency unless the link loss model drops it.
  void transmit(Device& from, PortId port, UdpPacket packet);

  /// Run events until the queue drains or `max_events` fire.
  /// Returns the number of events processed.
  std::size_t run_until_idle(std::size_t max_events = 100'000'000);

  /// Process a single event; returns false when the queue is empty.
  /// Lets synchronous clients (SimTransport) interleave with the sim.
  bool step();

  /// Fresh id for a new packet lineage.
  std::uint64_t next_trace_id() { return ++trace_counter_; }

  /// Optional trace sink (not owned). Null disables tracing.
  void set_trace(TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] TraceSink* trace() const { return trace_; }

  /// Optional fault-injection plan (not owned). Null disables injection.
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }
  [[nodiscard]] FaultPlan* fault_plan() const { return faults_; }

  /// Per-cause drop tally, always on (devices report their drops here too).
  [[nodiscard]] const DropCounters& drops() const { return drops_; }
  DropCounters& drops() { return drops_; }

  /// Record a trace event if tracing is enabled.
  void trace_event(const Device& device, TraceEvent event, const UdpPacket& packet,
                   std::string detail = {});

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break for determinism
    EventFn fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  struct PortPeer {
    Device* peer = nullptr;
    PortId peer_port = 0;
    LinkConfig config;
    SimTime busy_until{};  // transmitter state (per direction)
  };
  struct PortKey {
    std::uint64_t device_id;
    PortId port;
    friend bool operator==(const PortKey&, const PortKey&) = default;
  };
  struct PortKeyHash {
    std::size_t operator()(const PortKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.device_id * 1000003ull + k.port);
    }
  };

  /// Per-simulator device ordinal, assigned in connect() order. Fault-plan
  /// link keys are built from this (not Device::id(), which comes from a
  /// process-wide counter and so varies with thread interleaving when many
  /// simulators run concurrently).
  std::uint64_t ordinal_of(const Device& device);

  SimTime now_ = kSimStart;
  Rng rng_;
  std::uint64_t seq_counter_ = 0;
  std::uint64_t trace_counter_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<PortKey, PortPeer, PortKeyHash> links_;
  std::unordered_map<std::uint64_t, PortId> next_port_;  // per-device allocator
  std::unordered_map<std::uint64_t, std::uint64_t> ordinals_;  // device id -> ordinal
  TraceSink* trace_ = nullptr;
  FaultPlan* faults_ = nullptr;
  DropCounters drops_;
};

}  // namespace dnslocate::simnet
