// The simulated network device: hosts, routers, CPE, middleboxes, and
// resolver servers are all Devices differing only in configuration —
// local IPs, bound UDP applications, routes, and packet hooks.
//
// The datapath mirrors the Linux netfilter pipeline closely enough that the
// paper's mechanisms (DNAT interception, masquerading, the CPE
// "role switch") fall out mechanically:
//
//   receive -> PREROUTING hooks -> local delivery | forward -> POSTROUTING
//   app send ------------------------------------^ (local out)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/lpm.h"
#include "simnet/packet.h"
#include "simnet/time.h"

namespace dnslocate::simnet {

class Simulator;
class Device;

/// Index of a device port. Ports are created implicitly by Simulator::connect.
using PortId = std::uint32_t;

/// A UDP application bound to a port on a device (DNS client, forwarder,
/// resolver). `on_datagram` runs when a packet is locally delivered.
class UdpApp {
 public:
  virtual ~UdpApp() = default;
  virtual void on_datagram(Simulator& sim, Device& self, const UdpPacket& packet) = 0;
};

/// Hook verdicts. `accept` lets the packet continue (possibly rewritten).
enum class HookVerdict { accept, drop };

/// A netfilter-style packet filter. Hooks run in the order they were added.
class PacketHook {
 public:
  virtual ~PacketHook() = default;

  /// Before the local-delivery/forwarding decision. `in_port` is the arrival
  /// port, or nullopt for locally generated packets.
  virtual HookVerdict prerouting(Simulator&, Device&, UdpPacket&, std::optional<PortId> in_port) {
    (void)in_port;
    return HookVerdict::accept;
  }

  /// Before transmission (forwarded and locally generated packets).
  virtual HookVerdict postrouting(Simulator&, Device&, UdpPacket&, PortId out_port) {
    (void)out_port;
    return HookVerdict::accept;
  }
};

/// A simulated device.
class Device {
 public:
  explicit Device(std::string name);
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

  // --- configuration ---

  /// Add an address owned by this device (local delivery target).
  void add_local_ip(const netbase::IpAddress& addr);
  [[nodiscard]] bool has_local_ip(const netbase::IpAddress& addr) const;
  [[nodiscard]] const std::vector<netbase::IpAddress>& local_ips() const { return local_ips_; }
  /// First local address of the given family, if any.
  [[nodiscard]] std::optional<netbase::IpAddress> local_ip(netbase::IpFamily family) const;

  /// Bind/unbind an app on a UDP port (all local addresses). The device does
  /// not own the app; callers keep it alive for the device's lifetime.
  void bind_udp(std::uint16_t port, UdpApp* app);
  void unbind_udp(std::uint16_t port);
  [[nodiscard]] bool is_udp_bound(std::uint16_t port) const;

  /// Static routes. Longest prefix wins; use family default (0.0.0.0/0,
  /// ::/0) prefixes for default routes.
  void add_route(const netbase::Prefix& prefix, PortId out_port);
  void set_default_route(PortId out_port);  // both families
  [[nodiscard]] std::optional<PortId> route_for(const netbase::IpAddress& dst) const;

  /// Install a packet hook; hooks run in insertion order.
  void add_hook(std::shared_ptr<PacketHook> hook);

  /// Hosts leave this false: packets not addressed to them are dropped.
  void set_forwarding(bool enabled) { forwarding_ = enabled; }

  /// Border-router behaviour: silently drop forwarded packets whose
  /// destination is a bogon (no route on the real Internet). This is what
  /// makes §3.3's bogon inference sound.
  void set_drop_bogon_destinations(bool enabled) { drop_bogons_ = enabled; }

  // --- datapath ---

  /// Link delivery entry point (called by the Simulator).
  virtual void receive(Simulator& sim, UdpPacket packet, PortId in_port);

  /// Send a locally generated packet: routes, runs POSTROUTING, transmits.
  void send_local(Simulator& sim, UdpPacket packet);

  /// Forward a packet as if it had passed PREROUTING already (used by
  /// replicating interceptors to inject the diverted clone).
  void forward_injected(Simulator& sim, UdpPacket packet);

  /// Datapath counters (observability; cheap, always on).
  struct Counters {
    std::uint64_t received = 0;
    std::uint64_t delivered = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;  // any drop cause
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  void deliver_or_forward(Simulator& sim, UdpPacket&& packet);
  void forward(Simulator& sim, UdpPacket&& packet);
  void send_ttl_exceeded(Simulator& sim, const UdpPacket& expired);
  bool run_prerouting(Simulator& sim, UdpPacket& packet, std::optional<PortId> in_port);
  bool run_postrouting(Simulator& sim, UdpPacket& packet, PortId out_port);

  static std::uint64_t next_id();

  std::string name_;
  std::uint64_t id_;
  std::vector<netbase::IpAddress> local_ips_;
  std::unordered_map<std::uint16_t, UdpApp*> udp_bindings_;
  netbase::LpmTable<PortId> routes_;
  std::vector<std::shared_ptr<PacketHook>> hooks_;
  Counters counters_;
  bool forwarding_ = false;
  bool drop_bogons_ = false;
};

}  // namespace dnslocate::simnet
