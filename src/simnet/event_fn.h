// Move-only callable for simulator events, with inline storage sized for the
// delivery closures Simulator::transmit builds. Those closures capture a whole
// UdpPacket by value, which overflows std::function's small-object buffer and
// costs a heap round-trip per scheduled event — the single hottest allocation
// in a fleet run. EventFn keeps the capture inline; anything larger than the
// buffer still works, it just takes the heap path like std::function would.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dnslocate::simnet {

class EventFn {
 public:
  /// Inline buffer size. Sized to hold the largest hot-path closure (this +
  /// device pointer + port + a by-value UdpPacket with both optionals set)
  /// with headroom; checked by a static_assert at the capture site's TU via
  /// tests rather than here, since UdpPacket is not visible to this header.
  static constexpr std::size_t kInlineCapacity = 320;

  EventFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_.inline_bytes)) Fn(std::forward<F>(fn));
      vtable_ = &inline_vtable<Fn>;
    } else {
      storage_.heap = new Fn(std::forward<F>(fn));
      vtable_ = &heap_vtable<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this == &other) return *this;
    reset();
    move_from(other);
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  /// True when the callable lives in the inline buffer (no heap allocation).
  [[nodiscard]] bool is_inline() const noexcept {
    return vtable_ != nullptr && vtable_->relocate != nullptr;
  }

  void operator()() { vtable_->invoke(target()); }

 private:
  template <typename Fn>
  static constexpr bool fits_inline = sizeof(Fn) <= kInlineCapacity &&
                                      alignof(Fn) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<Fn>;

  struct VTable {
    void (*invoke)(void*);
    void (*destroy)(void*);
    /// Move-construct into `dst` and destroy the source. Null for heap
    /// targets, whose moves transfer the pointer instead.
    void (*relocate)(void* src, void* dst) noexcept;
  };

  template <typename Fn>
  static constexpr VTable inline_vtable{
      [](void* t) { (*static_cast<Fn*>(t))(); },
      [](void* t) { static_cast<Fn*>(t)->~Fn(); },
      [](void* src, void* dst) noexcept {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      }};

  template <typename Fn>
  static constexpr VTable heap_vtable{
      [](void* t) { (*static_cast<Fn*>(t))(); },
      [](void* t) { delete static_cast<Fn*>(t); },
      nullptr};

  void* target() noexcept {
    return is_inline() ? static_cast<void*>(storage_.inline_bytes) : storage_.heap;
  }

  void move_from(EventFn& other) noexcept {
    vtable_ = other.vtable_;
    if (other.is_inline()) {
      vtable_->relocate(other.storage_.inline_bytes, storage_.inline_bytes);
    } else {
      storage_.heap = other.storage_.heap;
    }
    other.vtable_ = nullptr;
  }

  void reset() noexcept {
    if (vtable_ != nullptr) vtable_->destroy(target());
    vtable_ = nullptr;
  }

  union Storage {
    alignas(std::max_align_t) std::byte inline_bytes[kInlineCapacity];
    void* heap;
  };

  Storage storage_;
  const VTable* vtable_ = nullptr;
};

}  // namespace dnslocate::simnet
