#include "simnet/simulator.h"

namespace dnslocate::simnet {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

std::pair<PortId, PortId> Simulator::connect(Device& a, Device& b, LinkConfig config) {
  PortId a_port = next_port_[a.id()]++;
  PortId b_port = next_port_[b.id()]++;
  links_[PortKey{a.id(), a_port}] = PortPeer{&b, b_port, config};
  links_[PortKey{b.id(), b_port}] = PortPeer{&a, a_port, config};
  return {a_port, b_port};
}

void Simulator::schedule(SimDuration delay, std::function<void()> fn) {
  queue_.push(Event{now_ + delay, ++seq_counter_, std::move(fn)});
}

void Simulator::transmit(Device& from, PortId port, UdpPacket packet) {
  auto it = links_.find(PortKey{from.id(), port});
  if (it == links_.end()) {
    trace_event(from, TraceEvent::dropped_no_route, packet, "unconnected port");
    return;
  }
  PortPeer& peer = it->second;
  if (peer.config.loss_rate > 0 && rng_.bernoulli(peer.config.loss_rate)) {
    trace_event(from, TraceEvent::dropped_loss, packet);
    return;
  }

  // Serialization and FIFO queueing when the link has a finite rate.
  SimDuration wait{0};
  SimDuration serialization{0};
  if (peer.config.bandwidth_bps > 0) {
    // Approximate on-the-wire size: payload + IP/UDP headers.
    std::uint64_t bits = (packet.payload.size() + 28) * 8;
    serialization = SimDuration(
        static_cast<SimDuration::rep>(bits * 1'000'000'000ull / peer.config.bandwidth_bps));
    SimTime start = std::max(now_, peer.busy_until);
    wait = start - now_;
    if (wait > peer.config.max_queue_delay) {
      trace_event(from, TraceEvent::dropped_loss, packet, "queue overflow");
      return;
    }
    peer.busy_until = start + serialization;
  }

  trace_event(from, TraceEvent::transmitted, packet);
  Device* to = peer.peer;
  PortId to_port = peer.peer_port;
  schedule(wait + serialization + peer.config.latency,
           [this, to, to_port, pkt = std::move(packet)]() mutable {
             to->receive(*this, std::move(pkt), to_port);
           });
}

std::size_t Simulator::run_until_idle(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && step()) ++processed;
  return processed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.at;
  event.fn();
  return true;
}

void Simulator::trace_event(const Device& device, TraceEvent event, const UdpPacket& packet,
                            std::string detail) {
  if (trace_ != nullptr) trace_->record(now_, device.name(), event, packet, std::move(detail));
}

}  // namespace dnslocate::simnet
