#include "simnet/simulator.h"

#include "obs/metrics.h"

namespace dnslocate::simnet {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

std::uint64_t Simulator::ordinal_of(const Device& device) {
  auto [it, inserted] = ordinals_.try_emplace(device.id(), ordinals_.size());
  return it->second;
}

std::pair<PortId, PortId> Simulator::connect(Device& a, Device& b, LinkConfig config) {
  ordinal_of(a);
  ordinal_of(b);
  PortId a_port = next_port_[a.id()]++;
  PortId b_port = next_port_[b.id()]++;
  links_[PortKey{a.id(), a_port}] = PortPeer{&b, b_port, config};
  links_[PortKey{b.id(), b_port}] = PortPeer{&a, a_port, config};
  return {a_port, b_port};
}

void Simulator::schedule(SimDuration delay, EventFn fn) {
  queue_.push(Event{now_ + delay, ++seq_counter_, std::move(fn)});
}

void Simulator::transmit(Device& from, PortId port, UdpPacket packet) {
  if (obs::metrics_enabled()) {
    static obs::Counter& transmits = obs::registry().counter("simnet_transmits_total");
    transmits.add_always(1);
  }
  auto it = links_.find(PortKey{from.id(), port});
  if (it == links_.end()) {
    trace_event(from, TraceEvent::dropped_no_route, packet, "unconnected port");
    return;
  }
  PortPeer& peer = it->second;
  if (peer.config.loss_rate > 0 && rng_.bernoulli(peer.config.loss_rate)) {
    ++drops_.link_loss;
    trace_event(from, TraceEvent::dropped_loss, packet);
    return;
  }

  // Fault injection: consult the plan per directed link.
  SimDuration fault_delay{0};
  bool duplicate = false;
  if (faults_ != nullptr) {
    std::uint64_t link_key = ordinal_of(from) * 1000003ull + port;
    FaultPlan::Decision decision = faults_->decide(link_key, peer.config.fault_class, packet);
    if (decision.drop) {
      if (decision.burst)
        ++drops_.fault_burst;
      else
        ++drops_.fault_random;
      trace_event(from, TraceEvent::dropped_fault, packet,
                  decision.burst ? "burst loss" : "random loss");
      return;
    }
    if (decision.truncate_to) {
      packet.payload.resize(*decision.truncate_to);
      trace_event(from, TraceEvent::fault_truncated, packet,
                  "payload cut to " + std::to_string(*decision.truncate_to) + " bytes");
    }
    if (decision.extra_delay > SimDuration{0}) {
      fault_delay = decision.extra_delay;
      trace_event(from, TraceEvent::fault_delayed, packet,
                  "+" + std::to_string(decision.extra_delay.count() / 1000) + "us");
    }
    if (decision.duplicate) {
      duplicate = true;
      trace_event(from, TraceEvent::fault_duplicated, packet);
    }
  }

  // Serialization and FIFO queueing when the link has a finite rate.
  SimDuration wait{0};
  SimDuration serialization{0};
  if (peer.config.bandwidth_bps > 0) {
    // Approximate on-the-wire size: payload + IP/UDP headers.
    std::uint64_t bits = (packet.payload.size() + 28) * 8;
    serialization = SimDuration(
        static_cast<SimDuration::rep>(bits * 1'000'000'000ull / peer.config.bandwidth_bps));
    SimTime start = std::max(now_, peer.busy_until);
    wait = start - now_;
    if (wait > peer.config.max_queue_delay) {
      ++drops_.queue_overflow;
      trace_event(from, TraceEvent::dropped_loss, packet, "queue overflow");
      return;
    }
    peer.busy_until = start + serialization;
  }

  trace_event(from, TraceEvent::transmitted, packet);
  Device* to = peer.peer;
  PortId to_port = peer.peer_port;
  SimDuration delivery = wait + serialization + peer.config.latency + fault_delay;
  if (duplicate) {
    // The copy rides behind the original; it is byte-identical, as a
    // network-duplicated datagram would be.
    SimDuration gap = faults_->profile_for(peer.config.fault_class).duplicate_gap;
    schedule(delivery + gap, [this, to, to_port, pkt = packet]() mutable {
      to->receive(*this, std::move(pkt), to_port);
    });
  }
  auto deliver = [this, to, to_port, pkt = std::move(packet)]() mutable {
    to->receive(*this, std::move(pkt), to_port);
  };
  // The delivery closure is the hot path: it must ride EventFn's inline
  // buffer, or every packet hop costs a heap allocation again.
  static_assert(sizeof(deliver) <= EventFn::kInlineCapacity);
  static_assert(std::is_nothrow_move_constructible_v<decltype(deliver)>);
  schedule(delivery, std::move(deliver));
}

std::size_t Simulator::run_until_idle(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && step()) ++processed;
  return processed;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  if (obs::metrics_enabled()) {
    static obs::Counter& events = obs::registry().counter("simnet_events_total");
    events.add_always(1);
  }
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.at;
  event.fn();
  return true;
}

void Simulator::trace_event(const Device& device, TraceEvent event, const UdpPacket& packet,
                            std::string detail) {
  if (trace_ != nullptr) trace_->record(now_, device.name(), event, packet, std::move(detail));
}

}  // namespace dnslocate::simnet
