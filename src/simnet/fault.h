// Deterministic link-fault injection: burst loss (Gilbert–Elliott),
// reordering, duplication, latency jitter, and response truncation.
//
// The localization technique treats *silence* as signal (§3.3: an
// unanswered bogon probe means "unknown", not "lost packet"), so its
// accuracy under realistic residential-network faults is an empirical
// question. A FaultPlan makes those faults reproducible: every decision is
// drawn from a per-link splitmix64 stream seeded from (plan seed, link id),
// so a whole fleet replays bit-identically and adding a link never perturbs
// the fault stream of another.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "simnet/packet.h"
#include "simnet/rng.h"
#include "simnet/time.h"

namespace dnslocate::simnet {

/// Per-link fault parameters. All probabilities are per-packet; the default
/// profile injects nothing.
struct FaultProfile {
  // --- burst loss: Gilbert–Elliott two-state chain, advanced per packet ---
  /// P(good -> bad) evaluated for each packet seen while in the good state.
  double p_good_to_bad = 0.0;
  /// P(bad -> good); the mean burst length is 1 / p_bad_to_good packets.
  double p_bad_to_good = 0.25;
  /// Drop probability while in the good state (residual random loss).
  double loss_good = 0.0;
  /// Drop probability while in the bad state (1.0 = every packet of a burst).
  double loss_bad = 1.0;

  // --- reordering: hold a packet back so later ones overtake it ---
  double reorder_rate = 0.0;
  SimDuration reorder_hold = std::chrono::milliseconds(8);

  // --- duplication: deliver a second, byte-identical copy ---
  double duplicate_rate = 0.0;
  SimDuration duplicate_gap = std::chrono::microseconds(200);

  // --- latency jitter: uniform extra delay in [0, jitter_max) ---
  SimDuration jitter_max{0};

  // --- truncation: chop DNS response payloads mid-message ---
  /// Applied only to UDP payloads from the DNS/DoT server ports, modelling
  /// middleboxes that mangle responses; the receiver's decoder must reject
  /// the fragment without crashing or over-reading.
  double truncate_rate = 0.0;

  /// True when any fault can ever fire.
  [[nodiscard]] bool active() const;

  /// Gilbert–Elliott profile with the given stationary mean loss rate and
  /// mean burst length (packets), losing every packet of a burst.
  static FaultProfile burst_loss(double mean_loss, double mean_burst_len = 4.0);
};

/// Seeded fault-injection plan consulted by Simulator::transmit for every
/// packet crossing a link. Profiles are selected by the link's
/// `LinkConfig::fault_class` tag; links with no matching class fall back to
/// the default profile.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 1) : seed_(seed) {}

  /// Profile applied to links whose fault_class has no explicit override.
  void set_default_profile(FaultProfile profile) { default_profile_ = profile; }
  /// Profile for one class of links ("lan", "access", "isp", "transit").
  void set_class_profile(const std::string& fault_class, FaultProfile profile) {
    class_profiles_[fault_class] = profile;
  }
  [[nodiscard]] const FaultProfile& profile_for(const std::string& fault_class) const;

  /// What the plan decided for one packet on one directed link.
  struct Decision {
    bool drop = false;
    bool burst = false;  // drop happened in the bad (burst) state
    bool duplicate = false;
    SimDuration extra_delay{0};
    /// Truncate the payload to this many bytes before delivery.
    std::optional<std::size_t> truncate_to;
  };

  /// Advance the link's fault state machine for `packet` and decide its
  /// fate. `link_key` identifies the directed link (transmitter id, port).
  Decision decide(std::uint64_t link_key, const std::string& fault_class,
                  const UdpPacket& packet);

  /// Per-cause tallies (complementing simnet::DropCounters, which counts
  /// only drops: these also count the non-drop faults).
  struct Counters {
    std::uint64_t burst_drops = 0;   // lost in the bad state
    std::uint64_t random_drops = 0;  // lost in the good state
    std::uint64_t reordered = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t truncated = 0;
    std::uint64_t jittered = 0;  // packets given nonzero jitter

    [[nodiscard]] std::uint64_t drops() const { return burst_drops + random_drops; }
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }

 private:
  struct LinkState {
    Rng rng{0};
    bool bad = false;  // Gilbert–Elliott state
  };
  LinkState& state_for(std::uint64_t link_key);

  std::uint64_t seed_;
  FaultProfile default_profile_;
  std::unordered_map<std::string, FaultProfile> class_profiles_;
  std::unordered_map<std::uint64_t, LinkState> links_;
  Counters counters_;
};

}  // namespace dnslocate::simnet
