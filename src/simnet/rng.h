// Deterministic pseudo-random number generation (splitmix64 core).
//
// Every stochastic choice in the simulator and the fleet generator draws
// from one of these, seeded explicitly, so whole experiments replay
// bit-identically from a seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dnslocate::simnet {

/// splitmix64: tiny, fast, passes BigCrush for this use, and trivially
/// seedable. Not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Index drawn from the discrete distribution given by `weights`
  /// (weights need not be normalized; all-zero weights pick uniformly).
  std::size_t weighted(std::span<const double> weights);

  /// A child RNG whose stream is independent of this one's future draws.
  /// Used to give each simulated probe its own stream, so adding a probe
  /// never perturbs the randomness of others.
  Rng fork();

 private:
  std::uint64_t state_;
};

}  // namespace dnslocate::simnet
