#include "simnet/packet.h"

namespace dnslocate::simnet {

std::string_view to_string(Channel channel) {
  switch (channel) {
    case Channel::udp: return "udp";
    case Channel::dot_strict: return "dot-strict";
    case Channel::dot_opportunistic: return "dot-opportunistic";
  }
  return "?";
}

std::string_view to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::udp: return "udp";
    case PacketKind::icmp_ttl_exceeded: return "icmp-ttl-exceeded";
  }
  return "?";
}

std::string UdpPacket::to_string() const {
  return src_endpoint().to_string() + " -> " + dst_endpoint().to_string() +
         " ttl=" + std::to_string(ttl) + " len=" + std::to_string(payload.size());
}

std::string FlowKey::to_string() const {
  return netbase::Endpoint{src, sport}.to_string() + " -> " +
         netbase::Endpoint{dst, dport}.to_string();
}

}  // namespace dnslocate::simnet
