#include "simnet/fault.h"

#include <algorithm>

#include "netbase/endpoint.h"

namespace dnslocate::simnet {

bool FaultProfile::active() const {
  bool burst = p_good_to_bad > 0 && loss_bad > 0;
  return burst || loss_good > 0 || reorder_rate > 0 || duplicate_rate > 0 ||
         jitter_max > SimDuration{0} || truncate_rate > 0;
}

FaultProfile FaultProfile::burst_loss(double mean_loss, double mean_burst_len) {
  // Stationary bad-state occupancy pi_b = p_gb / (p_gb + p_bg); with
  // loss_bad = 1 and loss_good = 0 the mean loss rate *is* pi_b, and the
  // mean burst length is 1 / p_bg packets. Solve for p_gb.
  FaultProfile profile;
  if (mean_loss <= 0) return profile;
  mean_loss = std::min(mean_loss, 0.95);
  if (mean_burst_len < 1.0) mean_burst_len = 1.0;
  profile.p_bad_to_good = 1.0 / mean_burst_len;
  profile.p_good_to_bad = profile.p_bad_to_good * mean_loss / (1.0 - mean_loss);
  profile.loss_good = 0.0;
  profile.loss_bad = 1.0;
  return profile;
}

const FaultProfile& FaultPlan::profile_for(const std::string& fault_class) const {
  if (!fault_class.empty()) {
    auto it = class_profiles_.find(fault_class);
    if (it != class_profiles_.end()) return it->second;
  }
  return default_profile_;
}

FaultPlan::LinkState& FaultPlan::state_for(std::uint64_t link_key) {
  auto it = links_.find(link_key);
  if (it != links_.end()) return it->second;
  // Seed the link's stream from (plan seed, link key) so draws on one link
  // never perturb another's, whatever order links first see traffic.
  LinkState state;
  state.rng = Rng(seed_ ^ (link_key * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull));
  return links_.emplace(link_key, std::move(state)).first->second;
}

FaultPlan::Decision FaultPlan::decide(std::uint64_t link_key, const std::string& fault_class,
                                      const UdpPacket& packet) {
  Decision decision;
  const FaultProfile& profile = profile_for(fault_class);
  if (!profile.active()) return decision;
  LinkState& state = state_for(link_key);

  // Advance the Gilbert–Elliott chain once per packet, then sample the
  // state's loss probability.
  if (state.bad) {
    if (state.rng.bernoulli(profile.p_bad_to_good)) state.bad = false;
  } else {
    if (state.rng.bernoulli(profile.p_good_to_bad)) state.bad = true;
  }
  double loss = state.bad ? profile.loss_bad : profile.loss_good;
  if (loss > 0 && state.rng.bernoulli(loss)) {
    decision.drop = true;
    decision.burst = state.bad;
    if (state.bad)
      ++counters_.burst_drops;
    else
      ++counters_.random_drops;
    return decision;
  }

  if (profile.jitter_max > SimDuration{0}) {
    auto jitter = SimDuration(static_cast<SimDuration::rep>(
        state.rng.uniform(static_cast<std::uint64_t>(profile.jitter_max.count()))));
    if (jitter > SimDuration{0}) {
      decision.extra_delay += jitter;
      ++counters_.jittered;
    }
  }

  if (profile.reorder_rate > 0 && state.rng.bernoulli(profile.reorder_rate)) {
    decision.extra_delay += profile.reorder_hold;
    ++counters_.reordered;
  }

  if (profile.duplicate_rate > 0 && state.rng.bernoulli(profile.duplicate_rate)) {
    decision.duplicate = true;
    ++counters_.duplicated;
  }

  // Truncation models a middlebox mangling the response on its way back:
  // only UDP payloads from the DNS/DoT service ports, and only when there
  // is something left to chop (an empty fragment would vanish entirely).
  bool is_response = packet.kind == PacketKind::udp &&
                     (packet.sport == netbase::kDnsPort || packet.sport == netbase::kDotPort);
  if (is_response && packet.payload.size() > 1 && profile.truncate_rate > 0 &&
      state.rng.bernoulli(profile.truncate_rate)) {
    decision.truncate_to = 1 + static_cast<std::size_t>(
                                   state.rng.uniform(packet.payload.size() - 1));
    ++counters_.truncated;
  }
  return decision;
}

}  // namespace dnslocate::simnet
