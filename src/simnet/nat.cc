#include "simnet/nat.h"

#include "simnet/simulator.h"

namespace dnslocate::simnet {

bool DnatRule::matches(const UdpPacket& packet, std::optional<PortId> in) const {
  if (!in.has_value()) return false;  // locally generated traffic never DNATs
  if (in_port.has_value() && *in_port != *in) return false;
  if (packet.dport != match_dport) return false;
  if (family.has_value() && packet.dst.family() != *family) return false;
  if (exempt_bogon_dsts && packet.dst.is_bogon()) return false;
  if (match_bogons_only && !packet.dst.is_bogon()) return false;
  for (const auto& exempt : exempt_dsts)
    if (exempt == packet.dst) return false;
  if (!match_dsts.empty()) {
    bool found = false;
    for (const auto& dst : match_dsts)
      if (dst == packet.dst) {
        found = true;
        break;
      }
    if (!found) return false;
  }
  return target_for(packet).has_value();
}

std::optional<netbase::IpAddress> DnatRule::target_for(const UdpPacket& packet) const {
  return packet.dst.is_v4() ? new_dst_v4 : new_dst_v6;
}

bool NatHook::try_icmp_related(Simulator& sim, Device& device, UdpPacket& packet) {
  if (!packet.quoted) return false;
  auto it = by_reply_.find(packet.quoted->inverted());
  if (it == by_reply_.end()) return false;
  const Entry& entry = entries_[it->second];
  packet.dst = entry.orig.src;
  packet.dport = entry.orig.sport;
  packet.quoted = entry.orig;
  sim.trace_event(device, TraceEvent::unnat_rewritten, packet, "icmp related");
  return true;
}

bool NatHook::try_unnat(Simulator& sim, Device& device, UdpPacket& packet) {
  auto it = by_reply_.find(FlowKey::of(packet));
  if (it == by_reply_.end()) return false;
  const Entry& entry = entries_[it->second];
  FlowKey restored = entry.orig.inverted();
  std::string detail = "restored to " + restored.to_string();
  packet.src = restored.src;
  packet.sport = restored.sport;
  packet.dst = restored.dst;
  packet.dport = restored.dport;
  packet.conntrack_id = it->second;
  ++unnat_hits_;
  sim.trace_event(device, TraceEvent::unnat_rewritten, packet, std::move(detail));
  return true;
}

void NatHook::reindex(std::uint64_t entry_id) {
  const Entry& entry = entries_[entry_id];
  by_orig_[entry.orig] = entry_id;
  by_reply_[entry.translated.inverted()] = entry_id;
}

HookVerdict NatHook::prerouting(Simulator& sim, Device& device, UdpPacket& packet,
                                std::optional<PortId> in_port) {
  // 0. ICMP errors about a tracked flow (RELATED): translate the error's
  //    destination and quoted tuple back to the pre-NAT view, so
  //    traceroute-style probes work from behind the NAT.
  if (packet.kind == PacketKind::icmp_ttl_exceeded) {
    try_icmp_related(sim, device, packet);
    return HookVerdict::accept;
  }

  // 1. Reply of a tracked flow: restore the original tuple. This is the
  //    source-spoofing step that makes interception transparent.
  if (try_unnat(sim, device, packet)) return HookVerdict::accept;

  // 2. Established flow in the original direction: reapply the translation.
  if (auto it = by_orig_.find(FlowKey::of(packet)); it != by_orig_.end()) {
    const Entry& entry = entries_[it->second];
    packet.src = entry.translated.src;
    packet.sport = entry.translated.sport;
    packet.dst = entry.translated.dst;
    packet.dport = entry.translated.dport;
    packet.conntrack_id = it->second;
    return HookVerdict::accept;
  }

  // 3. New flow: evaluate DNAT rules in order.
  for (const DnatRule& rule : dnat_rules_) {
    if (!rule.matches(packet, in_port)) continue;
    netbase::IpAddress target = *rule.target_for(packet);
    std::uint16_t target_port = rule.new_dport.value_or(packet.dport);

    if (rule.replicate) {
      // Divert a copy; the original continues untouched.
      UdpPacket clone = packet;
      clone.dst = target;
      clone.dport = target_port;
      std::uint64_t entry_id = entries_.size();
      entries_.push_back(Entry{FlowKey::of(packet), FlowKey::of(clone)});
      reindex(entry_id);
      clone.conntrack_id = entry_id;
      ++dnat_hits_;
      sim.trace_event(device, TraceEvent::replicated, clone,
                      "copy diverted to " + clone.dst_endpoint().to_string());
      device.forward_injected(sim, std::move(clone));
      return HookVerdict::accept;
    }

    std::string detail =
        "dst " + packet.dst_endpoint().to_string() + " -> " +
        netbase::Endpoint{target, target_port}.to_string();
    std::uint64_t entry_id = entries_.size();
    FlowKey orig = FlowKey::of(packet);
    packet.dst = target;
    packet.dport = target_port;
    entries_.push_back(Entry{orig, FlowKey::of(packet)});
    reindex(entry_id);
    packet.conntrack_id = entry_id;
    ++dnat_hits_;
    sim.trace_event(device, TraceEvent::dnat_rewritten, packet, std::move(detail));
    return HookVerdict::accept;
  }
  return HookVerdict::accept;
}

HookVerdict NatHook::postrouting(Simulator& sim, Device& device, UdpPacket& packet,
                                 PortId out_port) {
  // ICMP generated by this very device about a flow it translated (e.g.
  // the access router DNAT'ing and then expiring a packet) carries the
  // post-translation quoted tuple; restore it so downstream NATs match.
  if (packet.kind == PacketKind::icmp_ttl_exceeded) {
    try_icmp_related(sim, device, packet);
    return HookVerdict::accept;
  }

  // Locally generated replies (e.g. the CPE forwarder answering a DNAT'd
  // query) are restored here; this is the CPE's spoofed response.
  if (try_unnat(sim, device, packet)) return HookVerdict::accept;

  for (const SnatRule& rule : snat_rules_) {
    if (rule.out_port != out_port) continue;
    const auto& to_source = packet.src.is_v4() ? rule.to_source_v4 : rule.to_source_v6;
    if (!to_source.has_value()) continue;
    if (packet.src == *to_source) return HookVerdict::accept;  // already translated / own traffic

    std::uint64_t entry_id;
    if (packet.conntrack_id.has_value()) {
      // Flow already DNAT'd at PREROUTING: extend the same entry.
      entry_id = *packet.conntrack_id;
      by_reply_.erase(entries_[entry_id].translated.inverted());
    } else {
      entry_id = entries_.size();
      entries_.push_back(Entry{FlowKey::of(packet), FlowKey::of(packet)});
      packet.conntrack_id = entry_id;
    }
    std::string detail = "src " + packet.src_endpoint().to_string() + " -> ";
    packet.src = *to_source;
    packet.sport = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 60000 ? 33000 : static_cast<std::uint16_t>(next_ephemeral_ + 1);
    entries_[entry_id].translated.src = packet.src;
    entries_[entry_id].translated.sport = packet.sport;
    reindex(entry_id);
    ++snat_hits_;
    detail += packet.src_endpoint().to_string();
    sim.trace_event(device, TraceEvent::snat_rewritten, packet, std::move(detail));
    return HookVerdict::accept;
  }
  return HookVerdict::accept;
}

}  // namespace dnslocate::simnet
