// Pcap export of simulation traces: turns a TraceSink's transmitted packets
// into a standard .pcap file (LINKTYPE_RAW) that Wireshark/tcpdump can open
// — handy for inspecting the XB6 case study's DNAT behaviour with familiar
// tooling, and for regression-diffing captures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/trace.h"

namespace dnslocate::simnet {

struct PcapOptions {
  /// Which trace events become packets. `transmitted` alone gives one frame
  /// per link emission (the tcpdump view); adding others duplicates frames.
  std::vector<TraceEvent> events = {TraceEvent::transmitted};
};

/// Serialize the trace to pcap bytes (file format, host-endian magic).
/// Packets are synthesized as raw IPv4/IPv6 + UDP; checksums are zero
/// (offload convention). ICMP records are skipped.
std::vector<std::uint8_t> to_pcap(const TraceSink& trace, const PcapOptions& options = {});

/// Convenience: write to_pcap() output to `path`. Returns false on I/O error.
bool write_pcap_file(const TraceSink& trace, const std::string& path,
                     const PcapOptions& options = {});

/// Number of records that would be exported (for tests / callers).
std::size_t pcap_packet_count(const TraceSink& trace, const PcapOptions& options = {});

}  // namespace dnslocate::simnet
