#include "simnet/pcap.h"

#include <cstdio>

namespace dnslocate::simnet {
namespace {

constexpr std::uint32_t kMagicMicroseconds = 0xa1b2c3d4;
constexpr std::uint32_t kLinktypeRaw = 101;  // raw IP, family from version nibble

void put_u16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16le(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16le(out, static_cast<std::uint16_t>(v >> 16));
}
void put_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

bool wanted(const PcapOptions& options, TraceEvent event) {
  for (TraceEvent e : options.events)
    if (e == event) return true;
  return false;
}

bool exportable(const TraceRecord& record, const PcapOptions& options) {
  return wanted(options, record.event) && record.packet.kind == PacketKind::udp &&
         record.packet.families_consistent();
}

/// Raw IP + UDP frame for one packet.
std::vector<std::uint8_t> synthesize_frame(const UdpPacket& packet) {
  std::vector<std::uint8_t> frame;
  std::uint16_t udp_length = static_cast<std::uint16_t>(8 + packet.payload.size());
  if (packet.src.is_v4()) {
    std::uint16_t total = static_cast<std::uint16_t>(20 + udp_length);
    frame.push_back(0x45);  // version 4, IHL 5
    frame.push_back(0);     // DSCP/ECN
    put_u16be(frame, total);
    put_u16be(frame, 0);       // identification
    put_u16be(frame, 0x4000);  // DF
    frame.push_back(packet.ttl);
    frame.push_back(17);  // UDP
    put_u16be(frame, 0);  // header checksum (offload convention)
    auto src = packet.src.v4().to_bytes();
    auto dst = packet.dst.v4().to_bytes();
    frame.insert(frame.end(), src.begin(), src.end());
    frame.insert(frame.end(), dst.begin(), dst.end());
  } else {
    frame.push_back(0x60);  // version 6
    frame.push_back(0);
    put_u16be(frame, 0);  // flow label
    put_u16be(frame, udp_length);
    frame.push_back(17);          // next header: UDP
    frame.push_back(packet.ttl);  // hop limit
    const auto& src = packet.src.v6().bytes();
    const auto& dst = packet.dst.v6().bytes();
    frame.insert(frame.end(), src.begin(), src.end());
    frame.insert(frame.end(), dst.begin(), dst.end());
  }
  put_u16be(frame, packet.sport);
  put_u16be(frame, packet.dport);
  put_u16be(frame, udp_length);
  put_u16be(frame, 0);  // UDP checksum 0 = unset
  frame.insert(frame.end(), packet.payload.begin(), packet.payload.end());
  return frame;
}

}  // namespace

std::size_t pcap_packet_count(const TraceSink& trace, const PcapOptions& options) {
  std::size_t count = 0;
  for (const auto& record : trace.records())
    if (exportable(record, options)) ++count;
  return count;
}

std::vector<std::uint8_t> to_pcap(const TraceSink& trace, const PcapOptions& options) {
  std::vector<std::uint8_t> out;
  // Global header.
  put_u32le(out, kMagicMicroseconds);
  put_u16le(out, 2);   // version major
  put_u16le(out, 4);   // version minor
  put_u32le(out, 0);   // thiszone
  put_u32le(out, 0);   // sigfigs
  put_u32le(out, 65535);  // snaplen
  put_u32le(out, kLinktypeRaw);

  for (const auto& record : trace.records()) {
    if (!exportable(record, options)) continue;
    std::vector<std::uint8_t> frame = synthesize_frame(record.packet);
    auto micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(record.at).count());
    put_u32le(out, static_cast<std::uint32_t>(micros / 1'000'000));
    put_u32le(out, static_cast<std::uint32_t>(micros % 1'000'000));
    put_u32le(out, static_cast<std::uint32_t>(frame.size()));  // incl_len
    put_u32le(out, static_cast<std::uint32_t>(frame.size()));  // orig_len
    out.insert(out.end(), frame.begin(), frame.end());
  }
  return out;
}

bool write_pcap_file(const TraceSink& trace, const std::string& path,
                     const PcapOptions& options) {
  std::vector<std::uint8_t> bytes = to_pcap(trace, options);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  return written == bytes.size();
}

}  // namespace dnslocate::simnet
