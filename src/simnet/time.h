// Simulated time. The simulator never reads the wall clock; all timing is
// event-driven and deterministic.
#pragma once

#include <chrono>
#include <cstdint>

namespace dnslocate::simnet {

/// Nanoseconds since simulation start.
using SimTime = std::chrono::nanoseconds;
using SimDuration = std::chrono::nanoseconds;

// dnslint: allow(header-hygiene): chrono_literals is a std-sanctioned literals-only namespace; importing it keeps 5ms-style durations readable tree-wide
using namespace std::chrono_literals;  // NOLINT

inline constexpr SimTime kSimStart{0};

}  // namespace dnslocate::simnet
