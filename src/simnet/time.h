// Simulated time. The simulator never reads the wall clock; all timing is
// event-driven and deterministic.
#pragma once

#include <chrono>
#include <cstdint>

namespace dnslocate::simnet {

/// Nanoseconds since simulation start.
using SimTime = std::chrono::nanoseconds;
using SimDuration = std::chrono::nanoseconds;

using namespace std::chrono_literals;  // NOLINT: ergonomic for 5ms-style literals

inline constexpr SimTime kSimStart{0};

}  // namespace dnslocate::simnet
