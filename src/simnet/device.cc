#include "simnet/device.h"

#include <atomic>

#include "simnet/simulator.h"

namespace dnslocate::simnet {

Device::Device(std::string name) : name_(std::move(name)), id_(next_id()) {}

std::uint64_t Device::next_id() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

void Device::add_local_ip(const netbase::IpAddress& addr) {
  if (!has_local_ip(addr)) local_ips_.push_back(addr);
}

bool Device::has_local_ip(const netbase::IpAddress& addr) const {
  for (const auto& ip : local_ips_)
    if (ip == addr) return true;
  return false;
}

std::optional<netbase::IpAddress> Device::local_ip(netbase::IpFamily family) const {
  for (const auto& ip : local_ips_)
    if (ip.family() == family) return ip;
  return std::nullopt;
}

void Device::bind_udp(std::uint16_t port, UdpApp* app) { udp_bindings_[port] = app; }

void Device::unbind_udp(std::uint16_t port) { udp_bindings_.erase(port); }

bool Device::is_udp_bound(std::uint16_t port) const { return udp_bindings_.contains(port); }

void Device::add_route(const netbase::Prefix& prefix, PortId out_port) {
  routes_.insert(prefix, out_port);
}

void Device::set_default_route(PortId out_port) {
  add_route(netbase::Prefix(netbase::IpAddress(netbase::Ipv4Address{}), 0), out_port);
  add_route(netbase::Prefix(netbase::IpAddress(netbase::Ipv6Address{}), 0), out_port);
}

std::optional<PortId> Device::route_for(const netbase::IpAddress& dst) const {
  const PortId* port = routes_.lookup(dst);
  return port ? std::optional<PortId>(*port) : std::nullopt;
}

void Device::add_hook(std::shared_ptr<PacketHook> hook) { hooks_.push_back(std::move(hook)); }

bool Device::run_prerouting(Simulator& sim, UdpPacket& packet, std::optional<PortId> in_port) {
  for (const auto& hook : hooks_) {
    if (hook->prerouting(sim, *this, packet, in_port) == HookVerdict::drop) {
      sim.trace_event(*this, TraceEvent::dropped_by_hook, packet, "prerouting");
      return false;
    }
  }
  return true;
}

bool Device::run_postrouting(Simulator& sim, UdpPacket& packet, PortId out_port) {
  for (const auto& hook : hooks_) {
    if (hook->postrouting(sim, *this, packet, out_port) == HookVerdict::drop) {
      sim.trace_event(*this, TraceEvent::dropped_by_hook, packet, "postrouting");
      return false;
    }
  }
  return true;
}

void Device::receive(Simulator& sim, UdpPacket packet, PortId in_port) {
  ++counters_.received;
  sim.trace_event(*this, TraceEvent::received, packet);
  if (!run_prerouting(sim, packet, in_port)) {
    ++counters_.dropped;
    ++sim.drops().by_hook;
    return;
  }
  deliver_or_forward(sim, std::move(packet));
}

void Device::deliver_or_forward(Simulator& sim, UdpPacket&& packet) {
  if (has_local_ip(packet.dst)) {
    auto it = udp_bindings_.find(packet.dport);
    if (it == udp_bindings_.end()) {
      ++counters_.dropped;
      ++sim.drops().no_listener;
      sim.trace_event(*this, TraceEvent::dropped_no_listener, packet);
      return;
    }
    ++counters_.delivered;
    sim.trace_event(*this, TraceEvent::delivered, packet);
    it->second->on_datagram(sim, *this, packet);
    return;
  }
  if (!forwarding_) {
    ++counters_.dropped;
    ++sim.drops().no_route;
    sim.trace_event(*this, TraceEvent::dropped_no_route, packet, "forwarding disabled");
    return;
  }
  forward(sim, std::move(packet));
}

void Device::forward(Simulator& sim, UdpPacket&& packet) {
  if (packet.ttl <= 1) {
    ++counters_.dropped;
    ++sim.drops().ttl_expired;
    sim.trace_event(*this, TraceEvent::dropped_ttl, packet);
    send_ttl_exceeded(sim, packet);
    return;
  }
  --packet.ttl;
  if (drop_bogons_ && packet.dst.is_bogon()) {
    ++counters_.dropped;
    ++sim.drops().no_route;
    sim.trace_event(*this, TraceEvent::dropped_no_route, packet, "bogon destination");
    return;
  }
  std::optional<PortId> out = route_for(packet.dst);
  if (!out) {
    ++counters_.dropped;
    ++sim.drops().no_route;
    sim.trace_event(*this, TraceEvent::dropped_no_route, packet);
    return;
  }
  if (!run_postrouting(sim, packet, *out)) {
    ++counters_.dropped;
    ++sim.drops().by_hook;
    return;
  }
  ++counters_.forwarded;
  sim.trace_event(*this, TraceEvent::forwarded, packet);
  sim.transmit(*this, *out, std::move(packet));
}

void Device::send_local(Simulator& sim, UdpPacket packet) {
  std::optional<PortId> out = route_for(packet.dst);
  if (!out) {
    ++sim.drops().no_route;
    sim.trace_event(*this, TraceEvent::dropped_no_route, packet, "local out");
    return;
  }
  if (!run_postrouting(sim, packet, *out)) {
    ++sim.drops().by_hook;
    return;
  }
  sim.transmit(*this, *out, std::move(packet));
}

void Device::forward_injected(Simulator& sim, UdpPacket packet) {
  // Injected packets may be addressed to this very device (a replicating
  // interceptor cloning towards its own forwarder), so run the full
  // delivery decision, not just forwarding.
  deliver_or_forward(sim, std::move(packet));
}

void Device::send_ttl_exceeded(Simulator& sim, const UdpPacket& expired) {
  // ICMP errors are not generated for other ICMP errors (RFC 1122), and a
  // router without an address of the right family stays silent.
  if (expired.kind != PacketKind::udp) return;
  auto source = local_ip(expired.src.family());
  if (!source) return;

  UdpPacket icmp;
  icmp.kind = PacketKind::icmp_ttl_exceeded;
  icmp.src = *source;
  icmp.dst = expired.src;
  icmp.sport = 0;
  icmp.dport = expired.sport;  // steer delivery to the originating socket
  icmp.payload = expired.payload;  // the quoted datagram
  icmp.quoted = FlowKey::of(expired);
  icmp.trace_id = expired.trace_id;
  send_local(sim, std::move(icmp));
}

}  // namespace dnslocate::simnet
