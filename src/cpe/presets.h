// CPE presets: the router populations the paper's pilot study encountered,
// including the §5 XB6/XDNS case study. Each preset produces a CpeConfig
// given the home's addressing and the ISP resolver to forward to.
#pragma once

#include "cpe/cpe_device.h"

namespace dnslocate::cpe {

/// Addressing and upstream inputs shared by all presets.
struct HomeAddressing {
  netbase::IpAddress wan_v4;
  std::optional<netbase::IpAddress> wan_v6;
  netbase::Endpoint isp_resolver_v4;
  std::optional<netbase::Endpoint> isp_resolver_v6;
};

/// A well-behaved router: NAT only, port 53 closed.
CpeConfig benign_closed(const HomeAddressing& home);

/// A well-behaved router running a dnsmasq forwarder on an open port 53 —
/// answers queries addressed to it but intercepts nothing.
CpeConfig benign_open_dnsmasq(const HomeAddressing& home, const std::string& version = "2.80");

/// §6 misclassification case: open port 53, forwarder does not implement
/// CHAOS queries and punts them upstream.
CpeConfig benign_open_chaos_forwarder(const HomeAddressing& home);

/// The XB6/XB7 (§5): RDK-B's XDNS component using DNAT to send every LAN
/// DNS query to the ISP resolver via its own forwarder — the "bug" variant
/// where the redirect applies to all queries with no opt-in.
CpeConfig xb6_buggy(const HomeAddressing& home);

/// An XB6 without the bug: XDNS present (port 53 open) but no DNAT rule.
CpeConfig xb6_healthy(const HomeAddressing& home);

/// A Pi-hole deployment: the *owner* deliberately intercepts all LAN DNS
/// (usually to strip advertisements), via DNAT to the Pi-hole's dnsmasq.
CpeConfig pihole(const HomeAddressing& home, const std::string& version = "2.87");

/// A router intercepting to its own unbound forwarder; `identity` is the
/// operator-configured id.server string (Table 2's "routing.v2.pw").
CpeConfig intercepting_unbound(const HomeAddressing& home, const std::string& version = "1.9.0",
                               std::optional<std::string> identity = std::nullopt);

/// A router intercepting straight to the ISP resolver (DNAT, no local
/// forwarder answer path).
CpeConfig intercepting_to_resolver(const HomeAddressing& home);

/// A benign open-port forwarder that answers all CHAOS queries NXDOMAIN
/// (the probe-11992 CPE shape from Table 3).
CpeConfig benign_open_chaos_nxdomain(const HomeAddressing& home);

/// A generic dnsmasq router with interception enabled (vendor default or
/// operator config) — the largest CPE-interceptor class in Table 5.
CpeConfig intercepting_dnsmasq(const HomeAddressing& home, const std::string& version = "2.85");

/// An interceptor running arbitrary software — covers the long tail of
/// Table 5 version.bind strings ("Windows NS", "none", "huuh?", ...).
CpeConfig intercepting_custom(const HomeAddressing& home,
                              resolvers::SoftwareProfile software);

}  // namespace dnslocate::cpe
