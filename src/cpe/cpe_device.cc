#include "cpe/cpe_device.h"

namespace dnslocate::cpe {

std::string_view to_string(InterceptMode mode) {
  switch (mode) {
    case InterceptMode::none: return "none";
    case InterceptMode::dnat_to_self: return "dnat_to_self";
    case InterceptMode::dnat_to_resolver: return "dnat_to_resolver";
  }
  return "?";
}

namespace {

/// Diversion target for one family, per the configured mode.
std::optional<netbase::IpAddress> dnat_target(const CpeConfig& config, InterceptMode mode,
                                              netbase::IpFamily family) {
  switch (mode) {
    case InterceptMode::none:
      return std::nullopt;
    case InterceptMode::dnat_to_self:
      // "DNAT rewrites all query destinations to be the CPE's own private IP
      // address, so that the CPE's DNS forwarder can send them to its own
      // pre-configured resolver." (§3.2)
      return family == netbase::IpFamily::v4 ? std::optional(config.lan_v4) : config.lan_v6;
    case InterceptMode::dnat_to_resolver: {
      if (family == netbase::IpFamily::v4) return config.forwarder.upstream_v4.address;
      if (config.forwarder.upstream_v6) return config.forwarder.upstream_v6->address;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace

CpeHandles build_cpe(simnet::Simulator& sim, const CpeConfig& config, simnet::Device& lan_peer,
                     simnet::Device& wan_peer) {
  CpeHandles handles;
  auto& device = sim.add_device<simnet::Device>(config.name);
  handles.device = &device;
  device.set_forwarding(true);

  device.add_local_ip(config.lan_v4);
  device.add_local_ip(config.wan_v4);
  if (config.lan_v6) device.add_local_ip(*config.lan_v6);
  if (config.wan_v6) device.add_local_ip(*config.wan_v6);

  auto [lan_port, lan_peer_port] = sim.connect(
      device, lan_peer, {.latency = std::chrono::microseconds(300), .fault_class = "lan"});
  auto [wan_port, wan_peer_port] = sim.connect(
      device, wan_peer, {.latency = std::chrono::milliseconds(2), .fault_class = "access"});
  handles.lan_port = lan_port;
  handles.wan_port = wan_port;
  handles.lan_peer_port = lan_peer_port;
  handles.wan_peer_port = wan_peer_port;

  device.add_route(config.lan_prefix_v4, lan_port);
  if (config.lan_prefix_v6) device.add_route(*config.lan_prefix_v6, lan_port);
  device.set_default_route(wan_port);
  // The default route covers both families; LAN prefixes override it.

  auto nat = std::make_shared<simnet::NatHook>();
  handles.nat = nat;

  // Masquerade LAN traffic leaving the WAN port.
  simnet::SnatRule snat;
  snat.out_port = wan_port;
  snat.to_source_v4 = config.wan_v4;
  snat.to_source_v6 = config.wan_v6;
  nat->add_snat_rule(snat);

  // Interception DNAT. The rule matches *everything the LAN sends to port
  // 53* — including queries addressed to the CPE's own public IP, which is
  // the role-switch §3.2 detects.
  auto install_intercept = [&](InterceptMode mode, netbase::IpFamily family) {
    auto target = dnat_target(config, mode, family);
    if (!target) return;
    simnet::DnatRule rule;
    rule.in_port = lan_port;
    rule.match_dport = netbase::kDnsPort;
    rule.family = family;
    rule.match_dsts = config.intercept_only;
    rule.exempt_dsts = config.intercept_exempt;
    if (family == netbase::IpFamily::v4)
      rule.new_dst_v4 = target;
    else
      rule.new_dst_v6 = target;
    rule.replicate = config.replicate;
    nat->add_dnat_rule(rule);
    if (config.intercept_dot) {
      simnet::DnatRule dot_rule = rule;
      dot_rule.match_dport = netbase::kDotPort;
      nat->add_dnat_rule(dot_rule);
    }
  };
  install_intercept(config.intercept_v4, netbase::IpFamily::v4);
  install_intercept(config.intercept_v6, netbase::IpFamily::v6);

  device.add_hook(nat);

  if (config.forwarder_enabled) {
    resolvers::ForwarderConfig forwarder_config = config.forwarder;
    // A DoT-intercepting CPE terminates the TLS itself (opportunistic
    // clients accept that), so its forwarder must serve 853.
    if (config.intercept_dot) forwarder_config.serve_dot = true;
    if (!forwarder_config.wan_source_v4) forwarder_config.wan_source_v4 = config.wan_v4;
    if (!forwarder_config.wan_source_v6) forwarder_config.wan_source_v6 = config.wan_v6;
    handles.forwarder = std::make_shared<resolvers::DnsForwarderApp>(forwarder_config);
    handles.forwarder->attach(device);
  }
  return handles;
}

}  // namespace dnslocate::cpe
