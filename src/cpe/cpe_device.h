// Customer Premises Equipment: a home router assembled from simnet parts —
// NAT/masquerade, an optional DNS forwarder, and optionally the DNAT
// interception behaviour the paper found in the wild (§3.2, §5).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netbase/prefix.h"
#include "resolvers/forwarder.h"
#include "simnet/nat.h"
#include "simnet/simulator.h"

namespace dnslocate::cpe {

/// How (and whether) the CPE intercepts DNS.
enum class InterceptMode {
  none,              // well-behaved router
  dnat_to_self,      // DNAT to the CPE's own forwarder (Dnsmasq/XDNS style)
  dnat_to_resolver,  // DNAT straight to the upstream resolver
};

std::string_view to_string(InterceptMode mode);

/// Everything needed to instantiate a CPE.
struct CpeConfig {
  std::string name = "cpe";

  // Addressing.
  netbase::IpAddress wan_v4;                       // public or CGN address
  std::optional<netbase::IpAddress> wan_v6;        // GUA if the home has IPv6
  netbase::IpAddress lan_v4 = netbase::Ipv4Address(192, 168, 1, 1);
  std::optional<netbase::IpAddress> lan_v6;
  netbase::Prefix lan_prefix_v4{netbase::IpAddress(netbase::Ipv4Address(192, 168, 1, 0)), 24};
  std::optional<netbase::Prefix> lan_prefix_v6;

  /// Port 53 open on the CPE (DNS forwarder listening). Required for
  /// interception modes that answer locally, but also common on benign CPE.
  bool forwarder_enabled = true;
  resolvers::ForwarderConfig forwarder;

  /// Interception per family. The paper found v4-only interception is the
  /// overwhelmingly common configuration (§4.1.1).
  InterceptMode intercept_v4 = InterceptMode::none;
  InterceptMode intercept_v6 = InterceptMode::none;
  /// Destinations never intercepted ("one resolver allowed" pattern).
  std::vector<netbase::IpAddress> intercept_exempt;
  /// If non-empty, intercept only these destinations ("one intercepted").
  std::vector<netbase::IpAddress> intercept_only;
  /// Query replication instead of pure diversion.
  bool replicate = false;
  /// Also DNAT port-853 (DoT) flows. Strict-profile clients then fail their
  /// handshakes; opportunistic-profile clients are intercepted (§6).
  bool intercept_dot = false;
};

/// Handles to the live pieces of a built CPE.
struct CpeHandles {
  simnet::Device* device = nullptr;
  std::shared_ptr<simnet::NatHook> nat;
  std::shared_ptr<resolvers::DnsForwarderApp> forwarder;  // null if disabled
  simnet::PortId lan_port = 0;
  simnet::PortId wan_port = 0;
  /// Ports allocated on the peers, so callers can finish their routing
  /// (e.g. the host's default route towards the CPE).
  simnet::PortId lan_peer_port = 0;
  simnet::PortId wan_peer_port = 0;
};

/// Build a CPE in `sim`, wired between `lan_peer` (the measurement host)
/// and `wan_peer` (the ISP access router). Installs addresses, routes,
/// masquerading, the forwarder, and the configured interception rules.
CpeHandles build_cpe(simnet::Simulator& sim, const CpeConfig& config,
                     simnet::Device& lan_peer, simnet::Device& wan_peer);

}  // namespace dnslocate::cpe
