#include "cpe/presets.h"

namespace dnslocate::cpe {
namespace {

/// Common scaffold: RFC 1918 LAN, ULA for v6 when the home has IPv6.
CpeConfig base_config(const HomeAddressing& home) {
  CpeConfig config;
  config.wan_v4 = home.wan_v4;
  config.wan_v6 = home.wan_v6;
  config.lan_v4 = *netbase::IpAddress::parse("192.168.1.1");
  config.lan_prefix_v4 = *netbase::Prefix::parse("192.168.1.0/24");
  if (home.wan_v6) {
    config.lan_v6 = *netbase::IpAddress::parse("fd00:1::1");
    config.lan_prefix_v6 = *netbase::Prefix::parse("fd00:1::/64");
  }
  config.forwarder.upstream_v4 = home.isp_resolver_v4;
  config.forwarder.upstream_v6 = home.isp_resolver_v6;
  return config;
}

}  // namespace

CpeConfig benign_closed(const HomeAddressing& home) {
  CpeConfig config = base_config(home);
  config.name = "cpe-benign-closed";
  config.forwarder_enabled = false;
  return config;
}

CpeConfig benign_open_dnsmasq(const HomeAddressing& home, const std::string& version) {
  CpeConfig config = base_config(home);
  config.name = "cpe-benign-open";
  config.forwarder.software = resolvers::dnsmasq(version);
  return config;
}

CpeConfig benign_open_chaos_forwarder(const HomeAddressing& home) {
  CpeConfig config = base_config(home);
  config.name = "cpe-benign-chaos-fwd";
  config.forwarder.software = resolvers::chaos_forwarder("vendor-forwarder");
  return config;
}

CpeConfig benign_open_chaos_nxdomain(const HomeAddressing& home) {
  CpeConfig config = base_config(home);
  config.name = "cpe-benign-chaos-nx";
  config.forwarder.software = resolvers::chaos_nxdomain("vendor-forwarder");
  return config;
}

CpeConfig xb6_buggy(const HomeAddressing& home) {
  CpeConfig config = base_config(home);
  config.name = "cpe-xb6-buggy";
  config.forwarder.software = resolvers::xdns();
  // The bug: every LAN query is DNAT'd to XDNS with no opt-in — "directing
  // all queries to the ISP's resolver, without giving users any indication
  // that their choice has been curtailed" (§5). v4 only, matching §4.1.1.
  config.intercept_v4 = InterceptMode::dnat_to_self;
  return config;
}

CpeConfig xb6_healthy(const HomeAddressing& home) {
  CpeConfig config = base_config(home);
  config.name = "cpe-xb6-healthy";
  config.forwarder.software = resolvers::xdns();
  return config;
}

CpeConfig pihole(const HomeAddressing& home, const std::string& version) {
  CpeConfig config = base_config(home);
  config.name = "cpe-pihole";
  config.forwarder.software = resolvers::pihole(version);
  config.intercept_v4 = InterceptMode::dnat_to_self;
  return config;
}

CpeConfig intercepting_unbound(const HomeAddressing& home, const std::string& version,
                               std::optional<std::string> identity) {
  CpeConfig config = base_config(home);
  config.name = "cpe-unbound";
  config.forwarder.software = resolvers::unbound(version, std::move(identity));
  config.intercept_v4 = InterceptMode::dnat_to_self;
  return config;
}

CpeConfig intercepting_dnsmasq(const HomeAddressing& home, const std::string& version) {
  CpeConfig config = base_config(home);
  config.name = "cpe-dnsmasq-intercept";
  config.forwarder.software = resolvers::dnsmasq(version);
  config.intercept_v4 = InterceptMode::dnat_to_self;
  return config;
}

CpeConfig intercepting_custom(const HomeAddressing& home, resolvers::SoftwareProfile software) {
  CpeConfig config = base_config(home);
  config.name = "cpe-custom-intercept";
  config.forwarder.software = std::move(software);
  config.intercept_v4 = InterceptMode::dnat_to_self;
  return config;
}

CpeConfig intercepting_to_resolver(const HomeAddressing& home) {
  CpeConfig config = base_config(home);
  config.name = "cpe-dnat-resolver";
  config.forwarder_enabled = false;
  config.intercept_v4 = InterceptMode::dnat_to_resolver;
  return config;
}

}  // namespace dnslocate::cpe
