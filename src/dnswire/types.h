// Core DNS protocol enumerations (RFC 1035 and friends).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dnslocate::dnswire {

/// Resource record types. Values are the on-wire RFC assignments.
enum class RecordType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  SRV = 33,
  OPT = 41,   // EDNS0 pseudo-RR (RFC 6891)
  ANY = 255,
};

/// Record classes. CH (CHAOS) carries the debugging queries this library
/// is built around (version.bind, id.server; RFC 4892).
enum class RecordClass : std::uint16_t {
  IN = 1,
  CH = 3,
  NONE = 254,
  ANY = 255,
};

/// Response codes (4-bit field in the header; EDNS extends it, unused here).
enum class Rcode : std::uint8_t {
  NOERROR = 0,
  FORMERR = 1,
  SERVFAIL = 2,
  NXDOMAIN = 3,
  NOTIMP = 4,
  REFUSED = 5,
};

/// Header opcodes.
enum class Opcode : std::uint8_t {
  QUERY = 0,
  IQUERY = 1,
  STATUS = 2,
  NOTIFY = 4,
  UPDATE = 5,
};

std::string_view to_string(RecordType type);
std::string_view to_string(RecordClass cls);
std::string_view to_string(Rcode rcode);
std::string_view to_string(Opcode opcode);

}  // namespace dnslocate::dnswire
