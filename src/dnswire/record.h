// Resource records and typed RDATA.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dnswire/name.h"
#include "dnswire/types.h"
#include "netbase/ipv4.h"
#include "netbase/ipv6.h"

namespace dnslocate::dnswire {

/// A (IPv4 host address) RDATA.
struct ARecord {
  netbase::Ipv4Address address;
  friend auto operator<=>(const ARecord&, const ARecord&) = default;
};

/// AAAA (IPv6 host address) RDATA.
struct AaaaRecord {
  netbase::Ipv6Address address;
  friend auto operator<=>(const AaaaRecord&, const AaaaRecord&) = default;
};

/// TXT RDATA: one or more character-strings, each at most 255 octets.
/// The CHAOS-class debugging answers (version.bind, id.server) are TXT.
struct TxtRecord {
  std::vector<std::string> strings;

  /// All strings joined with no separator — the usual client-side view.
  [[nodiscard]] std::string joined() const;
  friend auto operator<=>(const TxtRecord&, const TxtRecord&) = default;
};

/// CNAME RDATA.
struct CnameRecord {
  DnsName target;
  friend auto operator<=>(const CnameRecord&, const CnameRecord&) = default;
};

/// NS RDATA.
struct NsRecord {
  DnsName nameserver;
  friend auto operator<=>(const NsRecord&, const NsRecord&) = default;
};

/// PTR RDATA.
struct PtrRecord {
  DnsName target;
  friend auto operator<=>(const PtrRecord&, const PtrRecord&) = default;
};

/// SOA RDATA.
struct SoaRecord {
  DnsName mname;
  DnsName rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
  friend auto operator<=>(const SoaRecord&, const SoaRecord&) = default;
};

/// MX RDATA.
struct MxRecord {
  std::uint16_t preference = 0;
  DnsName exchange;
  friend auto operator<=>(const MxRecord&, const MxRecord&) = default;
};

/// SRV RDATA (RFC 2782).
struct SrvRecord {
  std::uint16_t priority = 0;
  std::uint16_t weight = 0;
  std::uint16_t port = 0;
  DnsName target;
  friend auto operator<=>(const SrvRecord&, const SrvRecord&) = default;
};

/// EDNS0 OPT pseudo-record (RFC 6891). We only model the pieces the library
/// uses: advertised UDP payload size and the raw options blob.
struct OptRecord {
  std::uint16_t udp_payload_size = 1232;
  std::vector<std::uint8_t> options;
  friend auto operator<=>(const OptRecord&, const OptRecord&) = default;
};

/// Fallback for record types this library does not interpret.
struct RawRecord {
  std::vector<std::uint8_t> data;
  friend auto operator<=>(const RawRecord&, const RawRecord&) = default;
};

using Rdata = std::variant<ARecord, AaaaRecord, TxtRecord, CnameRecord, NsRecord, PtrRecord,
                           SoaRecord, MxRecord, SrvRecord, OptRecord, RawRecord>;

/// A complete resource record.
struct ResourceRecord {
  DnsName name;
  RecordType type = RecordType::A;
  RecordClass klass = RecordClass::IN;
  std::uint32_t ttl = 0;
  Rdata rdata;

  /// Human-readable zone-file-ish rendering for logs and traces.
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const ResourceRecord&, const ResourceRecord&) = default;
};

// Convenience constructors for the record shapes the library uses constantly.
ResourceRecord make_a(const DnsName& name, netbase::Ipv4Address addr, std::uint32_t ttl = 300);
ResourceRecord make_aaaa(const DnsName& name, const netbase::Ipv6Address& addr,
                         std::uint32_t ttl = 300);
ResourceRecord make_txt(const DnsName& name, std::string text, RecordClass klass = RecordClass::IN,
                        std::uint32_t ttl = 0);
ResourceRecord make_cname(const DnsName& name, const DnsName& target, std::uint32_t ttl = 300);

}  // namespace dnslocate::dnswire
