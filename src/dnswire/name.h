// DNS domain names: a validated sequence of labels.
//
// Names compare case-insensitively (RFC 1035 §2.3.3) but preserve the case
// they were constructed with, matching resolver behaviour (0x20 encoding
// relies on this).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dnslocate::dnswire {

/// Maximum label length in octets (RFC 1035 §2.3.4).
inline constexpr std::size_t kMaxLabelLength = 63;
/// Maximum total name length in wire octets, including length bytes and the
/// terminating root label.
inline constexpr std::size_t kMaxNameLength = 255;

/// A domain name. The root name has zero labels.
class DnsName {
 public:
  /// The root name ".".
  DnsName() = default;

  /// Parse presentation format ("www.example.com", trailing dot optional,
  /// "." for root). Rejects empty labels, oversize labels/names. Does not
  /// support \DDD escapes (none of the names this library handles need them).
  static std::optional<DnsName> parse(std::string_view text);

  /// Build from raw labels; returns nullopt if any label is empty/oversize
  /// or the total exceeds kMaxNameLength.
  static std::optional<DnsName> from_labels(std::vector<std::string> labels);

  [[nodiscard]] const std::vector<std::string>& labels() const { return labels_; }
  [[nodiscard]] bool is_root() const { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }

  /// Presentation form without trailing dot ("example.com"); "." for root.
  [[nodiscard]] std::string to_string() const;

  /// Wire-format length in octets (sum of 1+len per label, +1 for root).
  [[nodiscard]] std::size_t wire_length() const;

  /// Case-insensitive equality (the DNS notion of "the same name").
  [[nodiscard]] bool equals_ignore_case(const DnsName& other) const;

  /// True if this name is `suffix` or ends with its labels
  /// (case-insensitive): "a.b.example.com".ends_with("example.com").
  [[nodiscard]] bool ends_with(const DnsName& suffix) const;

  /// Name with the first label removed; root stays root.
  [[nodiscard]] DnsName parent() const;

  /// Lowercased copy, for canonical map keys.
  [[nodiscard]] DnsName to_lower() const;

  /// Byte-wise (case-sensitive) comparison; use equals_ignore_case for DNS
  /// semantics.
  friend auto operator<=>(const DnsName&, const DnsName&) = default;

 private:
  std::vector<std::string> labels_;
};

/// Case-insensitive hash matching equals_ignore_case; pair them when using
/// DnsName as a hash key.
struct DnsNameCaseHash {
  std::size_t operator()(const DnsName& name) const noexcept;
};
struct DnsNameCaseEq {
  bool operator()(const DnsName& a, const DnsName& b) const noexcept {
    return a.equals_ignore_case(b);
  }
};

}  // namespace dnslocate::dnswire
