#include "dnswire/name.h"

#include <algorithm>
#include <cctype>

namespace dnslocate::dnswire {
namespace {

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool labels_valid(const std::vector<std::string>& labels) {
  std::size_t wire = 1;  // root byte
  for (const auto& label : labels) {
    if (label.empty() || label.size() > kMaxLabelLength) return false;
    wire += 1 + label.size();
  }
  return wire <= kMaxNameLength;
}

}  // namespace

std::optional<DnsName> DnsName::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return DnsName{};
  if (text.back() == '.') text.remove_suffix(1);
  if (text.empty()) return std::nullopt;

  std::vector<std::string> labels;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t dot = text.find('.', start);
    std::string_view label =
        dot == std::string_view::npos ? text.substr(start) : text.substr(start, dot - start);
    labels.emplace_back(label);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return from_labels(std::move(labels));
}

std::optional<DnsName> DnsName::from_labels(std::vector<std::string> labels) {
  if (!labels_valid(labels)) return std::nullopt;
  DnsName name;
  name.labels_ = std::move(labels);
  return name;
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += labels_[i];
  }
  return out;
}

std::size_t DnsName::wire_length() const {
  std::size_t len = 1;
  for (const auto& label : labels_) len += 1 + label.size();
  return len;
}

bool DnsName::equals_ignore_case(const DnsName& other) const {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const auto& a = labels_[i];
    const auto& b = other.labels_[i];
    if (a.size() != b.size()) return false;
    for (std::size_t j = 0; j < a.size(); ++j)
      if (ascii_lower(a[j]) != ascii_lower(b[j])) return false;
  }
  return true;
}

bool DnsName::ends_with(const DnsName& suffix) const {
  if (suffix.labels_.size() > labels_.size()) return false;
  std::size_t offset = labels_.size() - suffix.labels_.size();
  for (std::size_t i = 0; i < suffix.labels_.size(); ++i) {
    const auto& a = labels_[offset + i];
    const auto& b = suffix.labels_[i];
    if (a.size() != b.size()) return false;
    for (std::size_t j = 0; j < a.size(); ++j)
      if (ascii_lower(a[j]) != ascii_lower(b[j])) return false;
  }
  return true;
}

DnsName DnsName::parent() const {
  DnsName out;
  if (labels_.size() <= 1) return out;
  out.labels_.assign(labels_.begin() + 1, labels_.end());
  return out;
}

DnsName DnsName::to_lower() const {
  DnsName out;
  out.labels_.reserve(labels_.size());
  for (const auto& label : labels_) {
    std::string lower = label;
    std::transform(lower.begin(), lower.end(), lower.begin(), ascii_lower);
    out.labels_.push_back(std::move(lower));
  }
  return out;
}

std::size_t DnsNameCaseHash::operator()(const DnsName& name) const noexcept {
  std::size_t h = 0xcbf29ce484222325ull;
  for (const auto& label : name.labels()) {
    for (char c : label) h = (h ^ static_cast<unsigned char>(ascii_lower(c))) * 0x100000001b3ull;
    h = (h ^ 0xff) * 0x100000001b3ull;  // label separator
  }
  return h;
}

}  // namespace dnslocate::dnswire
