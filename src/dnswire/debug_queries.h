// Well-known DNS debugging queries (RFC 4892) used by the localization
// technique: version.bind, id.server, hostname.bind — all CHAOS TXT.
#pragma once

#include <cstdint>

#include "dnswire/message.h"

namespace dnslocate::dnswire {

/// The CH TXT name "version.bind" — answered by most resolver software with
/// a software/version string; the paper's §3.2 CPE test hinges on it.
const DnsName& version_bind();

/// The CH TXT name "id.server" — answered by anycast resolvers with a
/// site/instance identifier (Cloudflare: IATA code; Quad9: instance FQDN).
const DnsName& id_server();

/// The CH TXT name "hostname.bind" — the older BIND spelling of id.server,
/// used by Jones et al. against the roots.
const DnsName& hostname_bind();

/// Build the CH TXT query for any of the above.
Message make_chaos_query(std::uint16_t id, const DnsName& name);

/// True if `m` is a CHAOS-class TXT question for `name`.
bool is_chaos_query_for(const Message& m, const DnsName& name);

}  // namespace dnslocate::dnswire
