#include "dnswire/view.h"

#include <string>

namespace dnslocate::dnswire {
namespace {

char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Structural cursor: the same bounds and name discipline as the owning
/// decoder's Reader, but labels are skipped, never copied.
class Walker {
 public:
  Walker(std::span<const std::uint8_t> wire, DecodeError* error)
      : wire_(wire), error_(error) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::size_t remaining() const { return wire_.size() - offset_; }

  bool fail(DecodeError::Code code, std::string context) {
    if (error_ && !failed_) *error_ = DecodeError{code, offset_, std::move(context)};
    failed_ = true;
    return false;
  }

  bool u8(std::uint8_t& out) {
    if (remaining() < 1) return fail(DecodeError::Code::truncated, "u8");
    out = wire_[offset_++];
    return true;
  }
  bool u16(std::uint16_t& out) {
    if (remaining() < 2) return fail(DecodeError::Code::truncated, "u16");
    out = static_cast<std::uint16_t>((std::uint16_t{wire_[offset_]} << 8) | wire_[offset_ + 1]);
    offset_ += 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    std::uint16_t hi = 0, lo = 0;
    if (!u16(hi) || !u16(lo)) return false;
    out = (std::uint32_t{hi} << 16) | lo;
    return true;
  }
  bool skip(std::size_t n, const char* what) {
    if (remaining() < n) return fail(DecodeError::Code::truncated, what);
    offset_ += n;
    return true;
  }

  /// Validate a (possibly compressed) name without materializing labels.
  /// Identical acceptance rules to Reader::name: backward pointers only, a
  /// 64-jump cap, reserved label bits rejected, expansion capped at 255.
  bool skip_name() {
    std::size_t cursor = offset_;
    bool jumped = false;
    std::size_t jumps = 0;
    std::size_t expanded = 1;  // root byte

    while (true) {
      if (cursor >= wire_.size()) return fail(DecodeError::Code::truncated, "name");
      std::uint8_t len = wire_[cursor];
      if ((len & 0xc0) == 0xc0) {
        if (cursor + 1 >= wire_.size())
          return fail(DecodeError::Code::truncated, "name pointer");
        std::size_t target =
            (static_cast<std::size_t>(len & 0x3f) << 8) | wire_[cursor + 1];
        if (!jumped) offset_ = cursor + 2;
        if (target >= cursor) return fail(DecodeError::Code::bad_pointer, "forward pointer");
        if (++jumps > 64) return fail(DecodeError::Code::bad_pointer, "pointer loop");
        cursor = target;
        jumped = true;
        continue;
      }
      if ((len & 0xc0) != 0) return fail(DecodeError::Code::bad_label, "reserved label bits");
      if (len == 0) {
        if (!jumped) offset_ = cursor + 1;
        return true;
      }
      if (cursor + 1 + len > wire_.size())
        return fail(DecodeError::Code::truncated, "label body");
      expanded += 1u + len;
      if (expanded > kMaxNameLength)
        return fail(DecodeError::Code::name_too_long, "name > 255 octets");
      cursor += 1u + len;
    }
  }

 private:
  std::span<const std::uint8_t> wire_;
  DecodeError* error_;
  std::size_t offset_ = 0;
  bool failed_ = false;
};

/// Iterate the labels of a wire name, calling `visit(label_span)` for each.
/// Assumes the name already passed skip_name (no validation re-done beyond
/// what safe traversal needs).
template <typename Visit>
bool for_each_label(std::span<const std::uint8_t> wire, std::size_t offset, Visit&& visit) {
  std::size_t cursor = offset;
  std::size_t jumps = 0;
  while (cursor < wire.size()) {
    std::uint8_t len = wire[cursor];
    if ((len & 0xc0) == 0xc0) {
      if (cursor + 1 >= wire.size() || ++jumps > 64) return false;
      cursor = (static_cast<std::size_t>(len & 0x3f) << 8) | wire[cursor + 1];
      continue;
    }
    if (len == 0) return true;
    if ((len & 0xc0) != 0 || cursor + 1 + len > wire.size()) return false;
    if (!visit(wire.subspan(cursor + 1, len))) return false;
    cursor += 1u + len;
  }
  return false;
}

}  // namespace

std::optional<DnsName> QuestionView::name() const {
  return detail::decode_name_at(wire_, name_offset_);
}

bool QuestionView::name_equals(const DnsName& other) const {
  const auto& labels = other.labels();
  std::size_t next = 0;
  bool ok = for_each_label(wire_, name_offset_, [&](std::span<const std::uint8_t> label) {
    if (next >= labels.size()) return false;
    const std::string& expected = labels[next++];
    if (label.size() != expected.size()) return false;
    for (std::size_t i = 0; i < label.size(); ++i) {
      if (ascii_lower(static_cast<char>(label[i])) != ascii_lower(expected[i])) return false;
    }
    return true;
  });
  return ok && next == labels.size();
}

std::optional<Question> QuestionView::to_question() const {
  std::optional<DnsName> n = name();
  if (!n) return std::nullopt;
  return Question{std::move(*n), type_, klass_};
}

std::optional<DnsName> RecordView::name() const {
  return detail::decode_name_at(wire_, name_offset_);
}

std::optional<ResourceRecord> RecordView::to_record(DecodeError* error) const {
  return detail::decode_record_at(wire_, name_offset_, error);
}

std::optional<Message> MessageView::to_message(DecodeError* error) const {
  Message m;
  m.id = id_;
  m.flags = flags_;
  for (const QuestionView& qv : questions_) {
    std::optional<Question> q = qv.to_question();
    if (!q) return std::nullopt;
    m.questions.push_back(std::move(*q));
  }
  auto section = [&](const auto& views, RecordSection& out) {
    for (const RecordView& rv : views) {
      std::optional<ResourceRecord> rr = rv.to_record(error);
      if (!rr) return false;
      out.push_back(std::move(*rr));
    }
    return true;
  };
  if (!section(answers_, m.answers) || !section(authorities_, m.authorities) ||
      !section(additionals_, m.additionals))
    return std::nullopt;
  return m;
}

std::optional<MessageView> decode_view(std::span<const std::uint8_t> wire, DecodeError* error,
                                       DecodeOptions options) {
  Walker w(wire, error);
  MessageView view;
  view.wire_ = wire;

  std::uint16_t flags_wire = 0, qdcount = 0, ancount = 0, nscount = 0, arcount = 0;
  if (!w.u16(view.id_) || !w.u16(flags_wire) || !w.u16(qdcount) || !w.u16(ancount) ||
      !w.u16(nscount) || !w.u16(arcount))
    return std::nullopt;
  view.flags_ = Flags::from_wire(flags_wire);

  for (std::uint16_t i = 0; i < qdcount; ++i) {
    QuestionView qv;
    qv.wire_ = wire;
    qv.name_offset_ = w.offset();
    std::uint16_t type = 0, klass = 0;
    if (!w.skip_name() || !w.u16(type) || !w.u16(klass)) return std::nullopt;
    qv.type_ = static_cast<RecordType>(type);
    qv.klass_ = static_cast<RecordClass>(klass);
    view.questions_.push_back(qv);
  }

  auto section = [&](std::uint16_t count, auto& out) {
    for (std::uint16_t i = 0; i < count; ++i) {
      RecordView rv;
      rv.wire_ = wire;
      rv.name_offset_ = w.offset();
      std::uint16_t type = 0, klass = 0, rdlength = 0;
      std::uint32_t ttl = 0;
      if (!w.skip_name() || !w.u16(type) || !w.u16(klass) || !w.u32(ttl) || !w.u16(rdlength))
        return false;
      rv.type_ = static_cast<RecordType>(type);
      rv.raw_klass_ = klass;
      rv.ttl_ = ttl;
      rv.rdata_offset_ = w.offset();
      rv.rdata_length_ = rdlength;
      if (!w.skip(rdlength, "rdata")) return false;
      out.push_back(rv);
    }
    return true;
  };
  if (!section(ancount, view.answers_) || !section(nscount, view.authorities_) ||
      !section(arcount, view.additionals_))
    return std::nullopt;

  view.trailing_ = w.remaining();
  if (options.reject_trailing_bytes && view.trailing_ > 0) {
    w.fail(DecodeError::Code::trailing_bytes,
           std::to_string(view.trailing_) + " bytes after message");
    return std::nullopt;
  }
  return view;
}

}  // namespace dnslocate::dnswire
