// Zero-copy decode view over a wire-format message. decode_view() walks the
// buffer once, validating structure (bounds, compression-pointer discipline,
// name length) without materializing names, strings, or rdata — no allocation
// happens until a caller asks for an owning value. The UDP engine uses this as
// a cheap demux prefilter: most inbound datagrams only need the id, the QR
// bit, and the first question to find their owner; full decoding happens once,
// on the matched query's thread.
//
// A view BORROWS the buffer it was decoded from. It is valid only while those
// bytes outlive it; copying a view copies the borrow, not the bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "dnswire/decoder.h"
#include "dnswire/message.h"
#include "dnswire/record.h"
#include "netbase/small_vector.h"

namespace dnslocate::dnswire {

class MessageView;

/// Walk `wire` and locate every section entry, validating structure without
/// materializing anything. Fails on exactly the structural errors the owning
/// decoder reports (truncation, bad pointers, reserved label bits, names over
/// 255 octets, RDLENGTH past the buffer); typed RDATA errors are deferred to
/// RecordView::to_record(). The returned view borrows `wire`.
std::optional<MessageView> decode_view(std::span<const std::uint8_t> wire,
                                       DecodeError* error = nullptr,
                                       DecodeOptions options = {});

/// A question entry located in the wire buffer.
class QuestionView {
 public:
  [[nodiscard]] RecordType type() const { return type_; }
  [[nodiscard]] RecordClass klass() const { return klass_; }

  /// Materialize the (possibly compressed) owner name. Allocates.
  [[nodiscard]] std::optional<DnsName> name() const;

  /// Case-insensitive comparison against `other` without materializing.
  [[nodiscard]] bool name_equals(const DnsName& other) const;

  /// Owning equivalent of this entry. Allocates.
  [[nodiscard]] std::optional<Question> to_question() const;

 private:
  friend class MessageView;
  friend std::optional<MessageView> decode_view(std::span<const std::uint8_t>, DecodeError*,
                                                DecodeOptions);
  std::span<const std::uint8_t> wire_;
  std::size_t name_offset_ = 0;
  RecordType type_ = RecordType::A;
  RecordClass klass_ = RecordClass::IN;
};

/// A resource record located in the wire buffer. The structural walk has
/// verified the envelope (name, fixed fields, RDLENGTH bounds); typed RDATA
/// strictness — A rdlength == 4, non-empty TXT, name-rdata length agreement —
/// is checked by to_record(), exactly as the owning decoder would.
class RecordView {
 public:
  [[nodiscard]] RecordType type() const { return type_; }
  [[nodiscard]] std::uint32_t ttl() const { return ttl_; }

  /// Raw CLASS field. For OPT this is the advertised UDP payload size.
  [[nodiscard]] std::uint16_t raw_klass() const { return raw_klass_; }

  /// The RDATA bytes, unparsed. Borrowed from the wire buffer.
  [[nodiscard]] std::span<const std::uint8_t> rdata() const {
    return wire_.subspan(rdata_offset_, rdata_length_);
  }

  /// Materialize the owner name. Allocates.
  [[nodiscard]] std::optional<DnsName> name() const;

  /// Owning equivalent of this record, applying the typed RDATA validation
  /// the full decoder performs. Returns nullopt (and fills `error`) when the
  /// RDATA is malformed for the record type.
  [[nodiscard]] std::optional<ResourceRecord> to_record(DecodeError* error = nullptr) const;

 private:
  friend class MessageView;
  friend std::optional<MessageView> decode_view(std::span<const std::uint8_t>, DecodeError*,
                                                DecodeOptions);
  std::span<const std::uint8_t> wire_;
  std::size_t name_offset_ = 0;
  std::size_t rdata_offset_ = 0;
  std::uint16_t rdata_length_ = 0;
  RecordType type_ = RecordType::A;
  std::uint16_t raw_klass_ = 0;
  std::uint32_t ttl_ = 0;
};

/// A structurally validated message, located but not materialized.
class MessageView {
 public:
  [[nodiscard]] std::uint16_t id() const { return id_; }
  [[nodiscard]] Flags flags() const { return flags_; }
  [[nodiscard]] bool is_response() const { return flags_.qr; }

  [[nodiscard]] std::size_t question_count() const { return questions_.size(); }
  [[nodiscard]] std::size_t answer_count() const { return answers_.size(); }
  [[nodiscard]] std::size_t authority_count() const { return authorities_.size(); }
  [[nodiscard]] std::size_t additional_count() const { return additionals_.size(); }

  [[nodiscard]] const QuestionView& question(std::size_t i) const { return questions_[i]; }
  [[nodiscard]] const RecordView& answer(std::size_t i) const { return answers_[i]; }
  [[nodiscard]] const RecordView& authority(std::size_t i) const { return authorities_[i]; }
  [[nodiscard]] const RecordView& additional(std::size_t i) const { return additionals_[i]; }

  /// First question, or nullptr — mirrors Message::question().
  [[nodiscard]] const QuestionView* first_question() const {
    return questions_.empty() ? nullptr : &questions_.front();
  }

  /// Bytes past the last section (padding middleboxes append).
  [[nodiscard]] std::size_t trailing_bytes() const { return trailing_; }

  /// Fully materialize. Equivalent to decode_message() on the same bytes:
  /// succeeds iff every record's typed RDATA validates.
  [[nodiscard]] std::optional<Message> to_message(DecodeError* error = nullptr) const;

 private:
  friend std::optional<MessageView> decode_view(std::span<const std::uint8_t>, DecodeError*,
                                                DecodeOptions);
  std::span<const std::uint8_t> wire_;
  std::uint16_t id_ = 0;
  Flags flags_;
  netbase::SmallVector<QuestionView, 1> questions_;
  netbase::SmallVector<RecordView, 3> answers_;
  netbase::SmallVector<RecordView, 3> authorities_;
  netbase::SmallVector<RecordView, 3> additionals_;
  std::size_t trailing_ = 0;
};

}  // namespace dnslocate::dnswire
