#include "dnswire/message.h"

namespace dnslocate::dnswire {

std::string Question::to_string() const {
  std::string out = name.to_string();
  out += " ";
  out += dnswire::to_string(klass);
  out += " ";
  out += dnswire::to_string(type);
  return out;
}

std::uint16_t Flags::to_wire() const {
  std::uint16_t w = 0;
  if (qr) w |= 0x8000;
  w |= static_cast<std::uint16_t>((static_cast<std::uint16_t>(opcode) & 0xf) << 11);
  if (aa) w |= 0x0400;
  if (tc) w |= 0x0200;
  if (rd) w |= 0x0100;
  if (ra) w |= 0x0080;
  if (ad) w |= 0x0020;
  if (cd) w |= 0x0010;
  w |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(rcode) & 0xf);
  return w;
}

Flags Flags::from_wire(std::uint16_t wire) {
  Flags f;
  f.qr = (wire & 0x8000) != 0;
  f.opcode = static_cast<Opcode>((wire >> 11) & 0xf);
  f.aa = (wire & 0x0400) != 0;
  f.tc = (wire & 0x0200) != 0;
  f.rd = (wire & 0x0100) != 0;
  f.ra = (wire & 0x0080) != 0;
  f.ad = (wire & 0x0020) != 0;
  f.cd = (wire & 0x0010) != 0;
  f.rcode = static_cast<Rcode>(wire & 0xf);
  return f;
}

const ResourceRecord* Message::first_answer(RecordType type) const {
  for (const auto& rr : answers)
    if (rr.type == type) return &rr;
  return nullptr;
}

std::optional<std::string> Message::first_txt() const {
  const ResourceRecord* rr = first_answer(RecordType::TXT);
  if (!rr) return std::nullopt;
  if (const auto* txt = std::get_if<TxtRecord>(&rr->rdata)) return txt->joined();
  return std::nullopt;
}

std::optional<netbase::IpAddress> Message::first_address() const {
  for (const auto& rr : answers) {
    if (rr.type == RecordType::A) {
      if (const auto* a = std::get_if<ARecord>(&rr.rdata))
        return netbase::IpAddress(a->address);
    } else if (rr.type == RecordType::AAAA) {
      if (const auto* aaaa = std::get_if<AaaaRecord>(&rr.rdata))
        return netbase::IpAddress(aaaa->address);
    }
  }
  return std::nullopt;
}

std::string Message::to_string() const {
  std::string out;
  out += ";; id=" + std::to_string(id);
  out += is_response() ? " response" : " query";
  out += " ";
  out += dnswire::to_string(flags.opcode);
  out += " ";
  out += dnswire::to_string(flags.rcode);
  if (flags.aa) out += " aa";
  if (flags.tc) out += " tc";
  if (flags.rd) out += " rd";
  if (flags.ra) out += " ra";
  out += "\n";
  for (const auto& q : questions) out += ";; question: " + q.to_string() + "\n";
  for (const auto& rr : answers) out += ";; answer: " + rr.to_string() + "\n";
  for (const auto& rr : authorities) out += ";; authority: " + rr.to_string() + "\n";
  for (const auto& rr : additionals) out += ";; additional: " + rr.to_string() + "\n";
  return out;
}

bool is_acceptable_response(const Message& query, const Message& response) {
  if (!response.is_response() || response.id != query.id) return false;
  if (response.flags.opcode != query.flags.opcode) return false;
  const Question* asked = query.question();
  const Question* echoed = response.question();
  if (asked == nullptr) return echoed == nullptr || response.questions.empty();
  if (echoed == nullptr) return false;
  return asked->type == echoed->type && asked->klass == echoed->klass &&
         asked->name.equals_ignore_case(echoed->name);
}

Message make_query(std::uint16_t id, const DnsName& name, RecordType type, RecordClass klass) {
  Message m;
  m.id = id;
  m.flags.qr = false;
  m.flags.rd = true;
  m.questions.push_back(Question{name, type, klass});
  return m;
}

Message make_response(const Message& query, Rcode rcode) {
  Message m;
  m.id = query.id;
  m.flags.qr = true;
  m.flags.rd = query.flags.rd;
  m.flags.ra = true;
  m.flags.rcode = rcode;
  m.questions = query.questions;
  return m;
}

Message make_txt_response(const Message& query, std::string text, std::uint32_t ttl) {
  Message m = make_response(query, Rcode::NOERROR);
  if (const Question* q = query.question()) {
    m.answers.push_back(make_txt(q->name, std::move(text), q->klass, ttl));
  }
  return m;
}

}  // namespace dnslocate::dnswire
