#include "dnswire/record.h"

namespace dnslocate::dnswire {

std::string TxtRecord::joined() const {
  std::string out;
  for (const auto& s : strings) out += s;
  return out;
}

std::string ResourceRecord::to_string() const {
  std::string out = name.to_string();
  out += " " + std::to_string(ttl);
  out += " ";
  out += dnswire::to_string(klass);
  out += " ";
  out += dnswire::to_string(type);
  out += " ";
  std::visit(
      [&out](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARecord>) {
          out += rd.address.to_string();
        } else if constexpr (std::is_same_v<T, AaaaRecord>) {
          out += rd.address.to_string();
        } else if constexpr (std::is_same_v<T, TxtRecord>) {
          for (std::size_t i = 0; i < rd.strings.size(); ++i) {
            if (i > 0) out += " ";
            out += "\"" + rd.strings[i] + "\"";
          }
        } else if constexpr (std::is_same_v<T, CnameRecord>) {
          out += rd.target.to_string();
        } else if constexpr (std::is_same_v<T, NsRecord>) {
          out += rd.nameserver.to_string();
        } else if constexpr (std::is_same_v<T, PtrRecord>) {
          out += rd.target.to_string();
        } else if constexpr (std::is_same_v<T, SoaRecord>) {
          out += rd.mname.to_string() + " " + rd.rname.to_string() + " " +
                 std::to_string(rd.serial);
        } else if constexpr (std::is_same_v<T, MxRecord>) {
          out += std::to_string(rd.preference) + " " + rd.exchange.to_string();
        } else if constexpr (std::is_same_v<T, SrvRecord>) {
          out += std::to_string(rd.priority) + " " + std::to_string(rd.weight) + " " +
                 std::to_string(rd.port) + " " + rd.target.to_string();
        } else if constexpr (std::is_same_v<T, OptRecord>) {
          out += "payload=" + std::to_string(rd.udp_payload_size);
        } else {
          out += "\\# " + std::to_string(rd.data.size());
        }
      },
      rdata);
  return out;
}

ResourceRecord make_a(const DnsName& name, netbase::Ipv4Address addr, std::uint32_t ttl) {
  return ResourceRecord{name, RecordType::A, RecordClass::IN, ttl, ARecord{addr}};
}

ResourceRecord make_aaaa(const DnsName& name, const netbase::Ipv6Address& addr,
                         std::uint32_t ttl) {
  return ResourceRecord{name, RecordType::AAAA, RecordClass::IN, ttl, AaaaRecord{addr}};
}

ResourceRecord make_txt(const DnsName& name, std::string text, RecordClass klass,
                        std::uint32_t ttl) {
  TxtRecord txt;
  // Split into 255-octet character-strings as the wire format requires.
  while (text.size() > 255) {
    txt.strings.push_back(text.substr(0, 255));
    text.erase(0, 255);
  }
  txt.strings.push_back(std::move(text));
  return ResourceRecord{name, RecordType::TXT, klass, ttl, std::move(txt)};
}

ResourceRecord make_cname(const DnsName& name, const DnsName& target, std::uint32_t ttl) {
  return ResourceRecord{name, RecordType::CNAME, RecordClass::IN, ttl, CnameRecord{target}};
}

}  // namespace dnslocate::dnswire
