#include "dnswire/types.h"

namespace dnslocate::dnswire {

std::string_view to_string(RecordType type) {
  switch (type) {
    case RecordType::A: return "A";
    case RecordType::NS: return "NS";
    case RecordType::CNAME: return "CNAME";
    case RecordType::SOA: return "SOA";
    case RecordType::PTR: return "PTR";
    case RecordType::MX: return "MX";
    case RecordType::TXT: return "TXT";
    case RecordType::AAAA: return "AAAA";
    case RecordType::SRV: return "SRV";
    case RecordType::OPT: return "OPT";
    case RecordType::ANY: return "ANY";
  }
  return "TYPE?";
}

std::string_view to_string(RecordClass cls) {
  switch (cls) {
    case RecordClass::IN: return "IN";
    case RecordClass::CH: return "CH";
    case RecordClass::NONE: return "NONE";
    case RecordClass::ANY: return "ANY";
  }
  return "CLASS?";
}

std::string_view to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::NOERROR: return "NOERROR";
    case Rcode::FORMERR: return "FORMERR";
    case Rcode::SERVFAIL: return "SERVFAIL";
    case Rcode::NXDOMAIN: return "NXDOMAIN";
    case Rcode::NOTIMP: return "NOTIMP";
    case Rcode::REFUSED: return "REFUSED";
  }
  return "RCODE?";
}

std::string_view to_string(Opcode opcode) {
  switch (opcode) {
    case Opcode::QUERY: return "QUERY";
    case Opcode::IQUERY: return "IQUERY";
    case Opcode::STATUS: return "STATUS";
    case Opcode::NOTIFY: return "NOTIFY";
    case Opcode::UPDATE: return "UPDATE";
  }
  return "OPCODE?";
}

}  // namespace dnslocate::dnswire
