// Wire-format encoding (RFC 1035 §4) with name compression.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dnswire/message.h"
#include "netbase/arena.h"

namespace dnslocate::dnswire {

/// Encoded wire bytes. Arena-backed (netbase::ByteArena): steady-state
/// encodes recycle capacity instead of touching the heap, which matters at
/// fleet scale where every hop of every packet carries one of these.
using WireBuffer = netbase::ByteBuffer;

/// Encoding options.
struct EncodeOptions {
  /// Compress repeated names with RFC 1035 §4.1.4 pointers. On by default;
  /// turned off in tests to exercise the decoder's uncompressed path.
  bool compress_names = true;
};

/// Encode a message to wire format. Inputs are assumed validated (DnsName
/// enforces label/name limits at construction). Wire fields are narrowed
/// with bounds checks: a message whose section counts, TXT character-string
/// lengths, or RDATA sizes exceed their u8/u16 wire width throws
/// std::length_error rather than silently truncating.
WireBuffer encode_message(const Message& message, EncodeOptions options = {});

/// Encode a bare name, uncompressed — used by tests and the zone store.
WireBuffer encode_name(const DnsName& name);

}  // namespace dnslocate::dnswire
