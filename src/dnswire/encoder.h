// Wire-format encoding (RFC 1035 §4) with name compression.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dnswire/message.h"

namespace dnslocate::dnswire {

/// Encoding options.
struct EncodeOptions {
  /// Compress repeated names with RFC 1035 §4.1.4 pointers. On by default;
  /// turned off in tests to exercise the decoder's uncompressed path.
  bool compress_names = true;
};

/// Encode a message to wire format. Inputs are assumed validated (DnsName
/// enforces label/name limits at construction). Wire fields are narrowed
/// with bounds checks: a message whose section counts, TXT character-string
/// lengths, or RDATA sizes exceed their u8/u16 wire width throws
/// std::length_error rather than silently truncating.
std::vector<std::uint8_t> encode_message(const Message& message, EncodeOptions options = {});

/// Encode a bare name, uncompressed — used by tests and the zone store.
std::vector<std::uint8_t> encode_name(const DnsName& name);

}  // namespace dnslocate::dnswire
