#include "dnswire/encoder.h"

#include <map>
#include <stdexcept>
#include <string>

namespace dnslocate::dnswire {
namespace {

/// Checked narrowing for wire fields. Counts, character-string lengths, and
/// RDLENGTH are u8/u16 on the wire; a value that does not fit is an
/// unencodable message, never a silent truncation (a truncated RDLENGTH
/// would desynchronize every later record in the message).
std::uint16_t checked_u16(std::size_t v, const char* field) {
  if (v > 0xffff) throw std::length_error(std::string(field) + " exceeds 65535");
  return static_cast<std::uint16_t>(v);
}
std::uint8_t checked_u8(std::size_t v, const char* field) {
  if (v > 0xff) throw std::length_error(std::string(field) + " exceeds 255");
  return static_cast<std::uint8_t>(v);
}

/// Append helpers over a byte vector.
class Writer {
 public:
  explicit Writer(WireBuffer& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v & 0xffff));
  }
  void bytes(std::span<const std::uint8_t> b) { out_.insert(out_.end(), b.begin(), b.end()); }
  void text(std::string_view s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// Patch a previously written u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  WireBuffer& out_;
};

/// Tracks offsets of previously written name suffixes for compression.
/// Keys are lowercased presentation forms of each suffix.
class Compressor {
 public:
  explicit Compressor(bool enabled) : enabled_(enabled) {}

  void write_name(Writer& w, const DnsName& name) {
    const auto& labels = name.labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (enabled_) {
        std::string key = suffix_key(name, i);
        auto it = offsets_.find(key);
        if (it != offsets_.end()) {
          // Pointer: two bytes, top bits 11.
          w.u16(static_cast<std::uint16_t>(0xc000 | it->second));  // offset < 0x4000 by construction
          return;
        }
        // Compression pointers can only address offsets < 0x4000.
        if (w.size() < 0x4000) offsets_.emplace(std::move(key), w.size());
      }
      const std::string& label = labels[i];
      w.u8(checked_u8(label.size(), "label length"));
      w.text(label);
    }
    w.u8(0);  // root
  }

 private:
  static std::string suffix_key(const DnsName& name, std::size_t first_label) {
    std::string key;
    const auto& labels = name.labels();
    for (std::size_t i = first_label; i < labels.size(); ++i) {
      for (char c : labels[i])
        key.push_back((c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c);
      key.push_back('.');
    }
    return key;
  }

  bool enabled_;
  std::map<std::string, std::size_t> offsets_;
};

void write_rdata(Writer& w, Compressor& compressor, const ResourceRecord& rr) {
  // RDLENGTH placeholder, patched after the RDATA is known.
  std::size_t len_offset = w.size();
  w.u16(0);
  std::size_t start = w.size();
  std::visit(
      [&](const auto& rd) {
        using T = std::decay_t<decltype(rd)>;
        if constexpr (std::is_same_v<T, ARecord>) {
          w.bytes(rd.address.to_bytes());
        } else if constexpr (std::is_same_v<T, AaaaRecord>) {
          w.bytes(rd.address.bytes());
        } else if constexpr (std::is_same_v<T, TxtRecord>) {
          for (const auto& s : rd.strings) {
            w.u8(checked_u8(s.size(), "TXT character-string length"));
            w.text(s);
          }
        } else if constexpr (std::is_same_v<T, CnameRecord>) {
          compressor.write_name(w, rd.target);
        } else if constexpr (std::is_same_v<T, NsRecord>) {
          compressor.write_name(w, rd.nameserver);
        } else if constexpr (std::is_same_v<T, PtrRecord>) {
          compressor.write_name(w, rd.target);
        } else if constexpr (std::is_same_v<T, SoaRecord>) {
          compressor.write_name(w, rd.mname);
          compressor.write_name(w, rd.rname);
          w.u32(rd.serial);
          w.u32(rd.refresh);
          w.u32(rd.retry);
          w.u32(rd.expire);
          w.u32(rd.minimum);
        } else if constexpr (std::is_same_v<T, MxRecord>) {
          w.u16(rd.preference);
          compressor.write_name(w, rd.exchange);
        } else if constexpr (std::is_same_v<T, SrvRecord>) {
          w.u16(rd.priority);
          w.u16(rd.weight);
          w.u16(rd.port);
          // RFC 2782: the SRV target must not be compressed.
          Compressor uncompressed(false);
          uncompressed.write_name(w, rd.target);
        } else if constexpr (std::is_same_v<T, OptRecord>) {
          w.bytes(rd.options);
        } else {
          w.bytes(rd.data);
        }
      },
      rr.rdata);
  w.patch_u16(len_offset, checked_u16(w.size() - start, "RDLENGTH"));
}

void write_record(Writer& w, Compressor& compressor, const ResourceRecord& rr) {
  compressor.write_name(w, rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type));
  if (rr.type == RecordType::OPT) {
    // For OPT, the CLASS field carries the advertised UDP payload size.
    const auto* opt = std::get_if<OptRecord>(&rr.rdata);
    w.u16(opt ? opt->udp_payload_size : 512);
  } else {
    w.u16(static_cast<std::uint16_t>(rr.klass));
  }
  w.u32(rr.ttl);
  write_rdata(w, compressor, rr);
}

}  // namespace

WireBuffer encode_message(const Message& message, EncodeOptions options) {
  WireBuffer out;
  out.reserve(512);
  Writer w(out);
  Compressor compressor(options.compress_names);

  w.u16(message.id);
  w.u16(message.flags.to_wire());
  w.u16(checked_u16(message.questions.size(), "QDCOUNT"));
  w.u16(checked_u16(message.answers.size(), "ANCOUNT"));
  w.u16(checked_u16(message.authorities.size(), "NSCOUNT"));
  w.u16(checked_u16(message.additionals.size(), "ARCOUNT"));

  for (const auto& q : message.questions) {
    compressor.write_name(w, q.name);
    w.u16(static_cast<std::uint16_t>(q.type));
    w.u16(static_cast<std::uint16_t>(q.klass));
  }
  for (const auto& rr : message.answers) write_record(w, compressor, rr);
  for (const auto& rr : message.authorities) write_record(w, compressor, rr);
  for (const auto& rr : message.additionals) write_record(w, compressor, rr);
  return out;
}

WireBuffer encode_name(const DnsName& name) {
  WireBuffer out;
  Writer w(out);
  Compressor compressor(false);
  compressor.write_name(w, name);
  return out;
}

}  // namespace dnslocate::dnswire
