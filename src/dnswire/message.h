// DNS message: header + four record sections, plus builders for the message
// shapes the localization technique sends and receives.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "dnswire/record.h"
#include "netbase/ip_address.h"
#include "netbase/small_vector.h"

namespace dnslocate::dnswire {

/// The question section entry.
struct Question {
  DnsName name;
  RecordType type = RecordType::A;
  RecordClass klass = RecordClass::IN;

  [[nodiscard]] std::string to_string() const;
  friend auto operator<=>(const Question&, const Question&) = default;
};

/// Decoded header flag word (RFC 1035 §4.1.1).
struct Flags {
  bool qr = false;                  // response?
  Opcode opcode = Opcode::QUERY;
  bool aa = false;                  // authoritative answer
  bool tc = false;                  // truncated
  bool rd = true;                   // recursion desired
  bool ra = false;                  // recursion available
  bool ad = false;                  // authentic data (DNSSEC)
  bool cd = false;                  // checking disabled (DNSSEC)
  Rcode rcode = Rcode::NOERROR;

  [[nodiscard]] std::uint16_t to_wire() const;
  static Flags from_wire(std::uint16_t wire);
  friend auto operator<=>(const Flags&, const Flags&) = default;
};

/// Question section storage: probe queries carry exactly one question, so
/// the single inline slot covers every message this library builds itself.
using QuestionSection = netbase::SmallVector<Question, 1>;

/// Record section storage: inline capacity sized for the answer shapes the
/// interception classifiers see (address + CNAME + TXT fits without a spill).
using RecordSection = netbase::SmallVector<ResourceRecord, 3>;

/// A full DNS message.
struct Message {
  std::uint16_t id = 0;
  Flags flags;
  QuestionSection questions;
  RecordSection answers;
  RecordSection authorities;
  RecordSection additionals;

  /// First question, if any (the overwhelmingly common single-question case).
  [[nodiscard]] const Question* question() const {
    return questions.empty() ? nullptr : &questions.front();
  }

  /// First answer of the given type, or nullptr.
  [[nodiscard]] const ResourceRecord* first_answer(RecordType type) const;

  /// Concatenated TXT strings of the first TXT answer; nullopt if none.
  /// This is the payload the location-query classifiers inspect.
  [[nodiscard]] std::optional<std::string> first_txt() const;

  /// First A/AAAA answer as an address; follows nothing (no CNAME chasing).
  [[nodiscard]] std::optional<netbase::IpAddress> first_address() const;

  [[nodiscard]] bool is_response() const { return flags.qr; }
  [[nodiscard]] Rcode rcode() const { return flags.rcode; }

  /// Multi-line human rendering for traces and examples.
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Message&, const Message&) = default;
};

/// RFC 5452 §9-style response acceptance: QR set, ids equal, opcodes equal,
/// and the first question echoed (name compared case-insensitively, type
/// and class exactly). Careful stubs apply these checks before accepting a
/// UDP response; all of this library's transports do.
bool is_acceptable_response(const Message& query, const Message& response);

/// Build a standard recursive query with a single question.
Message make_query(std::uint16_t id, const DnsName& name, RecordType type,
                   RecordClass klass = RecordClass::IN);

/// Build a response to `query`: copies id and question, sets QR/RA and rcode.
Message make_response(const Message& query, Rcode rcode = Rcode::NOERROR);

/// Build a response carrying a single TXT answer in the query's class —
/// the shape of every version.bind / id.server answer.
Message make_txt_response(const Message& query, std::string text, std::uint32_t ttl = 0);

}  // namespace dnslocate::dnswire
