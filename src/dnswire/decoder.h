// Wire-format decoding with full bounds checking and compression-pointer
// loop protection. Malformed input never throws; it yields a DecodeError.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "dnswire/message.h"

namespace dnslocate::dnswire {

/// Why a decode failed, and where.
struct DecodeError {
  enum class Code {
    truncated,        // ran off the end of the buffer
    bad_pointer,      // compression pointer forward/out-of-range/looping
    bad_label,        // reserved label type bits (01/10)
    name_too_long,    // expanded name exceeds 255 octets
    bad_rdata,        // RDLENGTH inconsistent with typed RDATA contents
    trailing_bytes,   // message decoded but bytes remain (strict mode)
  };
  Code code = Code::truncated;
  std::size_t offset = 0;   // byte offset where the problem was detected
  std::string context;      // human-readable detail

  [[nodiscard]] std::string to_string() const;
};

/// Decoding options.
struct DecodeOptions {
  /// Reject messages with bytes after the last section. Off by default:
  /// real-world middleboxes pad, and the paper's tool must not choke on them.
  bool reject_trailing_bytes = false;
};

/// Decode a full message. Returns nullopt and fills `error` (if non-null)
/// on malformed input.
std::optional<Message> decode_message(std::span<const std::uint8_t> wire,
                                      DecodeError* error = nullptr,
                                      DecodeOptions options = {});

namespace detail {

/// Decode a (possibly compressed) name starting at `offset` within `wire`.
/// Compression pointers resolve against the whole buffer, which is why the
/// full message span is required. Used by the zero-copy view (view.h) to
/// materialize names lazily with exactly the decoder's validation.
std::optional<DnsName> decode_name_at(std::span<const std::uint8_t> wire, std::size_t offset,
                                      DecodeError* error = nullptr);

/// Decode one resource record starting at `offset` within `wire`, applying
/// the same typed RDATA validation decode_message performs.
std::optional<ResourceRecord> decode_record_at(std::span<const std::uint8_t> wire,
                                               std::size_t offset,
                                               DecodeError* error = nullptr);

}  // namespace detail

}  // namespace dnslocate::dnswire
