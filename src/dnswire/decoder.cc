#include "dnswire/decoder.h"

#include <algorithm>

namespace dnslocate::dnswire {
namespace {

class Reader {
 public:
  Reader(std::span<const std::uint8_t> wire, DecodeError* error, std::size_t start = 0)
      : wire_(wire), error_(error), offset_(start) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }
  [[nodiscard]] std::size_t remaining() const { return wire_.size() - offset_; }

  bool fail(DecodeError::Code code, std::string context) {
    if (error_ && !failed_) *error_ = DecodeError{code, offset_, std::move(context)};
    failed_ = true;
    return false;
  }
  [[nodiscard]] bool failed() const { return failed_; }

  bool u8(std::uint8_t& out) {
    if (remaining() < 1) return fail(DecodeError::Code::truncated, "u8");
    out = wire_[offset_++];
    return true;
  }
  bool u16(std::uint16_t& out) {
    if (remaining() < 2) return fail(DecodeError::Code::truncated, "u16");
    out = static_cast<std::uint16_t>((std::uint16_t{wire_[offset_]} << 8) | wire_[offset_ + 1]);
    offset_ += 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    std::uint16_t hi = 0, lo = 0;
    if (!u16(hi) || !u16(lo)) return false;
    out = (std::uint32_t{hi} << 16) | lo;
    return true;
  }
  bool bytes(std::size_t n, std::span<const std::uint8_t>& out) {
    if (remaining() < n) return fail(DecodeError::Code::truncated, "bytes");
    out = wire_.subspan(offset_, n);
    offset_ += n;
    return true;
  }

  /// Decode a (possibly compressed) name starting at the current offset.
  bool name(DnsName& out) {
    std::vector<std::string> labels;
    std::size_t cursor = offset_;
    bool jumped = false;
    std::size_t jumps = 0;
    std::size_t expanded = 1;  // root byte

    while (true) {
      if (cursor >= wire_.size()) return fail(DecodeError::Code::truncated, "name");
      std::uint8_t len = wire_[cursor];
      if ((len & 0xc0) == 0xc0) {
        if (cursor + 1 >= wire_.size())
          return fail(DecodeError::Code::truncated, "name pointer");
        std::size_t target =
            (static_cast<std::size_t>(len & 0x3f) << 8) | wire_[cursor + 1];
        if (!jumped) offset_ = cursor + 2;
        // Pointers must point strictly backwards; this also bounds the number
        // of jumps, but cap them anyway for defence in depth.
        if (target >= cursor) return fail(DecodeError::Code::bad_pointer, "forward pointer");
        if (++jumps > 64) return fail(DecodeError::Code::bad_pointer, "pointer loop");
        cursor = target;
        jumped = true;
        continue;
      }
      if ((len & 0xc0) != 0) return fail(DecodeError::Code::bad_label, "reserved label bits");
      if (len == 0) {
        if (!jumped) offset_ = cursor + 1;
        break;
      }
      if (cursor + 1 + len > wire_.size())
        return fail(DecodeError::Code::truncated, "label body");
      expanded += 1u + len;
      if (expanded > kMaxNameLength)
        return fail(DecodeError::Code::name_too_long, "name > 255 octets");
      auto body = wire_.subspan(cursor + 1, len);
      labels.emplace_back(body.begin(), body.end());
      cursor += 1u + len;
    }

    auto parsed = DnsName::from_labels(std::move(labels));
    if (!parsed) return fail(DecodeError::Code::name_too_long, "invalid labels");
    out = std::move(*parsed);
    return true;
  }

 private:
  std::span<const std::uint8_t> wire_;
  DecodeError* error_;
  std::size_t offset_ = 0;
  bool failed_ = false;
};

bool decode_rdata(Reader& r, RecordType type, std::uint16_t rdlength, Rdata& out) {
  std::size_t end = r.offset() + rdlength;
  switch (type) {
    case RecordType::A: {
      if (rdlength != 4) return r.fail(DecodeError::Code::bad_rdata, "A rdlength != 4");
      std::span<const std::uint8_t> b;
      if (!r.bytes(4, b)) return false;
      out = ARecord{netbase::Ipv4Address(b[0], b[1], b[2], b[3])};
      return true;
    }
    case RecordType::AAAA: {
      if (rdlength != 16) return r.fail(DecodeError::Code::bad_rdata, "AAAA rdlength != 16");
      std::span<const std::uint8_t> b;
      if (!r.bytes(16, b)) return false;
      netbase::Ipv6Address::Bytes bytes{};
      std::copy(b.begin(), b.end(), bytes.begin());
      out = AaaaRecord{netbase::Ipv6Address(bytes)};
      return true;
    }
    case RecordType::TXT: {
      TxtRecord txt;
      while (r.offset() < end) {
        std::uint8_t len = 0;
        if (!r.u8(len)) return false;
        if (r.offset() + len > end)
          return r.fail(DecodeError::Code::bad_rdata, "TXT string overruns rdata");
        std::span<const std::uint8_t> b;
        if (!r.bytes(len, b)) return false;
        txt.strings.emplace_back(b.begin(), b.end());
      }
      // RFC 1035 requires at least one character-string.
      if (txt.strings.empty())
        return r.fail(DecodeError::Code::bad_rdata, "empty TXT rdata");
      out = std::move(txt);
      return true;
    }
    case RecordType::CNAME:
    case RecordType::NS:
    case RecordType::PTR: {
      DnsName name;
      if (!r.name(name)) return false;
      if (r.offset() != end)
        return r.fail(DecodeError::Code::bad_rdata, "name rdata length mismatch");
      if (type == RecordType::CNAME)
        out = CnameRecord{std::move(name)};
      else if (type == RecordType::NS)
        out = NsRecord{std::move(name)};
      else
        out = PtrRecord{std::move(name)};
      return true;
    }
    case RecordType::MX: {
      MxRecord mx;
      if (!r.u16(mx.preference) || !r.name(mx.exchange)) return false;
      if (r.offset() != end)
        return r.fail(DecodeError::Code::bad_rdata, "MX rdata length mismatch");
      out = std::move(mx);
      return true;
    }
    case RecordType::SRV: {
      SrvRecord srv;
      if (!r.u16(srv.priority) || !r.u16(srv.weight) || !r.u16(srv.port) ||
          !r.name(srv.target))
        return false;
      if (r.offset() != end)
        return r.fail(DecodeError::Code::bad_rdata, "SRV rdata length mismatch");
      out = std::move(srv);
      return true;
    }
    case RecordType::SOA: {
      SoaRecord soa;
      if (!r.name(soa.mname) || !r.name(soa.rname)) return false;
      if (!r.u32(soa.serial) || !r.u32(soa.refresh) || !r.u32(soa.retry) ||
          !r.u32(soa.expire) || !r.u32(soa.minimum))
        return false;
      if (r.offset() != end)
        return r.fail(DecodeError::Code::bad_rdata, "SOA rdata length mismatch");
      out = std::move(soa);
      return true;
    }
    case RecordType::OPT: {
      OptRecord opt;
      std::span<const std::uint8_t> b;
      if (!r.bytes(rdlength, b)) return false;
      opt.options.assign(b.begin(), b.end());
      out = std::move(opt);
      return true;
    }
    default: {
      RawRecord raw;
      std::span<const std::uint8_t> b;
      if (!r.bytes(rdlength, b)) return false;
      raw.data.assign(b.begin(), b.end());
      out = std::move(raw);
      return true;
    }
  }
}

bool decode_record(Reader& r, ResourceRecord& rr) {
  if (!r.name(rr.name)) return false;
  std::uint16_t type = 0, klass = 0, rdlength = 0;
  std::uint32_t ttl = 0;
  if (!r.u16(type) || !r.u16(klass) || !r.u32(ttl) || !r.u16(rdlength)) return false;
  rr.type = static_cast<RecordType>(type);
  rr.ttl = ttl;
  if (!decode_rdata(r, rr.type, rdlength, rr.rdata)) return false;
  if (rr.type == RecordType::OPT) {
    // CLASS field of OPT is the advertised UDP payload size.
    rr.klass = RecordClass::IN;
    if (auto* opt = std::get_if<OptRecord>(&rr.rdata)) opt->udp_payload_size = klass;
  } else {
    rr.klass = static_cast<RecordClass>(klass);
  }
  return true;
}

}  // namespace

std::string DecodeError::to_string() const {
  static constexpr std::string_view names[] = {"truncated",     "bad_pointer",
                                               "bad_label",     "name_too_long",
                                               "bad_rdata",     "trailing_bytes"};
  std::string out{names[static_cast<std::size_t>(code)]};
  out += " at offset " + std::to_string(offset);
  if (!context.empty()) out += " (" + context + ")";
  return out;
}

std::optional<Message> decode_message(std::span<const std::uint8_t> wire, DecodeError* error,
                                      DecodeOptions options) {
  Reader r(wire, error);
  Message m;
  std::uint16_t flags_wire = 0, qdcount = 0, ancount = 0, nscount = 0, arcount = 0;
  if (!r.u16(m.id) || !r.u16(flags_wire) || !r.u16(qdcount) || !r.u16(ancount) ||
      !r.u16(nscount) || !r.u16(arcount))
    return std::nullopt;
  m.flags = Flags::from_wire(flags_wire);

  for (std::uint16_t i = 0; i < qdcount; ++i) {
    Question q;
    std::uint16_t type = 0, klass = 0;
    if (!r.name(q.name) || !r.u16(type) || !r.u16(klass)) return std::nullopt;
    q.type = static_cast<RecordType>(type);
    q.klass = static_cast<RecordClass>(klass);
    m.questions.push_back(std::move(q));
  }
  auto section = [&](std::uint16_t count, RecordSection& out) {
    for (std::uint16_t i = 0; i < count; ++i) {
      ResourceRecord rr;
      if (!decode_record(r, rr)) return false;
      out.push_back(std::move(rr));
    }
    return true;
  };
  if (!section(ancount, m.answers) || !section(nscount, m.authorities) ||
      !section(arcount, m.additionals))
    return std::nullopt;

  if (options.reject_trailing_bytes && r.remaining() > 0) {
    r.fail(DecodeError::Code::trailing_bytes,
           std::to_string(r.remaining()) + " bytes after message");
    return std::nullopt;
  }
  return m;
}

namespace detail {

std::optional<DnsName> decode_name_at(std::span<const std::uint8_t> wire, std::size_t offset,
                                      DecodeError* error) {
  if (offset > wire.size()) {
    if (error) *error = DecodeError{DecodeError::Code::truncated, offset, "name offset"};
    return std::nullopt;
  }
  Reader r(wire, error, offset);
  DnsName name;
  if (!r.name(name)) return std::nullopt;
  return name;
}

std::optional<ResourceRecord> decode_record_at(std::span<const std::uint8_t> wire,
                                               std::size_t offset, DecodeError* error) {
  if (offset > wire.size()) {
    if (error) *error = DecodeError{DecodeError::Code::truncated, offset, "record offset"};
    return std::nullopt;
  }
  Reader r(wire, error, offset);
  ResourceRecord rr;
  if (!decode_record(r, rr)) return std::nullopt;
  return rr;
}

}  // namespace detail

}  // namespace dnslocate::dnswire
