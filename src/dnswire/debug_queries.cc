#include "dnswire/debug_queries.h"

namespace dnslocate::dnswire {

const DnsName& version_bind() {
  static const DnsName name = *DnsName::parse("version.bind");
  return name;
}

const DnsName& id_server() {
  static const DnsName name = *DnsName::parse("id.server");
  return name;
}

const DnsName& hostname_bind() {
  static const DnsName name = *DnsName::parse("hostname.bind");
  return name;
}

Message make_chaos_query(std::uint16_t id, const DnsName& name) {
  return make_query(id, name, RecordType::TXT, RecordClass::CH);
}

bool is_chaos_query_for(const Message& m, const DnsName& name) {
  const Question* q = m.question();
  return q != nullptr && q->klass == RecordClass::CH && q->type == RecordType::TXT &&
         q->name.equals_ignore_case(name);
}

}  // namespace dnslocate::dnswire
