// Step 3 (§3.3): is the interceptor inside the client's ISP?
//
// Queries addressed to bogon (unroutable) IPs cannot leave the AS; if one is
// answered, the interceptor sits before the AS border. Silence proves
// nothing: the interceptor may be beyond the AS, or may discard
// bogon-addressed queries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/query_batch.h"
#include "core/transport.h"
#include "netbase/bogon.h"

namespace dnslocate::core {

class SimTransport;

/// One bogon-probe observation set (per family).
struct BogonFamilyReport {
  bool tested = false;
  netbase::Endpoint target;
  /// A-record query for the generic probe domain (§3.3's primary probe).
  QueryResult a_query;
  /// version.bind to the bogon address — the §3.4 cross-check that the
  /// responder matches the step-2 strings.
  QueryResult version_query;
  std::string a_display;
  std::string version_display;

  [[nodiscard]] bool answered() const {
    return a_query.answered() || version_query.answered();
  }
};

/// Step-3 report.
struct BogonReport {
  BogonFamilyReport v4;
  BogonFamilyReport v6;
  /// version.bind string seen from the bogon address, if any.
  std::optional<std::string> version_bind_txt;

  /// §3.3's conclusion: a response to an unroutable address means the
  /// request "must have been intercepted before it could leave the AS".
  [[nodiscard]] bool within_isp() const { return v4.answered() || v6.answered(); }

  /// Some bogon probe collected conflicting accepted answers: the in-AS
  /// conclusion rests on contested data (see core/verdict.h contested).
  [[nodiscard]] bool contested() const {
    return v4.a_query.contested() || v4.version_query.contested() ||
           v6.a_query.contested() || v6.version_query.contested();
  }
};

class IspLocalizer {
 public:
  struct Config {
    QueryOptions query;
    netbase::Endpoint bogon_v4{netbase::BogonCatalog::default_probe_v4(), netbase::kDnsPort};
    netbase::Endpoint bogon_v6{netbase::BogonCatalog::default_probe_v6(), netbase::kDnsPort};
    bool test_v6 = true;
    /// Seed for the transaction-ID stream (the pipeline derives this from
    /// the probe seed; the default only matters for direct stage calls).
    std::uint64_t id_seed = 0x3000;
  };

  IspLocalizer() = default;
  explicit IspLocalizer(Config config) : config_(std::move(config)) {}

  /// Both bogon targets, A probe + version.bind each, as one batch.
  BogonReport run(AsyncQueryTransport& engine, bool* drained = nullptr);
  /// Sequential compatibility path over a plain transport.
  BogonReport run(QueryTransport& transport);
  /// SimTransport serves both interfaces; prefer its (byte-identical)
  /// batched cascade.
  BogonReport run(SimTransport& transport);

 private:
  Config config_;
};

}  // namespace dnslocate::core
