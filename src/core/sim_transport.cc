#include "core/sim_transport.h"

#include "dnswire/decoder.h"
#include "dnswire/encoder.h"

namespace dnslocate::core {

SimTransport::SimTransport(simnet::Simulator& sim, simnet::Device& host)
    : sim_(sim), host_(host) {}

bool SimTransport::supports_family(netbase::IpFamily family) const {
  return host_.local_ip(family).has_value();
}

void SimTransport::on_datagram(simnet::Simulator&, simnet::Device&,
                               const simnet::UdpPacket& packet) {
  if (collecting_ == nullptr || packet.dport != collecting_->port) return;
  if (packet.kind == simnet::PacketKind::icmp_ttl_exceeded) {
    // The quoted datagram inside the error is our own query; confirm by id.
    auto quoted = dnswire::decode_message(packet.payload);
    if (quoted && quoted->id == collecting_->id && !collecting_->result.icmp_from)
      collecting_->result.icmp_from = packet.src;
    return;
  }
  auto message = dnswire::decode_message(packet.payload);
  if (!message || !collecting_->query ||
      !dnswire::is_acceptable_response(*collecting_->query, *message))
    return;
  if (!collecting_->result.answered()) {
    collecting_->result.status = QueryResult::Status::answered;
    collecting_->result.response = *message;
    collecting_->result.rtt = std::chrono::duration_cast<std::chrono::microseconds>(
        sim_.now() - collecting_->sent_at);
  }
  collecting_->result.all_responses.push_back(std::move(*message));
}

QueryResult SimTransport::query(const netbase::Endpoint& server,
                                const dnswire::Message& message, const QueryOptions& options) {
  Collecting state;
  state.port = next_port_++;
  if (next_port_ < 40000) next_port_ = 40000;
  state.id = message.id;
  state.query = &message;
  state.sent_at = sim_.now();
  collecting_ = &state;
  host_.bind_udp(state.port, this);
  ++queries_sent_;

  auto source = host_.local_ip(server.address.family());
  if (!source) {
    host_.unbind_udp(state.port);
    collecting_ = nullptr;
    return state.result;  // family unsupported: behaves as a timeout
  }

  simnet::UdpPacket packet;
  packet.src = *source;
  packet.dst = server.address;
  packet.sport = state.port;
  packet.dport = server.port;
  if (options.ttl) packet.ttl = *options.ttl;
  packet.channel = options.channel;
  if (options.channel == simnet::Channel::dot_strict)
    packet.tls_expected_peer = server.address;
  packet.payload = dnswire::encode_message(message);
  packet.trace_id = sim_.next_trace_id();
  host_.send_local(sim_, std::move(packet));

  // Drive the simulator to the timeout horizon; responses (and replicated
  // duplicates) arriving before it are collected by on_datagram.
  sim_.schedule(std::chrono::duration_cast<simnet::SimDuration>(options.timeout),
                [&state]() { state.deadline_passed = true; });
  while (!state.deadline_passed && sim_.step()) {
  }

  host_.unbind_udp(state.port);
  collecting_ = nullptr;
  return state.result;
}

}  // namespace dnslocate::core
