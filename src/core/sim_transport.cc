#include "core/sim_transport.h"

#include <vector>

#include "core/exchange.h"
#include "dnswire/encoder.h"
#include "obs/clock.h"
#include "obs/span.h"

namespace dnslocate::core {
namespace {

/// Observability clock driven by the simulator: spans and histograms
/// recorded while a simulated query runs carry simulated-nanosecond
/// timestamps, so traces replay bit-identically across runs and hosts.
class SimulatorClock final : public obs::ClockSource {
 public:
  explicit SimulatorClock(const simnet::Simulator& sim) : sim_(sim) {}
  [[nodiscard]] std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(sim_.now().count());
  }

 private:
  const simnet::Simulator& sim_;
};

/// The simulated ExchangeChannel: binds a fresh ephemeral port per attempt,
/// injects the datagram, and steps the simulator to hand inbound packets to
/// the exchange kernel one at a time. The per-attempt deadline is a
/// scheduled simulator event (not a time comparison), so event-queue
/// ordering at the horizon is exactly what the sequential transport had.
class SimChannel final : public ExchangeChannel, private simnet::UdpApp {
 public:
  SimChannel(simnet::Simulator& sim, simnet::Device& host, const netbase::Endpoint& server,
             const QueryOptions& options, std::uint16_t& next_port, std::uint64_t& queries_sent,
             std::vector<Inbound>& pool)
      : sim_(sim),
        host_(host),
        server_(server),
        options_(options),
        next_port_(next_port),
        queries_sent_(queries_sent),
        pool_(pool) {}

  ~SimChannel() override { end_attempt(); }

  [[nodiscard]] std::chrono::nanoseconds now() override { return sim_.now(); }

  bool begin_attempt_and_send(const dnswire::Message& attempt,
                              std::chrono::nanoseconds deadline) override {
    port_ = next_port_++;
    if (next_port_ < 40000) next_port_ = 40000;
    deadline_passed_ = false;
    head_ = count_ = 0;
    host_.bind_udp(port_, this);
    bound_ = true;
    ++queries_sent_;

    auto source = host_.local_ip(server_.address.family());
    if (!source) return false;  // family unsupported: behaves as a timeout

    simnet::UdpPacket packet;
    packet.src = *source;
    packet.dst = server_.address;
    packet.sport = port_;
    packet.dport = server_.port;
    if (options_.ttl) packet.ttl = *options_.ttl;
    packet.channel = options_.channel;
    if (options_.channel == simnet::Channel::dot_strict)
      packet.tls_expected_peer = server_.address;
    packet.payload = dnswire::encode_message(attempt);
    packet.trace_id = sim_.next_trace_id();
    host_.send_local(sim_, std::move(packet));

    // Sending costs no simulated time, so the horizon event lands exactly
    // `timeout` after the send — byte-identical to the pre-kernel schedule.
    bool* flag = &deadline_passed_;
    sim_.schedule(std::chrono::duration_cast<simnet::SimDuration>(deadline - sim_.now()),
                  [flag]() { *flag = true; });
    return true;
  }

  Inbound* receive(std::chrono::nanoseconds, const CancelToken&) override {
    // Drive the simulator until something lands on our port or the deadline
    // event fires; packets already queued are drained first so deliveries
    // from the final step are never lost. The slot handed out stays valid
    // until the next receive(): pool_ can only grow (and so reallocate)
    // inside this loop, by which time the kernel is done with the previous
    // slot.
    while (head_ == count_ && !deadline_passed_ && sim_.step()) {
    }
    if (head_ == count_) return nullptr;
    return &pool_[head_++];
  }

  void end_attempt() override {
    if (bound_) {
      host_.unbind_udp(port_);
      bound_ = false;
    }
    head_ = count_ = 0;
  }

  bool wait_backoff(std::chrono::milliseconds backoff, const CancelToken&) override {
    // Backoff in simulated time: let the world run until the wait ends.
    bool waited = false;
    sim_.schedule(std::chrono::duration_cast<simnet::SimDuration>(backoff),
                  [&waited]() { waited = true; });
    while (!waited && sim_.step()) {
    }
    return true;
  }

 private:
  void on_datagram(simnet::Simulator&, simnet::Device&,
                   const simnet::UdpPacket& packet) override {
    if (!bound_ || packet.dport != port_) return;
    // Reuse a pool slot: payload capacity survives, so the steady-state
    // delivery costs one payload copy and no allocation.
    if (count_ == pool_.size()) pool_.emplace_back();
    Inbound& in = pool_[count_++];
    in.payload.assign(packet.payload.begin(), packet.payload.end());
    if (packet.kind == simnet::PacketKind::icmp_ttl_exceeded) {
      in.kind = Inbound::Kind::icmp_ttl_exceeded;
      in.icmp_from = packet.src;
      in.source_matches = false;
      in.source = SourceKey{};
    } else {
      in.kind = Inbound::Kind::datagram;
      in.icmp_from.reset();
      in.source_matches = packet.src_endpoint() == server_;
      in.source = source_key_from(packet.src_endpoint());
    }
  }

  simnet::Simulator& sim_;
  simnet::Device& host_;
  netbase::Endpoint server_;
  const QueryOptions& options_;
  std::uint16_t& next_port_;
  std::uint64_t& queries_sent_;
  /// Slot pool owned by the transport (outlives this per-query channel);
  /// [head_, count_) are the undelivered inbounds of the current attempt.
  std::vector<Inbound>& pool_;

  std::uint16_t port_ = 0;
  bool bound_ = false;
  bool deadline_passed_ = false;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace

SimTransport::SimTransport(simnet::Simulator& sim, simnet::Device& host)
    : sim_(sim), host_(host) {}

bool SimTransport::supports_family(netbase::IpFamily family) const {
  return host_.local_ip(family).has_value();
}

QueryResult SimTransport::query(const netbase::Endpoint& server,
                                const dnswire::Message& message, const QueryOptions& options) {
  // All telemetry inside this query reads simulated time (deterministic),
  // even when the caller did not install a probe-wide simulated clock.
  SimulatorClock clock(sim_);
  obs::ScopedClock clock_scope(&clock);
  obs::Span query_span("transport/query");

  SimChannel channel(sim_, host_, server, options, next_port_, queries_sent_, inbound_pool_);
  ExchangePolicy policy;
  policy.retry = options.retry;
  // Simulated waits cost no wall-clock, so the full timeout window is
  // always observed for replication duplicates (no separate window), and
  // the wall-clock cancellation budget is meaningless in simulated time.
  policy.duplicate_window = std::nullopt;
  policy.honour_cancellation = false;
  QueryResult result = run_exchange(channel, message, options, policy, sim_.rng());
  record_telemetry(result);
  return result;
}

void SimTransport::run(QueryBatch& batch) {
  SimulatorClock clock(sim_);
  obs::ScopedClock clock_scope(&clock);
  obs::Span span("batch/sim_run");
  std::uint64_t started_ns = obs::now_ns();
  // Strict submission order: each query's cascade runs to its horizon before
  // the next begins, so the simulator's shared RNG stream is consumed in
  // exactly the sequential engine's order (see the header's determinism
  // note). Simulated time advances; wall time barely does.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QuerySpec& spec = batch.spec(i);
    batch.result(i) = query(spec.server, spec.message, spec.options);
  }
  note_batch_metrics(batch.size(), obs::now_ns() - started_ns, batch.empty() ? 0 : 1, false);
}

}  // namespace dnslocate::core
