#include "core/sim_transport.h"

#include <span>

#include "dnswire/decoder.h"
#include "dnswire/encoder.h"
#include "obs/clock.h"
#include "obs/span.h"

namespace dnslocate::core {
namespace {

/// FNV-1a over the payload, used to recognise byte-identical duplicates.
std::uint64_t payload_hash(std::span<const std::uint8_t> payload) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : payload) h = (h ^ b) * 0x100000001b3ull;
  return h;
}

/// Observability clock driven by the simulator: spans and histograms
/// recorded while a simulated query runs carry simulated-nanosecond
/// timestamps, so traces replay bit-identically across runs and hosts.
class SimulatorClock final : public obs::ClockSource {
 public:
  explicit SimulatorClock(const simnet::Simulator& sim) : sim_(sim) {}
  [[nodiscard]] std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(sim_.now().count());
  }

 private:
  const simnet::Simulator& sim_;
};

}  // namespace

SimTransport::SimTransport(simnet::Simulator& sim, simnet::Device& host)
    : sim_(sim), host_(host) {}

bool SimTransport::supports_family(netbase::IpFamily family) const {
  return host_.local_ip(family).has_value();
}

void SimTransport::on_datagram(simnet::Simulator&, simnet::Device&,
                               const simnet::UdpPacket& packet) {
  if (collecting_ == nullptr || packet.dport != collecting_->port) return;
  if (packet.kind == simnet::PacketKind::icmp_ttl_exceeded) {
    // The quoted datagram inside the error is our own query; confirm by id.
    auto quoted = dnswire::decode_message(packet.payload);
    if (quoted && quoted->id == collecting_->id && !collecting_->result.icmp_from)
      collecting_->result.icmp_from = packet.src;
    return;
  }
  ArbitrationEvidence& evidence = collecting_->result.arbitration;
  auto message = dnswire::decode_message(packet.payload);
  if (!message) {
    ++evidence.malformed;  // on our flow but not DNS: injection debris
    return;
  }
  if (packet.src_endpoint() != collecting_->server) {
    // Legitimate diverted replies are conntrack-rewritten back to the
    // queried endpoint; anything else is a wrong-egress injection.
    ++evidence.spoof_suspected;
    return;
  }
  if (!collecting_->query ||
      !dnswire::is_acceptable_response(*collecting_->query, *message)) {
    ++evidence.spoof_suspected;  // wrong ID / unechoed question: off-path guess
    return;
  }
  // A byte-identical datagram from the same source is network duplication
  // (or a fault-injected copy), not query replication: a real stub cannot
  // tell the two packets apart either, so the copy is discarded rather than
  // being allowed to fabricate a replication verdict.
  std::uint64_t fingerprint = payload_hash(packet.payload);
  for (const auto& [src, hash] : collecting_->seen)
    if (src == packet.src_endpoint() && hash == fingerprint) return;
  collecting_->seen.emplace_back(packet.src_endpoint(), fingerprint);

  // RFC 5452 accepts a case-folded question echo; record the rewrite as
  // evidence (a DPI middlebox ambiguity — see simnet/adversary.h).
  if (const auto* echoed = message->question())
    if (const auto* asked = collecting_->query->question())
      if (!(echoed->name == asked->name)) ++evidence.case_mismatches;

  if (!collecting_->result.answered()) {
    collecting_->result.status = QueryResult::Status::answered;
    collecting_->result.response = *message;
    collecting_->result.rtt = std::chrono::duration_cast<std::chrono::microseconds>(
        sim_.now() - collecting_->sent_at);
  } else if (responses_conflict(*collecting_->result.response, *message)) {
    // The duplicate window stayed open and a semantically different answer
    // raced in: the transaction is contested, and both answers are kept in
    // all_responses for the classifier to arbitrate.
    ++evidence.conflicts;
  }
  collecting_->result.all_responses.push_back(std::move(*message));
}

QueryResult SimTransport::attempt(const netbase::Endpoint& server,
                                  const dnswire::Message& message,
                                  const QueryOptions& options) {
  obs::Span attempt_span("transport/attempt");
  Collecting state;
  state.port = next_port_++;
  if (next_port_ < 40000) next_port_ = 40000;
  state.id = message.id;
  state.server = server;
  state.query = &message;
  state.sent_at = sim_.now();
  collecting_ = &state;
  host_.bind_udp(state.port, this);
  ++queries_sent_;

  auto source = host_.local_ip(server.address.family());
  if (!source) {
    host_.unbind_udp(state.port);
    collecting_ = nullptr;
    return state.result;  // family unsupported: behaves as a timeout
  }

  simnet::UdpPacket packet;
  packet.src = *source;
  packet.dst = server.address;
  packet.sport = state.port;
  packet.dport = server.port;
  if (options.ttl) packet.ttl = *options.ttl;
  packet.channel = options.channel;
  if (options.channel == simnet::Channel::dot_strict)
    packet.tls_expected_peer = server.address;
  packet.payload = dnswire::encode_message(message);
  packet.trace_id = sim_.next_trace_id();
  host_.send_local(sim_, std::move(packet));

  // Drive the simulator to the timeout horizon; responses (and replicated
  // duplicates) arriving before it are collected by on_datagram.
  sim_.schedule(std::chrono::duration_cast<simnet::SimDuration>(options.timeout),
                [&state]() { state.deadline_passed = true; });
  while (!state.deadline_passed && sim_.step()) {
  }

  host_.unbind_udp(state.port);
  collecting_ = nullptr;
  return state.result;
}

QueryResult SimTransport::query(const netbase::Endpoint& server,
                                const dnswire::Message& message, const QueryOptions& options) {
  // All telemetry inside this query reads simulated time (deterministic),
  // even when the caller did not install a probe-wide simulated clock.
  SimulatorClock clock(sim_);
  obs::ScopedClock clock_scope(&clock);
  obs::Span query_span("transport/query");
  unsigned budget = std::max(1u, options.retry.max_attempts);
  dnswire::Message attempt_message = message;
  RetryTelemetry telemetry;
  QueryResult result;
  std::optional<netbase::IpAddress> icmp_from;
  ArbitrationEvidence evidence;  // accumulated across attempts

  for (unsigned attempt_number = 1; attempt_number <= budget; ++attempt_number) {
    if (attempt_number > 1) {
      // Backoff in simulated time: let the world run until the wait ends,
      // then mutate the query so stale responses no longer match.
      auto backoff = options.retry.backoff_before(attempt_number);
      telemetry.backoff_waited += backoff;
      bool waited = false;
      sim_.schedule(std::chrono::duration_cast<simnet::SimDuration>(backoff),
                    [&waited]() { waited = true; });
      while (!waited && sim_.step()) {
      }
      rerandomize_query(attempt_message, options.retry, sim_.rng());
    }
    result = attempt(server, attempt_message, options);
    telemetry.attempts = attempt_number;
    evidence += result.arbitration;
    if (!result.icmp_from && icmp_from) result.icmp_from = icmp_from;
    if (result.answered()) break;
    ++telemetry.timeouts;
    if (result.icmp_from) icmp_from = result.icmp_from;  // keep across attempts
  }
  result.retry = telemetry;
  result.arbitration = evidence;
  record_telemetry(result);
  return result;
}

void SimTransport::run(QueryBatch& batch) {
  SimulatorClock clock(sim_);
  obs::ScopedClock clock_scope(&clock);
  obs::Span span("batch/sim_run");
  std::uint64_t started_ns = obs::now_ns();
  // Strict submission order: each query's cascade runs to its horizon before
  // the next begins, so the simulator's shared RNG stream is consumed in
  // exactly the sequential engine's order (see the header's determinism
  // note). Simulated time advances; wall time barely does.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QuerySpec& spec = batch.spec(i);
    batch.result(i) = query(spec.server, spec.message, spec.options);
  }
  note_batch_metrics(batch.size(), obs::now_ns() - started_ns, batch.empty() ? 0 : 1, false);
}

}  // namespace dnslocate::core
