// Active interceptor fingerprinting: name a DPI middlebox by its parsing
// ambiguities, in the style of "Fingerprinting DPI Devices by Their
// Ambiguities" (arXiv 2509.09081; see simnet/adversary.h for the modelled
// personalities).
//
// Three end-to-end observable ambiguities are probed:
//  - 0x20 case folding: a mixed-case question whose echo comes back
//    re-cased means something in path rewrote the casing.
//  - EDNS OPT stripping: an OPT-bearing query whose answer lacks the
//    RFC 6891 OPT echo crossed a middlebox that removed EDNS.
//  - TC rewriting: a response carrying answers *and* the truncation bit is
//    self-contradictory — no real server emits it.
#pragma once

#include <cstdint>
#include <string>

#include "core/query_batch.h"
#include "core/transport.h"
#include "resolvers/public_resolver.h"

namespace dnslocate::core {

class SimTransport;

/// What the fingerprint probes observed.
struct FingerprintReport {
  bool tested = false;
  netbase::Endpoint target;
  /// The mixed-case probe's echoed question came back with different
  /// casing (ArbitrationEvidence::case_mismatches on that query).
  bool case_folded = false;
  /// The OPT-bearing probe's answer carried no OPT record.
  bool edns_stripped = false;
  /// Some answer carried records and the TC bit simultaneously.
  bool tc_rewritten = false;
  /// Both probes timed out — nothing to fingerprint (recorded so callers
  /// can tell "clean" from "unobservable").
  bool unreachable = false;
  /// Personality name matching the observed ambiguity set ("" when no
  /// ambiguity was observed; "dpi-unnamed" for sets outside the zoo).
  std::string vendor;

  [[nodiscard]] bool any_ambiguity() const {
    return case_folded || edns_stripped || tc_rewritten;
  }
};

/// Maps an ambiguity set to the zoo personality exhibiting exactly that set
/// (simnet/adversary.h); "" for none, "dpi-unnamed" for unknown combinations.
std::string fingerprint_vendor(bool case_folded, bool edns_stripped, bool tc_rewritten);

class FingerprintProber {
 public:
  struct Config {
    QueryOptions query;
    netbase::IpFamily family = netbase::IpFamily::v4;
    /// Resolver probed when the pipeline found no interception suspect.
    resolvers::PublicResolverKind default_target = resolvers::PublicResolverKind::cloudflare;
    /// Seed for the transaction-ID stream (the pipeline derives this from
    /// the probe seed; the default only matters for direct stage calls).
    std::uint64_t id_seed = 0x6000;
  };

  FingerprintProber() = default;
  explicit FingerprintProber(Config config) : config_(config) {}

  /// Probe `target`'s primary service address: one mixed-case location
  /// query, one OPT-bearing location query, as a single batch.
  FingerprintReport run(AsyncQueryTransport& engine, resolvers::PublicResolverKind target,
                        bool* drained = nullptr);
  /// Sequential compatibility path over a plain transport.
  FingerprintReport run(QueryTransport& transport, resolvers::PublicResolverKind target);
  /// SimTransport serves both interfaces; prefer its batched cascade.
  FingerprintReport run(SimTransport& transport, resolvers::PublicResolverKind target);

 private:
  Config config_;
};

}  // namespace dnslocate::core
