// The full three-part localization pipeline (Figure 2), plus the §4.1.2
// transparency test. This is the library's primary public entry point.
#pragma once

#include <optional>

#include "core/cpe_localizer.h"
#include "core/detector.h"
#include "core/fingerprint.h"
#include "core/isp_localizer.h"
#include "core/replication.h"
#include "core/transparency.h"
#include "core/verdict.h"

namespace dnslocate::core {

class SimTransport;

/// Pipeline configuration.
struct PipelineConfig {
  /// Public (WAN) address of the client's CPE. Without it step 2 cannot run
  /// and CPE interception cannot be distinguished from ISP interception.
  std::optional<netbase::IpAddress> cpe_public_ip;
  InterceptionDetector::Config detection;
  CpeLocalizer::Config cpe_check;
  IspLocalizer::Config bogon;
  TransparencyTester::Config transparency;
  /// Run the whoami transparency test on intercepted probes (§4.1.2).
  bool run_transparency = true;
  /// Also probe for query replication on intercepted probes (§3.1 notes
  /// replication and diversion are indistinguishable for localization; this
  /// records which one it was).
  bool detect_replication = false;
  ReplicationProber::Config replication;
  /// Actively fingerprint in-path middleboxes by their parsing ambiguities
  /// (core/fingerprint.h). Off by default: it adds probe traffic and the
  /// baseline corpus predates it.
  bool run_fingerprint = false;
  FingerprintProber::Config fingerprint;

  /// Seed for the probe's transaction-ID streams. The pipeline derives an
  /// independent per-stage stream from this (overriding the stage configs'
  /// own id_seed defaults), so IDs are unpredictable to an off-path spoofer
  /// yet replay bit-identically per seed — and are fixed at batch-build
  /// time, identical under the blocking and async engines.
  std::uint64_t query_id_seed = 0x1d5eed;

  /// Stamp one retry policy onto every step's QueryOptions. Safe by
  /// construction with respect to §3.3: exhausted retries still report a
  /// timeout, so silence stays silence (see core/retry.h).
  void apply_retry_policy(const RetryPolicy& policy) {
    detection.query.retry = policy;
    cpe_check.query.retry = policy;
    bogon.query.retry = policy;
    transparency.query.retry = policy;
    replication.query.retry = policy;
    fingerprint.query.retry = policy;
  }

  /// Stamp one cancellation token onto every step's QueryOptions so the
  /// transports bound their waits by it (see core/cancellation.h).
  void apply_cancel(const CancelToken& token) {
    detection.query.cancel = token;
    cpe_check.query.cancel = token;
    bogon.query.cancel = token;
    transparency.query.cancel = token;
    replication.query.cancel = token;
    fingerprint.query.cancel = token;
  }
};

/// The pipeline's stages, as bit positions in ProbeVerdict::skipped_stages.
enum class PipelineStage : std::uint8_t {
  detection = 0,
  cpe_check = 1,
  bogon = 2,
  replication = 3,
  transparency = 4,
  fingerprint = 5,
};

/// Everything the pipeline learned about one vantage point.
struct ProbeVerdict {
  DetectionReport detection;
  std::optional<CpeCheckReport> cpe_check;      // only when intercepted
  std::optional<BogonReport> bogon;             // only when needed
  std::optional<TransparencyReport> transparency;
  std::optional<ReplicationReport> replication;   // when detect_replication
  /// Interceptor fingerprint (when run_fingerprint): which parsing
  /// ambiguities the path exhibits and the zoo personality they name.
  std::optional<FingerprintReport> fingerprint;
  InterceptorLocation location = InterceptorLocation::not_intercepted;
  /// Transport activity for this probe's run: queries, retry attempts, and
  /// timeouts — the loss-resilience observability the fault ablation reads.
  TransportTelemetry telemetry;
  /// Stages the run skipped because its cancellation token fired, as a
  /// bitmask of (1 << PipelineStage). A partial verdict keeps completed
  /// stages and never upgrades a skipped stage into an interception claim:
  /// skipped localization leaves `location` at `unknown` (interception was
  /// already detected) or `not_intercepted` (nothing was detected — and
  /// nothing is claimed).
  std::uint8_t skipped_stages = 0;

  [[nodiscard]] bool intercepted() const {
    return location != InterceptorLocation::not_intercepted;
  }
  /// Conflicting answers disagreed and no uncontested evidence decided the
  /// location: interception is established, its locus deliberately is not.
  [[nodiscard]] bool contested() const { return location == InterceptorLocation::contested; }
  [[nodiscard]] bool partial() const { return skipped_stages != 0; }
  [[nodiscard]] bool stage_skipped(PipelineStage stage) const {
    return (skipped_stages & static_cast<std::uint8_t>(1u << static_cast<unsigned>(stage))) != 0;
  }
};

/// Runs Figure 2's decision procedure:
///   1. location queries -> intercepted?
///   2. version.bind comparison -> CPE?
///   3. bogon queries -> within ISP? else unknown.
class LocalizationPipeline {
 public:
  explicit LocalizationPipeline(PipelineConfig config = {}) : config_(std::move(config)) {}

  /// Run the decision procedure, fanning each stage's query set out on
  /// `engine`. `cancel` is checked between stages: once it fires, remaining
  /// stages are marked skipped and the verdict returns partial (the inert
  /// default token never fires). An engine that drains a batch mid-flight
  /// (async cancellation) gets that stage marked skipped too — its partial
  /// report is never upgraded into a localization claim.
  ProbeVerdict run(AsyncQueryTransport& engine, const CancelToken& cancel = {});
  /// Sequential compatibility path: wraps `transport` in a
  /// BlockingBatchAdapter, which reproduces the historical per-query loop
  /// byte for byte.
  ProbeVerdict run(QueryTransport& transport, const CancelToken& cancel = {});
  /// SimTransport implements both interfaces; this exact-match overload
  /// resolves the ambiguity in favour of the batched engine, whose simulated
  /// cascade is byte-identical to the sequential loop (see sim_transport.h).
  ProbeVerdict run(SimTransport& transport, const CancelToken& cancel = {});

  [[nodiscard]] const PipelineConfig& config() const { return config_; }

 private:
  PipelineConfig config_;
};

}  // namespace dnslocate::core
