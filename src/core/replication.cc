#include "core/replication.h"

namespace dnslocate::core {

ReplicationReport ReplicationProber::run(QueryTransport& transport) {
  ReplicationReport report;
  for (resolvers::PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    netbase::Endpoint server{spec.service_v4[0], netbase::kDnsPort};
    dnswire::Message query =
        dnswire::make_query(next_id_++, spec.location_query.name, spec.location_query.type,
                            spec.location_query.klass);
    QueryResult result = transport.query(server, query, config_.query);

    ReplicationObservation obs;
    obs.responses = result.all_responses.size();
    obs.replicated = result.replicated();
    obs.first_display = location_response_display(result);
    if (obs.replicated) {
      QueryResult last;
      last.status = QueryResult::Status::answered;
      last.response = result.all_responses.back();
      obs.last_display = location_response_display(last);
      obs.payloads_differ = result.all_responses.front() != result.all_responses.back();
    }
    report.per_resolver.emplace(kind, std::move(obs));
  }
  return report;
}

}  // namespace dnslocate::core
