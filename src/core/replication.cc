#include "core/replication.h"
#include "core/sim_transport.h"

namespace dnslocate::core {

ReplicationReport ReplicationProber::run(AsyncQueryTransport& engine, bool* drained) {
  QueryBatch batch;
  simnet::Rng ids(config_.id_seed);
  auto kinds = resolvers::all_public_resolvers();
  for (resolvers::PublicResolverKind kind : kinds) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    batch.add(netbase::Endpoint{spec.service_v4[0], netbase::kDnsPort},
              dnswire::make_query(random_query_id(ids), spec.location_query.name,
                                  spec.location_query.type, spec.location_query.klass),
              config_.query);
  }

  engine.run(batch);
  if (drained != nullptr) *drained = batch.drained();

  ReplicationReport report;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QueryResult& result = batch.result(i);
    ReplicationObservation obs;
    obs.responses = result.all_responses.size();
    obs.replicated = result.replicated();
    obs.first_display = location_response_display(result);
    if (obs.replicated) {
      QueryResult last;
      last.status = QueryResult::Status::answered;
      last.response = result.all_responses.back();
      obs.last_display = location_response_display(last);
      obs.payloads_differ = result.all_responses.front() != result.all_responses.back();
    }
    report.per_resolver.emplace(kinds[i], std::move(obs));
  }
  return report;
}

ReplicationReport ReplicationProber::run(QueryTransport& transport) {
  BlockingBatchAdapter adapter(transport);
  return run(adapter);
}

ReplicationReport ReplicationProber::run(SimTransport& transport) {
  return run(static_cast<AsyncQueryTransport&>(transport));
}

}  // namespace dnslocate::core
