#include "core/dns0x20.h"

namespace dnslocate::core {

std::string_view to_string(CaseEchoResult result) {
  switch (result) {
    case CaseEchoResult::preserved: return "preserved";
    case CaseEchoResult::rewritten: return "rewritten";
    case CaseEchoResult::no_question: return "no question";
    case CaseEchoResult::timed_out: return "timeout";
  }
  return "?";
}

std::string Dns0x20Prober::encode_0x20(const std::string& name, simnet::Rng& rng) {
  std::string out = name;
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') {
      if (rng.bernoulli(0.5)) c = static_cast<char>(c - 'a' + 'A');
    } else if (c >= 'A' && c <= 'Z') {
      if (rng.bernoulli(0.5)) c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return out;
}

Dns0x20Report Dns0x20Prober::run(QueryTransport& transport) {
  Dns0x20Report report;
  simnet::Rng rng(config_.seed);
  for (resolvers::PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    netbase::Endpoint server{spec.service_v4[0], netbase::kDnsPort};

    std::string encoded = encode_0x20(config_.base_name, rng);
    report.sent_names.emplace(kind, encoded);
    auto name = dnswire::DnsName::parse(encoded);
    if (!name) {
      report.per_resolver.emplace(kind, CaseEchoResult::timed_out);
      continue;
    }
    dnswire::Message query = dnswire::make_query(next_id_++, *name, dnswire::RecordType::A);
    QueryResult result = transport.query(server, query, config_.query);

    CaseEchoResult echo;
    if (!result.answered()) {
      echo = CaseEchoResult::timed_out;
    } else if (!result.response->question()) {
      echo = CaseEchoResult::no_question;
    } else {
      // Byte-exact comparison: the whole point of 0x20 is case sensitivity.
      echo = result.response->question()->name == *name ? CaseEchoResult::preserved
                                                        : CaseEchoResult::rewritten;
    }
    report.per_resolver.emplace(kind, echo);
  }
  return report;
}

}  // namespace dnslocate::core
