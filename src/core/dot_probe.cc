#include "core/dot_probe.h"

#include "core/sim_transport.h"

namespace dnslocate::core {

std::string_view to_string(DotFinding finding) {
  switch (finding) {
    case DotFinding::not_intercepted: return "not intercepted";
    case DotFinding::dot_blocked: return "DoT blocked (fallback forced)";
    case DotFinding::opportunistic_hijacked: return "opportunistic DoT hijacked";
    case DotFinding::dot_escapes: return "DoT escapes the interceptor";
    case DotFinding::inconsistent: return "inconsistent";
  }
  return "?";
}

DotFinding DotProber::classify(const DotResolverReport& report) {
  auto verdict_of = [&](simnet::Channel channel) {
    auto it = report.channels.find(channel);
    return it == report.channels.end() ? LocationVerdict::timed_out : it->second.verdict;
  };
  LocationVerdict udp = verdict_of(simnet::Channel::udp);
  LocationVerdict strict = verdict_of(simnet::Channel::dot_strict);
  LocationVerdict opportunistic = verdict_of(simnet::Channel::dot_opportunistic);

  bool udp_intercepted = indicates_interception(udp);
  if (!udp_intercepted && udp == LocationVerdict::standard &&
      strict == LocationVerdict::standard && opportunistic == LocationVerdict::standard)
    return DotFinding::not_intercepted;
  if (udp_intercepted) {
    if (strict == LocationVerdict::timed_out && indicates_interception(opportunistic))
      return DotFinding::opportunistic_hijacked;
    if (strict == LocationVerdict::timed_out && opportunistic == LocationVerdict::timed_out)
      return DotFinding::dot_blocked;
    if (strict == LocationVerdict::standard && opportunistic == LocationVerdict::standard)
      return DotFinding::dot_escapes;
  }
  return DotFinding::inconsistent;
}

DotReport DotProber::run(AsyncQueryTransport& engine, bool* drained) {
  if (drained != nullptr) *drained = false;

  // One declarative batch across every (resolver, channel) pair. Channels
  // the transport cannot speak get a placeholder slot with no batch entry —
  // and consume no transaction ID, so the IDs on the wire are identical to
  // the historical sequential loop's.
  struct Slot {
    resolvers::PublicResolverKind kind;
    simnet::Channel channel;
    std::optional<std::size_t> index;  // nullopt: channel unsupported
  };
  std::vector<Slot> slots;
  QueryBatch batch;
  for (resolvers::PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    for (simnet::Channel channel : {simnet::Channel::udp, simnet::Channel::dot_strict,
                                    simnet::Channel::dot_opportunistic}) {
      Slot slot{kind, channel, std::nullopt};
      if (engine.transport().supports_channel(channel)) {
        std::uint16_t port =
            channel == simnet::Channel::udp ? netbase::kDnsPort : netbase::kDotPort;
        QueryOptions options = config_.query;
        options.channel = channel;
        slot.index = batch.add(
            netbase::Endpoint{spec.service_v4[0], port},
            dnswire::make_query(next_id_++, spec.location_query.name,
                                spec.location_query.type, spec.location_query.klass),
            options);
      }
      slots.push_back(slot);
    }
  }

  engine.run(batch);
  if (drained != nullptr) *drained = batch.drained();

  DotReport report;
  for (const Slot& slot : slots) {
    DotChannelResult channel_result;
    if (!slot.index) {
      channel_result.display = "(unsupported)";
    } else {
      const QueryResult& result = batch.result(*slot.index);
      channel_result.verdict = classify_location_response(slot.kind, result);
      channel_result.display = location_response_display(result);
    }
    report.per_resolver[slot.kind].channels.emplace(slot.channel, std::move(channel_result));
  }
  for (auto& [kind, resolver_report] : report.per_resolver)
    resolver_report.finding = classify(resolver_report);
  return report;
}

DotReport DotProber::run(QueryTransport& transport) {
  BlockingBatchAdapter adapter(transport);
  return run(adapter);
}

DotReport DotProber::run(SimTransport& transport) {
  return run(static_cast<AsyncQueryTransport&>(transport));
}

}  // namespace dnslocate::core
