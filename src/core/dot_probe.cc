#include "core/dot_probe.h"

namespace dnslocate::core {

std::string_view to_string(DotFinding finding) {
  switch (finding) {
    case DotFinding::not_intercepted: return "not intercepted";
    case DotFinding::dot_blocked: return "DoT blocked (fallback forced)";
    case DotFinding::opportunistic_hijacked: return "opportunistic DoT hijacked";
    case DotFinding::dot_escapes: return "DoT escapes the interceptor";
    case DotFinding::inconsistent: return "inconsistent";
  }
  return "?";
}

DotFinding DotProber::classify(const DotResolverReport& report) {
  auto verdict_of = [&](simnet::Channel channel) {
    auto it = report.channels.find(channel);
    return it == report.channels.end() ? LocationVerdict::timed_out : it->second.verdict;
  };
  LocationVerdict udp = verdict_of(simnet::Channel::udp);
  LocationVerdict strict = verdict_of(simnet::Channel::dot_strict);
  LocationVerdict opportunistic = verdict_of(simnet::Channel::dot_opportunistic);

  bool udp_intercepted = indicates_interception(udp);
  if (!udp_intercepted && udp == LocationVerdict::standard &&
      strict == LocationVerdict::standard && opportunistic == LocationVerdict::standard)
    return DotFinding::not_intercepted;
  if (udp_intercepted) {
    if (strict == LocationVerdict::timed_out && indicates_interception(opportunistic))
      return DotFinding::opportunistic_hijacked;
    if (strict == LocationVerdict::timed_out && opportunistic == LocationVerdict::timed_out)
      return DotFinding::dot_blocked;
    if (strict == LocationVerdict::standard && opportunistic == LocationVerdict::standard)
      return DotFinding::dot_escapes;
  }
  return DotFinding::inconsistent;
}

DotReport DotProber::run(QueryTransport& transport) {
  DotReport report;
  for (resolvers::PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    DotResolverReport resolver_report;

    for (simnet::Channel channel : {simnet::Channel::udp, simnet::Channel::dot_strict,
                                    simnet::Channel::dot_opportunistic}) {
      DotChannelResult channel_result;
      if (!transport.supports_channel(channel)) {
        channel_result.display = "(unsupported)";
        resolver_report.channels.emplace(channel, std::move(channel_result));
        continue;
      }
      std::uint16_t port =
          channel == simnet::Channel::udp ? netbase::kDnsPort : netbase::kDotPort;
      netbase::Endpoint server{spec.service_v4[0], port};
      QueryOptions options = config_.query;
      options.channel = channel;
      dnswire::Message query =
          dnswire::make_query(next_id_++, spec.location_query.name, spec.location_query.type,
                              spec.location_query.klass);
      QueryResult result = transport.query(server, query, options);
      channel_result.verdict = classify_location_response(kind, result);
      channel_result.display = location_response_display(result);
      resolver_report.channels.emplace(channel, std::move(channel_result));
    }

    resolver_report.finding = classify(resolver_report);
    report.per_resolver.emplace(kind, std::move(resolver_report));
  }
  return report;
}

}  // namespace dnslocate::core
