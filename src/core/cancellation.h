// Cooperative cancellation for long-running probe work.
//
// A CancelToken is a cheap copyable handle to shared cancellation state.
// The fleet supervisor hands one to each probe; the pipeline checks it
// between stages and the socket transports honour it inside their waits, so
// a probe that blows its wall-clock budget stops at the next checkpoint and
// returns a *partial* verdict instead of hanging the worker. Cancellation is
// advisory, never preemptive: completed work is kept, skipped work is marked
// skipped, and no stage ever fabricates a result because time ran out.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

namespace dnslocate::core {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Inert token: never cancels. The default for all existing call sites.
  CancelToken() = default;

  /// Manually cancellable token (cancel() flips it).
  static CancelToken manual() { return CancelToken(std::make_shared<State>()); }

  /// Token that auto-cancels once `deadline` passes.
  static CancelToken with_deadline(Clock::time_point deadline) {
    CancelToken token(std::make_shared<State>());
    token.state_->deadline = deadline;
    return token;
  }

  /// Token that auto-cancels `budget` from now.
  static CancelToken after(std::chrono::milliseconds budget) {
    return with_deadline(Clock::now() + budget);
  }

  /// Request cancellation. No-op on an inert token.
  void cancel() const {
    if (state_) state_->flag.store(true, std::memory_order_relaxed);
  }

  /// Whether work should stop: manually cancelled or past the deadline.
  [[nodiscard]] bool cancelled() const {
    if (!state_) return false;
    if (state_->flag.load(std::memory_order_relaxed)) return true;
    return state_->deadline && Clock::now() >= *state_->deadline;
  }

  /// Whether the deadline (if any) has passed — distinguishes a blown
  /// budget from a manual stop.
  [[nodiscard]] bool deadline_exceeded() const {
    return state_ && state_->deadline && Clock::now() >= *state_->deadline;
  }

  [[nodiscard]] std::optional<Clock::time_point> deadline() const {
    return state_ ? state_->deadline : std::nullopt;
  }

  /// Whether this token can ever cancel (i.e. is not the inert default).
  [[nodiscard]] bool active() const { return state_ != nullptr; }

 private:
  struct State {
    std::atomic<bool> flag{false};
    std::optional<Clock::time_point> deadline;
  };

  explicit CancelToken(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace dnslocate::core
