// Human-readable rendering of a ProbeVerdict: the full evidence trail of
// one localization run, formatted the way the examples and the live tool
// present it.
#pragma once

#include <string>

#include "core/pipeline.h"

namespace dnslocate::core {

/// Rendering options.
struct DescribeOptions {
  bool include_v6 = true;          // list v6 location probes too
  bool include_transparency = true;
  std::string indent = "  ";
};

/// Multi-line report: verdict, step-1 observations, step-2 comparison,
/// step-3 bogon evidence, and the transparency classification.
std::string describe(const ProbeVerdict& verdict, const DescribeOptions& options = {});

/// One-line summary: "CPE (version.bind \"dnsmasq-2.78\", 4/4 resolvers)".
std::string summarize(const ProbeVerdict& verdict);

}  // namespace dnslocate::core
