// Location-query response classification (§3.1): each public resolver has a
// "standard" answer format, validated out-of-band with the operators; any
// deviation means the query was answered by someone else.
#pragma once

#include <string>
#include <string_view>

#include "core/transport.h"
#include "resolvers/public_resolver.h"

namespace dnslocate::core {

/// Verdict on one location-query response.
enum class LocationVerdict {
  standard,      // matches the resolver's documented format
  nonstandard,   // NOERROR but the wrong shape -> intercepted
  error_status,  // NOTIMP/REFUSED/... -> intercepted (deliberate response)
  timed_out,     // conservatively NOT counted as interception (§3.1)
};

std::string_view to_string(LocationVerdict verdict);

/// True if the verdict indicates interception.
constexpr bool indicates_interception(LocationVerdict verdict) {
  return verdict == LocationVerdict::nonstandard || verdict == LocationVerdict::error_status;
}

/// Classify a response to `kind`'s location query.
LocationVerdict classify_location_response(resolvers::PublicResolverKind kind,
                                           const QueryResult& result);

/// Classify a single response message (arbitration path: when conflicting
/// answers are collected for one query, each is classified independently).
LocationVerdict classify_location_message(resolvers::PublicResolverKind kind,
                                          const dnswire::Message& response);

/// True when the answers collected for one location query *disagree on
/// interception*: at least one classifies as interception evidence and at
/// least one as the resolver's standard format. That is the signature of an
/// on-path spoofer racing the genuine resolver — the probe's evidence is
/// contested and must not be used to localize (core/verdict.h contested).
/// Conflicting answers that all classify the same way (two different wrong
/// answers, or replicated standard answers) are NOT contested.
bool location_evidence_contested(resolvers::PublicResolverKind kind, const QueryResult& result);

/// Human rendering used in Table-2-style outputs: the TXT payload, the rcode
/// name for errors, or "-" / "timeout".
std::string location_response_display(const QueryResult& result);

// --- format validators (exposed for tests and the ablation bench) ---

/// Cloudflare: a bare upper-case IATA code from the anycast site catalog.
bool is_cloudflare_standard(std::string_view txt);

/// Google: an address inside Google's egress prefixes.
bool is_google_standard(std::string_view txt);

/// Quad9: "res<NN>.<iata>.rrdns.pch.net".
bool is_quad9_standard(std::string_view txt);

/// OpenDNS: "server m<NN>.<iata>".
bool is_opendns_standard(std::string_view txt);

}  // namespace dnslocate::core
