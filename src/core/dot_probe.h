// DoT interception probing — §6's open question, made executable.
//
// The paper notes that DoH and strict-profile DoT prevent interception
// outright, while the RFC 7858 "opportunistic privacy profile" disables
// certificate validation and "could allow interception". This prober runs
// the location query over UDP/53, strict DoT, and opportunistic DoT and
// compares the outcomes:
//
//   UDP intercepted + opportunistic intercepted + strict silent
//       -> a DNAT interceptor sits on the path and also grabs port 853;
//          strict clients are protected (their handshake fails closed),
//          opportunistic clients are silently hijacked.
//   UDP intercepted + both DoT channels standard
//       -> the interceptor only touches port 53; any DoT escapes it.
//   UDP intercepted + both DoT channels silent
//       -> the middlebox blocks port 853, forcing fallback to UDP/53.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/classify.h"
#include "core/query_batch.h"
#include "core/transport.h"

namespace dnslocate::core {

class SimTransport;

/// Outcome of one (resolver, channel) probe.
struct DotChannelResult {
  LocationVerdict verdict = LocationVerdict::timed_out;
  std::string display;
};

/// What the comparison across channels implies for one resolver.
enum class DotFinding {
  not_intercepted,          // every channel standard
  dot_blocked,              // UDP intercepted, both DoT channels silent
  opportunistic_hijacked,   // UDP + opportunistic intercepted, strict silent
  dot_escapes,              // UDP intercepted, both DoT channels standard
  inconsistent,             // anything else (mixed/unreachable)
};

std::string_view to_string(DotFinding finding);

struct DotResolverReport {
  std::map<simnet::Channel, DotChannelResult> channels;
  DotFinding finding = DotFinding::inconsistent;
};

struct DotReport {
  std::map<resolvers::PublicResolverKind, DotResolverReport> per_resolver;
};

class DotProber {
 public:
  struct Config {
    QueryOptions query;
  };

  DotProber() = default;
  explicit DotProber(Config config) : config_(config) {}

  /// Probe every public resolver across the three channels, as one
  /// declarative QueryBatch (results interpreted by index; unsupported
  /// channels get placeholder slots and consume no transaction IDs).
  /// Requires a transport with DoT channel support (the simulated one); on
  /// transports without it the DoT channels report timed_out and findings
  /// come back `inconsistent`. `*drained` is set when cancellation cut the
  /// batch short.
  DotReport run(AsyncQueryTransport& engine, bool* drained = nullptr);
  /// Sequential compatibility path over a plain transport.
  DotReport run(QueryTransport& transport);
  /// SimTransport serves both interfaces; prefer its (byte-identical)
  /// batched cascade.
  DotReport run(SimTransport& transport);

  /// Derive the finding from three channel verdicts (exposed for tests).
  static DotFinding classify(const DotResolverReport& report);

 private:
  Config config_;
  std::uint16_t next_id_ = 0x6000;
};

}  // namespace dnslocate::core
