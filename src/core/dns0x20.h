// DNS-0x20 integrity probing — a complementary interception signal.
//
// Clients that randomize the 0x20 (case) bits of the query name expect the
// response to echo the question byte-for-byte. A pure DNAT interceptor
// relays the client's packet and the echo survives; a *proxying*
// interceptor (a CPE forwarder that re-issues the query upstream) may
// re-encode the name and lose the case pattern. The comparison with the
// version.bind technique is instructive: 0x20 catches only the proxy class
// and is therefore not a localization primitive — exactly why the paper
// builds on version.bind instead. (See bench/ablation_0x20.)
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/transport.h"
#include "resolvers/public_resolver.h"
#include "simnet/rng.h"

namespace dnslocate::core {

/// Outcome for one resolver.
enum class CaseEchoResult {
  preserved,       // question echoed with the exact case pattern
  rewritten,       // answered, but the case pattern was lost (a proxy)
  no_question,     // response carried no question section
  timed_out,
};

std::string_view to_string(CaseEchoResult result);

struct Dns0x20Report {
  std::map<resolvers::PublicResolverKind, CaseEchoResult> per_resolver;
  std::map<resolvers::PublicResolverKind, std::string> sent_names;
};

class Dns0x20Prober {
 public:
  struct Config {
    QueryOptions query;
    /// Name whose case gets randomized (must resolve; default probe domain).
    std::string base_name = "probe.dnslocate.example";
    std::uint64_t seed = 0x20;
  };

  Dns0x20Prober() = default;
  explicit Dns0x20Prober(Config config) : config_(std::move(config)) {}

  Dns0x20Report run(QueryTransport& transport);

  /// Randomize letter case deterministically from `rng` (exposed for tests).
  static std::string encode_0x20(const std::string& name, simnet::Rng& rng);

 private:
  Config config_;
  std::uint16_t next_id_ = 0x9000;
};

}  // namespace dnslocate::core
