#include "core/describe.h"

namespace dnslocate::core {
namespace {

void append_line(std::string& out, const std::string& indent, int depth,
                 const std::string& text) {
  for (int i = 0; i < depth; ++i) out += indent;
  out += text;
  out += "\n";
}

}  // namespace

std::string summarize(const ProbeVerdict& verdict) {
  std::string out{to_string(verdict.location)};
  if (!verdict.intercepted()) return out;
  auto kinds_v4 = verdict.detection.intercepted_kinds(netbase::IpFamily::v4);
  auto kinds_v6 = verdict.detection.intercepted_kinds(netbase::IpFamily::v6);
  out += " (" + std::to_string(std::max(kinds_v4.size(), kinds_v6.size())) + "/4 resolvers";
  if (verdict.cpe_check && verdict.cpe_check->cpe.has_string())
    out += ", version.bind \"" + *verdict.cpe_check->cpe.txt + "\"";
  if (verdict.transparency)
    out += ", " + std::string(to_string(verdict.transparency->overall));
  out += ")";
  return out;
}

std::string describe(const ProbeVerdict& verdict, const DescribeOptions& options) {
  std::string out;
  const std::string& tab = options.indent;
  append_line(out, tab, 0, "verdict: " + summarize(verdict));

  append_line(out, tab, 0, "step 1 — location queries:");
  for (const auto& probe : verdict.detection.probes) {
    if (!options.include_v6 && probe.family == netbase::IpFamily::v6) continue;
    std::string line = std::string(to_string(probe.kind));
    line += " " + probe.server.to_string() + " -> " + probe.display;
    line += "  [" + std::string(to_string(probe.verdict)) + "]";
    if (probe.contested) line += "  [contested]";
    append_line(out, tab, 1, line);
  }
  // Arbitration evidence renders only when something was observed, so
  // adversary-free runs describe() byte-identically to older builds.
  {
    const TransportTelemetry& t = verdict.telemetry;
    if (t.conflicts != 0 || t.spoof_suspected != 0 || t.malformed != 0 ||
        t.case_mismatches != 0) {
      append_line(out, tab, 1,
                  "arbitration: conflicts=" + std::to_string(t.conflicts) +
                      " spoof_suspected=" + std::to_string(t.spoof_suspected) +
                      " malformed=" + std::to_string(t.malformed) +
                      " case_mismatches=" + std::to_string(t.case_mismatches));
    }
  }

  if (verdict.cpe_check) {
    append_line(out, tab, 0, "step 2 — version.bind comparison:");
    append_line(out, tab, 1, "CPE public IP -> \"" + verdict.cpe_check->cpe.display + "\"");
    for (const auto& [kind, obs] : verdict.cpe_check->resolver_answers)
      append_line(out, tab, 1,
                  std::string(to_string(kind)) + " -> \"" + obs.display + "\"");
    if (verdict.cpe_check->contested)
      append_line(out, tab, 1, "contested: conflicting answers — comparison unreliable");
    append_line(out, tab, 1,
                verdict.cpe_check->cpe_is_interceptor
                    ? "identical strings: the CPE is the interceptor"
                    : "strings differ: the CPE is not the interceptor");
  }

  if (verdict.bogon) {
    append_line(out, tab, 0, "step 3 — bogon queries:");
    if (verdict.bogon->v4.tested)
      append_line(out, tab, 1,
                  verdict.bogon->v4.target.to_string() + " -> " + verdict.bogon->v4.a_display +
                      " / version.bind " + verdict.bogon->v4.version_display);
    if (verdict.bogon->v6.tested)
      append_line(out, tab, 1,
                  verdict.bogon->v6.target.to_string() + " -> " + verdict.bogon->v6.a_display);
    if (verdict.bogon->contested())
      append_line(out, tab, 1, "contested: conflicting answers — in-AS conclusion unreliable");
    append_line(out, tab, 1,
                verdict.bogon->within_isp()
                    ? "answered: the interceptor is inside the AS"
                    : "silent: interceptor beyond the AS, or it discards bogons");
  }

  if (verdict.fingerprint && verdict.fingerprint->tested) {
    const FingerprintReport& fp = *verdict.fingerprint;
    std::string line = "fingerprint: " + fp.target.to_string() + " ->";
    if (fp.unreachable) {
      line += " unreachable";
    } else if (!fp.any_ambiguity()) {
      line += " no ambiguity";
    } else {
      if (fp.case_folded) line += " case-folded";
      if (fp.edns_stripped) line += " edns-stripped";
      if (fp.tc_rewritten) line += " tc-rewritten";
      line += "  [" + fp.vendor + "]";
    }
    append_line(out, tab, 0, line);
  }

  if (options.include_transparency && verdict.transparency) {
    append_line(out, tab, 0,
                "transparency: " + std::string(to_string(verdict.transparency->overall)));
    for (const auto& [kind, obs] : verdict.transparency->per_resolver)
      append_line(out, tab, 1,
                  std::string(to_string(kind)) + " whoami -> " + obs.display + "  [" +
                      std::string(to_string(obs.klass)) + "]");
  }
  return out;
}

}  // namespace dnslocate::core
