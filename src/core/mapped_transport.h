// MappedTransport: a QueryTransport decorator that rewrites server
// endpoints through a static map before delegating. Two uses:
//   - integration testing: point the pipeline's well-known resolver
//     addresses (1.1.1.1, 8.8.8.8, ...) at in-process loopback servers and
//     exercise the real socket path end-to-end;
//   - split-horizon deployments where a measurement vantage reaches the
//     resolvers through jump addresses.
// Unmapped endpoints either pass through or time out, per policy.
#pragma once

#include <unordered_map>

#include "core/transport.h"

namespace dnslocate::core {

class MappedTransport : public QueryTransport {
 public:
  enum class UnmappedPolicy {
    pass_through,  // forward to the original endpoint
    timeout,       // swallow the query (hermetic test mode)
  };

  explicit MappedTransport(QueryTransport& inner,
                           UnmappedPolicy policy = UnmappedPolicy::timeout)
      : inner_(inner), policy_(policy) {}

  /// Route queries for `from` to `to` instead. Port 0 in `from` matches any
  /// port on that address.
  void map(const netbase::Endpoint& from, const netbase::Endpoint& to) {
    mappings_[from] = to;
  }
  void map_address(const netbase::IpAddress& from, const netbase::Endpoint& to) {
    mappings_[netbase::Endpoint{from, 0}] = to;
  }

  QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                    const QueryOptions& options = {}) override {
    QueryResult result = route(server, message, options);
    record_telemetry(result);
    return result;
  }

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override {
    return inner_.supports_family(family);
  }
  [[nodiscard]] bool supports_ttl() const override { return inner_.supports_ttl(); }
  [[nodiscard]] bool supports_channel(simnet::Channel channel) const override {
    return inner_.supports_channel(channel);
  }

 private:
  QueryResult route(const netbase::Endpoint& server, const dnswire::Message& message,
                    const QueryOptions& options) {
    if (auto it = mappings_.find(server); it != mappings_.end())
      return inner_.query(it->second, message, options);
    if (auto it = mappings_.find(netbase::Endpoint{server.address, 0}); it != mappings_.end())
      return inner_.query(it->second, message, options);
    if (policy_ == UnmappedPolicy::pass_through) return inner_.query(server, message, options);
    QueryResult result;  // hermetic: unmapped queries time out
    result.retry.timeouts = 1;
    return result;
  }

  QueryTransport& inner_;
  UnmappedPolicy policy_;
  std::unordered_map<netbase::Endpoint, netbase::Endpoint> mappings_;
};

}  // namespace dnslocate::core
