// MappedTransport: a QueryTransport decorator that rewrites server
// endpoints through a static map before delegating. Two uses:
//   - integration testing: point the pipeline's well-known resolver
//     addresses (1.1.1.1, 8.8.8.8, ...) at in-process loopback servers and
//     exercise the real socket path end-to-end;
//   - split-horizon deployments where a measurement vantage reaches the
//     resolvers through jump addresses.
// Unmapped endpoints either pass through or time out, per policy.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/query_batch.h"
#include "core/transport.h"

namespace dnslocate::core {

/// The endpoint-rewrite table shared by the blocking and batched mapped
/// transports. Port 0 in a `from` entry matches any port on that address.
class EndpointMap {
 public:
  void map(const netbase::Endpoint& from, const netbase::Endpoint& to) {
    mappings_[from] = to;
  }
  void map_address(const netbase::IpAddress& from, const netbase::Endpoint& to) {
    mappings_[netbase::Endpoint{from, 0}] = to;
  }

  /// The rewritten endpoint for `server`, if one is mapped.
  [[nodiscard]] std::optional<netbase::Endpoint> resolve(const netbase::Endpoint& server) const {
    if (auto it = mappings_.find(server); it != mappings_.end()) return it->second;
    if (auto it = mappings_.find(netbase::Endpoint{server.address, 0}); it != mappings_.end())
      return it->second;
    return std::nullopt;
  }

 private:
  std::unordered_map<netbase::Endpoint, netbase::Endpoint> mappings_;
};

class MappedTransport : public QueryTransport {
 public:
  enum class UnmappedPolicy {
    pass_through,  // forward to the original endpoint
    timeout,       // swallow the query (hermetic test mode)
  };

  explicit MappedTransport(QueryTransport& inner,
                           UnmappedPolicy policy = UnmappedPolicy::timeout)
      : inner_(inner), policy_(policy) {}

  /// Route queries for `from` to `to` instead. Port 0 in `from` matches any
  /// port on that address.
  void map(const netbase::Endpoint& from, const netbase::Endpoint& to) {
    mappings_.map(from, to);
  }
  void map_address(const netbase::IpAddress& from, const netbase::Endpoint& to) {
    mappings_.map_address(from, to);
  }

  QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                    const QueryOptions& options = {}) override {
    QueryResult result = route(server, message, options);
    record_telemetry(result);
    return result;
  }

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override {
    return inner_.supports_family(family);
  }
  [[nodiscard]] bool supports_ttl() const override { return inner_.supports_ttl(); }
  [[nodiscard]] bool supports_channel(simnet::Channel channel) const override {
    return inner_.supports_channel(channel);
  }

 private:
  QueryResult route(const netbase::Endpoint& server, const dnswire::Message& message,
                    const QueryOptions& options) {
    if (auto target = mappings_.resolve(server)) return inner_.query(*target, message, options);
    if (policy_ == UnmappedPolicy::pass_through) return inner_.query(server, message, options);
    QueryResult result;  // hermetic: unmapped queries time out
    result.retry.timeouts = 1;
    return result;
  }

  QueryTransport& inner_;
  UnmappedPolicy policy_;
  EndpointMap mappings_;
};

/// Batched counterpart of MappedTransport: rewrites every spec's endpoint
/// through the map, delegates the rewritten batch to the inner engine in one
/// fan-out, and copies results back by index. Unmapped endpoints follow the
/// same policy (pass through, or hermetically time out without ever touching
/// the wire). Like MappedTransport, it keeps its own telemetry — the
/// pipeline snapshots the outermost transport.
class MappedBatchTransport final : public QueryTransport, public AsyncQueryTransport {
 public:
  explicit MappedBatchTransport(AsyncQueryTransport& inner,
                                MappedTransport::UnmappedPolicy policy =
                                    MappedTransport::UnmappedPolicy::timeout)
      : inner_(inner), policy_(policy) {}

  void map(const netbase::Endpoint& from, const netbase::Endpoint& to) {
    mappings_.map(from, to);
  }
  void map_address(const netbase::IpAddress& from, const netbase::Endpoint& to) {
    mappings_.map_address(from, to);
  }

  void run(QueryBatch& batch) override {
    QueryBatch rewritten;
    std::vector<std::size_t> origin;  // rewritten slot -> original slot
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const QuerySpec& spec = batch.spec(i);
      if (auto target = mappings_.resolve(spec.server)) {
        rewritten.add(*target, spec.message, spec.options);
        origin.push_back(i);
      } else if (policy_ == MappedTransport::UnmappedPolicy::pass_through) {
        rewritten.add(spec.server, spec.message, spec.options);
        origin.push_back(i);
      } else {
        batch.result(i).retry.timeouts = 1;  // hermetic timeout, zero attempts
      }
    }
    inner_.run(rewritten);
    for (std::size_t j = 0; j < rewritten.size(); ++j)
      batch.result(origin[j]) = rewritten.result(j);
    if (rewritten.drained()) batch.mark_drained();
    for (std::size_t i = 0; i < batch.size(); ++i) record_telemetry(batch.result(i));
  }

  [[nodiscard]] QueryTransport& transport() override { return *this; }

  QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                    const QueryOptions& options = {}) override {
    QueryBatch batch;
    batch.add(server, message, options);
    run(batch);
    return batch.result(0);
  }

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override {
    return inner_transport().supports_family(family);
  }
  [[nodiscard]] bool supports_ttl() const override { return inner_transport().supports_ttl(); }
  [[nodiscard]] bool supports_channel(simnet::Channel channel) const override {
    return inner_transport().supports_channel(channel);
  }

 private:
  // A reference member stays mutable inside const methods, so the inner
  // engine's (non-const) transport() is reachable for capability checks.
  [[nodiscard]] QueryTransport& inner_transport() const { return inner_.transport(); }

  AsyncQueryTransport& inner_;
  MappedTransport::UnmappedPolicy policy_;
  EndpointMap mappings_;
};

}  // namespace dnslocate::core
