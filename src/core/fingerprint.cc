#include "core/fingerprint.h"

#include "core/sim_transport.h"

namespace dnslocate::core {
namespace {

/// Alternating-case 0x20 encoding of `name` (deterministic, so probe bytes
/// replay identically per seed). Uppercases every second alphabetic octet.
dnswire::DnsName mixed_case(const dnswire::DnsName& name) {
  std::vector<std::string> labels = name.labels();
  bool upper = true;
  for (auto& label : labels) {
    for (char& c : label) {
      if (c >= 'a' && c <= 'z') {
        if (upper) c = static_cast<char>(c - 'a' + 'A');
        upper = !upper;
      } else if (c >= 'A' && c <= 'Z') {
        if (!upper) c = static_cast<char>(c - 'A' + 'a');
        upper = !upper;
      }
    }
  }
  auto rebuilt = dnswire::DnsName::from_labels(std::move(labels));
  return rebuilt ? *rebuilt : name;
}

bool has_opt(const dnswire::Message& message) {
  for (const auto& rr : message.additionals)
    if (rr.type == dnswire::RecordType::OPT) return true;
  return false;
}

bool tc_with_answers(const QueryResult& result) {
  if (!result.answered()) return false;
  for (const auto& response : result.all_responses)
    if (response.flags.tc && !response.answers.empty()) return true;
  return false;
}

}  // namespace

std::string fingerprint_vendor(bool case_folded, bool edns_stripped, bool tc_rewritten) {
  if (!case_folded && !edns_stripped && !tc_rewritten) return "";
  if (case_folded && edns_stripped && tc_rewritten) return "omnibox";
  if (case_folded && !edns_stripped && !tc_rewritten) return "foldix";
  if (!case_folded && edns_stripped && !tc_rewritten) return "optstrip";
  if (!case_folded && !edns_stripped && tc_rewritten) return "truncor";
  return "dpi-unnamed";
}

FingerprintReport FingerprintProber::run(AsyncQueryTransport& engine,
                                         resolvers::PublicResolverKind target, bool* drained) {
  const auto& spec = resolvers::PublicResolverSpec::get(target);
  auto addrs = spec.service_addrs(config_.family);
  netbase::Endpoint server{addrs[0], netbase::kDnsPort};

  QueryBatch batch;
  simnet::Rng ids(config_.id_seed);

  // Slot 0: the 0x20 probe — the resolver's own location query (so the
  // server answers it) with alternating casing.
  batch.add(server,
            dnswire::make_query(random_query_id(ids), mixed_case(spec.location_query.name),
                                spec.location_query.type, spec.location_query.klass),
            config_.query);
  // Slot 1: the EDNS probe — same question, normal casing, OPT attached.
  {
    dnswire::Message query =
        dnswire::make_query(random_query_id(ids), spec.location_query.name,
                            spec.location_query.type, spec.location_query.klass);
    dnswire::ResourceRecord opt;
    opt.name = dnswire::DnsName();  // root, per RFC 6891 §6.1.2
    opt.type = dnswire::RecordType::OPT;
    opt.rdata = dnswire::OptRecord{};
    query.additionals.push_back(std::move(opt));
    batch.add(server, std::move(query), config_.query);
  }

  engine.run(batch);
  if (drained != nullptr) *drained = batch.drained();

  FingerprintReport report;
  report.tested = true;
  report.target = server;
  const QueryResult& case_probe = batch.result(0);
  const QueryResult& edns_probe = batch.result(1);
  report.unreachable = !case_probe.answered() && !edns_probe.answered();
  report.case_folded = case_probe.arbitration.case_mismatches > 0;
  report.edns_stripped = edns_probe.answered() && !has_opt(*edns_probe.response);
  report.tc_rewritten = tc_with_answers(case_probe) || tc_with_answers(edns_probe);
  report.vendor =
      fingerprint_vendor(report.case_folded, report.edns_stripped, report.tc_rewritten);
  return report;
}

FingerprintReport FingerprintProber::run(QueryTransport& transport,
                                         resolvers::PublicResolverKind target) {
  BlockingBatchAdapter adapter(transport);
  return run(adapter, target);
}

FingerprintReport FingerprintProber::run(SimTransport& transport,
                                         resolvers::PublicResolverKind target) {
  return run(static_cast<AsyncQueryTransport&>(transport), target);
}

}  // namespace dnslocate::core
