// The exchange kernel: the single implementation of per-attempt query
// policy, answer acceptance, and spoof arbitration, shared by every
// transport.
//
// The paper's verdicts are only as trustworthy as the answer-acceptance
// rules, and before this seam existed those rules — RFC 5452 source/ID
// matching, 0x20 comparison, duplicate-window listening, retry
// re-randomization, conflict arbitration (Whac-A-Mole, arXiv 2011.12978) —
// were re-implemented per transport. Now there is exactly one copy:
//
//   * run_exchange() drives the full attempt loop (retry budget, backoff,
//     fresh-ID + 0x20 re-roll, per-attempt deadline, duplicate-window
//     continuation, cancellation) over an ExchangeChannel, the minimal
//     medium seam (send, receive, clock, backoff wait). SimTransport,
//     UdpTransport, and TcpTransport are thin channels behind it.
//   * ExchangeLedger owns the acceptance/arbitration state machine for one
//     query (malformed / wrong-source / unacceptable tallies, byte-identical
//     dedup, 0x20 case-mismatch evidence, first-accept vs conflict). The
//     batched UdpEngine keeps its own timer-wheel/demux event loop but
//     delegates every accept/arbitrate decision to a ledger per query.
//
// dnslint's single-acceptance-seam rule enforces the monopoly: transaction-
// ID acceptance, duplicate fingerprinting, or 0x20-comparison logic outside
// this pair of files fails lint.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "core/cancellation.h"
#include "core/retry.h"
#include "core/transport.h"
#include "dnswire/message.h"
#include "netbase/endpoint.h"
#include "simnet/rng.h"

namespace dnslocate::core {

// ---------------------------------------------------------------------------
// Shared predicates (the one copy of each).

/// FNV-1a over a datagram payload, used to recognise byte-identical
/// duplicates: a copy of an accepted response from the same source is
/// network duplication (or a fault-injected clone), not query replication —
/// a real stub cannot tell the two packets apart either.
[[nodiscard]] std::uint64_t payload_fingerprint(const std::uint8_t* data, std::size_t size);

/// RFC 5452 answer acceptance: QR bit, transaction ID, opcode, and the
/// echoed question (type/class equal, name compared case-insensitively so a
/// 0x20-folded echo still matches). The single call site for the dnswire
/// predicate outside its definition.
[[nodiscard]] bool response_acceptable(const dnswire::Message& sent,
                                       const dnswire::Message& response);

/// Do two accepted responses to the same transaction disagree in a way a
/// stub resolver would care about? Compares the response code, the
/// truncation bit, and the answer section; additional-section or
/// compression differences are not conflicts. Byte-identical duplicates
/// never reach this check — the ledger deduplicates them first.
[[nodiscard]] bool responses_conflict(const dnswire::Message& a, const dnswire::Message& b);

/// Mutate `message` for a fresh attempt per `policy`: new transaction ID
/// and/or re-randomized 0x20 case bits, drawn from `rng` — so a straggling
/// response to an earlier attempt fails the ID check instead of answering
/// the retry.
void prepare_retry_attempt(dnswire::Message& message, const RetryPolicy& policy,
                           simnet::Rng& rng);

/// Sleep for `backoff`, returning early (false) if the token fires. The wait
/// is sliced so a manual cancel interrupts it, and capped by the token's
/// deadline so a supervised probe never sleeps past its budget. Wall-clock
/// channels use this between attempts; the simulated channel waits in
/// simulated time instead.
[[nodiscard]] bool interruptible_backoff(std::chrono::milliseconds backoff,
                                         const CancelToken& cancel);

// ---------------------------------------------------------------------------
// Source identity.

/// Opaque response-source identity: equality is all acceptance and dedup
/// need, so each channel encodes its native address form injectively into a
/// small inline buffer (the largest native form, a sockaddr_in6, is 28
/// bytes). Building and comparing keys never allocates, which keeps the
/// kernel's per-datagram path allocation-free.
struct SourceKey {
  std::array<std::uint8_t, 32> bytes{};
  std::uint8_t size = 0;

  friend bool operator==(const SourceKey& a, const SourceKey& b) {
    return a.size == b.size && std::memcmp(a.bytes.data(), b.bytes.data(), a.size) == 0;
  }
};

/// Key for a simulated/native endpoint (family tag + address bytes + port).
[[nodiscard]] SourceKey source_key_from(const netbase::Endpoint& endpoint);

/// Key for a kernel-filled sockaddr (the raw bytes, as recvfrom wrote them).
[[nodiscard]] SourceKey source_key_from(const std::uint8_t* sockaddr_bytes, std::size_t size);

// ---------------------------------------------------------------------------
// Per-query arbitration ledger.

/// The acceptance/arbitration state machine for one query. All four
/// transports feed it: run_exchange() drives it for the blocking channels,
/// and the batched engine calls it directly from its demux. The ledger
/// persists across retry attempts — a failed attempt contributes no accepted
/// responses, so one continuous ledger is equivalent to per-attempt ledgers
/// summed, and ICMP evidence keeps the last reporting attempt's router.
class ExchangeLedger {
 public:
  /// What deliver() did with an acceptable response.
  enum class Disposition {
    duplicate,  // byte-identical to an already-seen response: dropped
    accepted,   // first accepted answer — the caller opens a duplicate window
    followup,   // kept in all_responses; conflicts were tallied if it disagreed
  };

  [[nodiscard]] QueryResult& result() { return result_; }
  [[nodiscard]] const QueryResult& result() const { return result_; }

  /// A datagram on the query's flow that did not decode as DNS at all.
  void note_malformed() { ++result_.arbitration.malformed; }

  /// A decodable datagram that failed RFC 5452 acceptance or arrived from
  /// an endpoint other than the queried server: off-path injection evidence.
  void note_spoof() { ++result_.arbitration.spoof_suspected; }

  /// Start a new attempt: the first ICMP report of each attempt wins, and a
  /// later attempt's report replaces an earlier attempt's.
  void begin_attempt() { icmp_seen_this_attempt_ = false; }

  /// ICMP Time Exceeded quoting this query's attempt: record the reporting
  /// router (first report per attempt; later attempts supersede).
  void note_icmp(const netbase::IpAddress& router) {
    if (icmp_seen_this_attempt_) return;
    icmp_seen_this_attempt_ = true;
    result_.icmp_from = router;
  }

  /// Arbitrate one response that already passed the source and RFC 5452
  /// checks: dedup against (source, fingerprint), tally a 0x20 case rewrite
  /// of the echoed question, then either accept it as THE answer (recording
  /// `rtt`) or keep it as a follow-up — counting a conflict when it
  /// semantically disagrees with the accepted one.
  Disposition deliver(const dnswire::Message& sent, dnswire::Message&& response,
                      SourceKey source, std::uint64_t fingerprint,
                      std::chrono::microseconds rtt);

 private:
  QueryResult result_;
  /// (source, payload fingerprint) of every accepted response.
  std::vector<std::pair<SourceKey, std::uint64_t>> seen_;
  bool icmp_seen_this_attempt_ = false;
};

// ---------------------------------------------------------------------------
// The channel seam.

/// The minimal medium interface run_exchange() needs: a clock, a way to put
/// an attempt on the wire, a way to take the next inbound datagram off it,
/// and a backoff wait. Implementations are small: the simulated channel
/// steps the simulator, the UDP channel polls a socket, the TCP channel
/// reads length-framed messages off a connection.
class ExchangeChannel {
 public:
  /// One inbound unit on the attempt's flow. The channel moves bytes and
  /// states where they came from; all judgement happens in the kernel.
  struct Inbound {
    enum class Kind { datagram, icmp_ttl_exceeded };
    Kind kind = Kind::datagram;
    /// Wire bytes: a DNS message, or the quoted query inside an ICMP error.
    std::vector<std::uint8_t> payload;
    /// Whether the source is the queried endpoint (channels compare in
    /// their native address form; legitimate diverted replies are
    /// conntrack-rewritten back to the queried endpoint before they reach
    /// us, so anything else is wrong-egress injection).
    bool source_matches = false;
    /// Source identity for byte-identical dedup.
    SourceKey source;
    /// Router that reported the ICMP error (icmp_ttl_exceeded only).
    std::optional<netbase::IpAddress> icmp_from;
  };

  virtual ~ExchangeChannel() = default;

  /// Monotonic now, in nanoseconds. Simulated channels report simulated
  /// time; wall-clock channels report steady_clock::now().time_since_epoch()
  /// (the kernel caps deadlines with CancelToken::deadline(), which is
  /// steady_clock-based, so real channels must share that epoch).
  [[nodiscard]] virtual std::chrono::nanoseconds now() = 0;

  /// Acquire per-attempt resources and put `attempt` on the wire.
  /// `deadline` is absolute (same clock as now()). Returns false when the
  /// attempt could not be sent at all — the kernel burns the attempt as an
  /// immediate timeout, exactly like a silent network.
  virtual bool begin_attempt_and_send(const dnswire::Message& attempt,
                                      std::chrono::nanoseconds deadline) = 0;

  /// Block (or step simulated time) until the next inbound unit on the
  /// attempt's flow, the `horizon` passes, the stream ends, or `cancel`
  /// fires — nullptr for everything but a delivery. The returned Inbound is
  /// owned by the channel and valid only until the next receive() or
  /// end_attempt() call, so channels reuse the same slots (and their payload
  /// capacity) across deliveries instead of allocating per datagram.
  virtual Inbound* receive(std::chrono::nanoseconds horizon, const CancelToken& cancel) = 0;

  /// Release per-attempt resources (unbind the port, close the fd).
  virtual void end_attempt() = 0;

  /// Wait out the backoff before a retry attempt; false = cancelled mid-wait
  /// (the kernel then abandons the remaining attempts).
  virtual bool wait_backoff(std::chrono::milliseconds backoff, const CancelToken& cancel) = 0;
};

// ---------------------------------------------------------------------------
// The driver.

/// Per-exchange policy resolved by the transport adapter (per-query options
/// win over transport-level defaults; that resolution stays with the owner
/// of the defaults).
struct ExchangePolicy {
  /// Retry budget and re-randomization behaviour.
  RetryPolicy retry;
  /// How long to keep collecting after the first accepted answer. nullopt =
  /// collect to the full attempt timeout (the simulated transport's
  /// behaviour: simulated waits cost no wall-clock, so the whole window is
  /// always observed).
  std::optional<std::chrono::milliseconds> duplicate_window;
  /// Whether the attempt loop honours QueryOptions::cancel (wall-clock
  /// transports). The simulated transport runs in simulated time where the
  /// wall-clock budget is meaningless, so it opts out — matching the
  /// sequential engine it replaced.
  bool honour_cancellation = true;
};

/// Run one complete query exchange over `channel`: the retry/backoff loop,
/// per-attempt deadline, acceptance, arbitration, duplicate-window
/// continuation, and cancellation — returning the finished QueryResult with
/// retry telemetry attached. The caller records transport telemetry (the
/// record_telemetry seam stays with the QueryTransport adapter).
[[nodiscard]] QueryResult run_exchange(ExchangeChannel& channel, const dnswire::Message& message,
                                       const QueryOptions& options, const ExchangePolicy& policy,
                                       simnet::Rng& rng);

}  // namespace dnslocate::core
