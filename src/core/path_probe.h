// Traceroute-style path probing with DNS payloads — the full version of the
// §6 TTL idea: besides the responder's hop distance, ICMP Time Exceeded
// errors identify each router on the path, so the probe can name the hop at
// which an interceptor answers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/query_batch.h"
#include "core/transport.h"
#include "netbase/endpoint.h"

namespace dnslocate::core {

class SimTransport;

/// One TTL step of a path probe.
struct PathHop {
  std::uint8_t ttl = 0;
  /// Router that reported Time Exceeded at this TTL, if any.
  std::optional<netbase::IpAddress> router;
  /// True if the DNS query itself was answered at this TTL — the responder
  /// (real resolver or interceptor) lives at this hop distance.
  bool dns_answered = false;

  [[nodiscard]] std::string to_string() const;
};

/// Full path report towards one server.
struct PathReport {
  netbase::Endpoint target;
  std::vector<PathHop> hops;
  /// Hop distance of whatever answers the DNS query.
  std::optional<std::uint8_t> responder_hop;
  /// Router addresses collected before the responder, in hop order.
  [[nodiscard]] std::vector<netbase::IpAddress> routers() const;
  [[nodiscard]] std::string to_string() const;
};

class PathProber {
 public:
  struct Config {
    QueryOptions query;
    std::uint8_t max_ttl = 16;
    /// Truncate the report at the hop where the DNS response arrives (a
    /// traceroute that reached its destination). The batch still probes
    /// every TTL up to max_ttl — the plan is fixed before execution — but
    /// hops past the responder are omitted from the report.
    bool stop_at_responder = true;
  };

  PathProber() = default;
  explicit PathProber(Config config) : config_(config) {}

  /// Probe the path towards `target` with version.bind queries of
  /// increasing TTL, as one declarative QueryBatch (results interpreted by
  /// index). Requires supports_ttl(). `*drained` is set when cancellation
  /// cut the batch short.
  PathReport trace(AsyncQueryTransport& engine, const netbase::Endpoint& target,
                   bool* drained = nullptr);
  /// Sequential compatibility path over a plain transport.
  PathReport trace(QueryTransport& transport, const netbase::Endpoint& target);
  /// SimTransport serves both interfaces; prefer its (byte-identical)
  /// batched cascade.
  PathReport trace(SimTransport& transport, const netbase::Endpoint& target);

 private:
  Config config_;
  std::uint16_t next_id_ = 0x7000;
};

}  // namespace dnslocate::core
