// Step 2 (§3.2 and Appendix A): is the CPE the interceptor?
//
// Send version.bind (CHAOS TXT) to the CPE's own public IP and to each
// intercepted public resolver; identical high-entropy response strings mean
// one box — the CPE — answered all of them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/transport.h"
#include "resolvers/public_resolver.h"

namespace dnslocate::core {

/// One version.bind observation.
struct VersionBindObservation {
  bool answered = false;
  /// The TXT payload, when the answer carried one.
  std::optional<std::string> txt;
  /// Rcode of the response (meaningful only when answered).
  dnswire::Rcode rcode = dnswire::Rcode::NOERROR;
  /// Table-3-style rendering ("unbound 1.9.0", "NOTIMP", "timeout").
  std::string display;

  [[nodiscard]] bool has_string() const { return answered && txt.has_value(); }
};

/// Step-2 report.
struct CpeCheckReport {
  VersionBindObservation cpe;  // query addressed to the CPE's public IP
  std::map<resolvers::PublicResolverKind, VersionBindObservation> resolver_answers;
  /// Intercepted resolvers whose version.bind string equals the CPE's.
  std::vector<resolvers::PublicResolverKind> matching;
  /// §3.2's conclusion: the CPE intercepts (true when the CPE responded with
  /// a string and every checked resolver returned the identical string).
  bool cpe_is_interceptor = false;
};

class CpeLocalizer {
 public:
  struct Config {
    QueryOptions query;
    /// Family used for the comparison queries (interception is
    /// overwhelmingly v4; the CPE public IP is a v4 address).
    netbase::IpFamily family = netbase::IpFamily::v4;
  };

  CpeLocalizer() = default;
  explicit CpeLocalizer(Config config) : config_(config) {}

  /// `cpe_public_ip` is the WAN address of the home router; `suspects` are
  /// the resolvers step 1 found intercepted (primary addresses are queried).
  CpeCheckReport run(QueryTransport& transport, const netbase::IpAddress& cpe_public_ip,
                     const std::vector<resolvers::PublicResolverKind>& suspects);

 private:
  VersionBindObservation observe(QueryTransport& transport, const netbase::Endpoint& server);

  Config config_;
  std::uint16_t next_id_ = 0x2000;
};

}  // namespace dnslocate::core
