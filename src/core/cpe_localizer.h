// Step 2 (§3.2 and Appendix A): is the CPE the interceptor?
//
// Send version.bind (CHAOS TXT) to the CPE's own public IP and to each
// intercepted public resolver; identical high-entropy response strings mean
// one box — the CPE — answered all of them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/query_batch.h"
#include "core/transport.h"
#include "resolvers/public_resolver.h"

namespace dnslocate::core {

class SimTransport;

/// One version.bind observation.
struct VersionBindObservation {
  bool answered = false;
  /// The TXT payload, when the answer carried one.
  std::optional<std::string> txt;
  /// Rcode of the response (meaningful only when answered).
  dnswire::Rcode rcode = dnswire::Rcode::NOERROR;
  /// Table-3-style rendering ("unbound 1.9.0", "NOTIMP", "timeout").
  std::string display;

  [[nodiscard]] bool has_string() const { return answered && txt.has_value(); }
};

/// Step-2 report.
struct CpeCheckReport {
  VersionBindObservation cpe;  // query addressed to the CPE's public IP
  std::map<resolvers::PublicResolverKind, VersionBindObservation> resolver_answers;
  /// Intercepted resolvers whose version.bind string equals the CPE's.
  std::vector<resolvers::PublicResolverKind> matching;
  /// §3.2's conclusion: the CPE intercepts (true when the CPE responded with
  /// a string and every checked resolver returned the identical string).
  bool cpe_is_interceptor = false;
  /// Some comparison query collected conflicting accepted answers
  /// (ArbitrationEvidence): the string comparison rests on contested data
  /// and the pipeline must not turn it into a CPE/ISP attribution.
  bool contested = false;
};

class CpeLocalizer {
 public:
  struct Config {
    QueryOptions query;
    /// Family used for the comparison queries (interception is
    /// overwhelmingly v4; the CPE public IP is a v4 address).
    netbase::IpFamily family = netbase::IpFamily::v4;
    /// Seed for the transaction-ID stream (the pipeline derives this from
    /// the probe seed; the default only matters for direct stage calls).
    std::uint64_t id_seed = 0x2000;
  };

  CpeLocalizer() = default;
  explicit CpeLocalizer(Config config) : config_(config) {}

  /// `cpe_public_ip` is the WAN address of the home router; `suspects` are
  /// the resolvers step 1 found intercepted (primary addresses are queried).
  /// The CPE query and every suspect query go out as one batch.
  CpeCheckReport run(AsyncQueryTransport& engine, const netbase::IpAddress& cpe_public_ip,
                     const std::vector<resolvers::PublicResolverKind>& suspects,
                     bool* drained = nullptr);
  /// Sequential compatibility path over a plain transport.
  CpeCheckReport run(QueryTransport& transport, const netbase::IpAddress& cpe_public_ip,
                     const std::vector<resolvers::PublicResolverKind>& suspects);
  /// SimTransport serves both interfaces; prefer its (byte-identical)
  /// batched cascade.
  CpeCheckReport run(SimTransport& transport, const netbase::IpAddress& cpe_public_ip,
                     const std::vector<resolvers::PublicResolverKind>& suspects);

 private:
  static VersionBindObservation interpret(const QueryResult& result);

  Config config_;
};

}  // namespace dnslocate::core
