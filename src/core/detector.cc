#include "core/detector.h"

namespace dnslocate::core {

std::vector<resolvers::PublicResolverKind> DetectionReport::intercepted_kinds(
    netbase::IpFamily family) const {
  std::vector<resolvers::PublicResolverKind> kinds;
  for (const auto& r : per_resolver)
    if (r.intercepted(family)) kinds.push_back(r.kind);
  return kinds;
}

bool DetectionReport::all_four_intercepted(netbase::IpFamily family) const {
  for (const auto& r : per_resolver)
    if (!r.intercepted(family)) return false;
  return true;
}

DetectionReport InterceptionDetector::run(QueryTransport& transport) {
  DetectionReport report;

  for (resolvers::PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    auto& summary = report.per_resolver[static_cast<std::size_t>(kind)];
    summary.kind = kind;

    for (netbase::IpFamily family : {netbase::IpFamily::v4, netbase::IpFamily::v6}) {
      if (family == netbase::IpFamily::v6 && !config_.test_v6) continue;
      if (!transport.supports_family(family)) continue;

      bool tested = false;
      bool intercepted = false;
      bool any_answered = false;
      auto addrs = spec.service_addrs(family);
      std::size_t count = config_.use_secondary_addresses ? addrs.size() : 1;
      for (std::size_t i = 0; i < count; ++i) {
        LocationProbe probe;
        probe.kind = kind;
        probe.family = family;
        probe.server = netbase::Endpoint{addrs[i], netbase::kDnsPort};

        dnswire::Message query =
            dnswire::make_query(next_id_++, spec.location_query.name, spec.location_query.type,
                                spec.location_query.klass);
        probe.result = transport.query(probe.server, query, config_.query);
        probe.verdict = classify_location_response(kind, probe.result);
        probe.display = location_response_display(probe.result);

        tested = true;
        if (indicates_interception(probe.verdict)) intercepted = true;
        if (probe.result.answered()) any_answered = true;
        report.probes.push_back(std::move(probe));
      }

      if (family == netbase::IpFamily::v4) {
        summary.tested_v4 = tested;
        summary.intercepted_v4 = intercepted;
        summary.unreachable_v4 = tested && !any_answered;
      } else {
        summary.tested_v6 = tested;
        summary.intercepted_v6 = intercepted;
        summary.unreachable_v6 = tested && !any_answered;
      }
    }
  }
  return report;
}

}  // namespace dnslocate::core
