#include "core/detector.h"
#include "core/sim_transport.h"

namespace dnslocate::core {

std::vector<resolvers::PublicResolverKind> DetectionReport::intercepted_kinds(
    netbase::IpFamily family) const {
  std::vector<resolvers::PublicResolverKind> kinds;
  for (const auto& r : per_resolver)
    if (r.intercepted(family)) kinds.push_back(r.kind);
  return kinds;
}

bool DetectionReport::all_four_intercepted(netbase::IpFamily family) const {
  for (const auto& r : per_resolver)
    if (!r.intercepted(family)) return false;
  return true;
}

DetectionReport InterceptionDetector::run(AsyncQueryTransport& engine, bool* drained) {
  // Declarative plan: every (resolver, family, address) probe, in the fixed
  // order the sequential detector always used. IDs are drawn at build time,
  // so the set of datagrams is engine-independent.
  struct Planned {
    resolvers::PublicResolverKind kind{};
    netbase::IpFamily family{};
    netbase::Endpoint server;
  };
  QueryBatch batch;
  std::vector<Planned> plan;
  simnet::Rng ids(config_.id_seed);

  QueryTransport& transport = engine.transport();
  for (resolvers::PublicResolverKind kind : resolvers::all_public_resolvers()) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    for (netbase::IpFamily family : {netbase::IpFamily::v4, netbase::IpFamily::v6}) {
      if (family == netbase::IpFamily::v6 && !config_.test_v6) continue;
      if (!transport.supports_family(family)) continue;

      auto addrs = spec.service_addrs(family);
      std::size_t count = config_.use_secondary_addresses ? addrs.size() : 1;
      for (std::size_t i = 0; i < count; ++i) {
        netbase::Endpoint server{addrs[i], netbase::kDnsPort};
        dnswire::Message query =
            dnswire::make_query(random_query_id(ids), spec.location_query.name,
                                spec.location_query.type, spec.location_query.klass);
        batch.add(server, std::move(query), config_.query);
        plan.push_back(Planned{kind, family, server});
      }
    }
  }

  engine.run(batch);
  if (drained != nullptr) *drained = batch.drained();

  DetectionReport report;
  struct FamilyTally {
    bool tested = false;
    bool intercepted = false;
    bool any_answered = false;
    bool contested = false;
  };
  std::array<std::array<FamilyTally, 2>, 4> tally{};

  for (std::size_t k = 0; k < report.per_resolver.size(); ++k)
    report.per_resolver[k].kind = static_cast<resolvers::PublicResolverKind>(k);

  for (std::size_t i = 0; i < plan.size(); ++i) {
    const Planned& planned = plan[i];
    LocationProbe probe;
    probe.kind = planned.kind;
    probe.family = planned.family;
    probe.server = planned.server;
    probe.result = batch.result(i);
    probe.verdict = classify_location_response(planned.kind, probe.result);
    probe.display = location_response_display(probe.result);
    probe.contested = location_evidence_contested(planned.kind, probe.result);

    FamilyTally& t = tally[static_cast<std::size_t>(planned.kind)]
                          [planned.family == netbase::IpFamily::v4 ? 0 : 1];
    t.tested = true;
    // Contested is a parallel signal, not a filter: the first-accepted
    // answer still nominates suspects (a replicating interceptor also
    // conflicts with the genuine answer, and must stay localizable), and
    // the pipeline decides whether corroborating evidence survives or the
    // verdict degrades to `contested` (see pipeline.cc).
    if (probe.contested) t.contested = true;
    if (indicates_interception(probe.verdict)) t.intercepted = true;
    if (probe.result.answered()) t.any_answered = true;
    report.probes.push_back(std::move(probe));
  }

  for (std::size_t k = 0; k < report.per_resolver.size(); ++k) {
    auto& summary = report.per_resolver[k];
    const FamilyTally& v4 = tally[k][0];
    const FamilyTally& v6 = tally[k][1];
    summary.tested_v4 = v4.tested;
    summary.intercepted_v4 = v4.intercepted;
    summary.unreachable_v4 = v4.tested && !v4.any_answered;
    summary.tested_v6 = v6.tested;
    summary.intercepted_v6 = v6.intercepted;
    summary.unreachable_v6 = v6.tested && !v6.any_answered;
    summary.contested_v4 = v4.contested;
    summary.contested_v6 = v6.contested;
  }
  return report;
}

DetectionReport InterceptionDetector::run(QueryTransport& transport) {
  BlockingBatchAdapter adapter(transport);
  return run(adapter);
}

DetectionReport InterceptionDetector::run(SimTransport& transport) {
  return run(static_cast<AsyncQueryTransport&>(transport));
}

}  // namespace dnslocate::core
