// Transparency test (§4.1.2): an ordinary A query for a whoami-style domain
// to every intercepted resolver confirms interception (the egress in the
// answer is not the target's) and classifies the interceptor's behaviour
// (Figure 3: Transparent / Status Modified / Both).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/query_batch.h"
#include "core/transport.h"
#include "core/verdict.h"
#include "resolvers/public_resolver.h"

namespace dnslocate::core {

class SimTransport;

/// Per-resolver transparency observation.
enum class ResolverTransparency {
  transparent,      // valid answer, resolved correctly (by someone else)
  status_modified,  // deliberate DNS error status (SERVFAIL/NOTIMP/REFUSED...)
  answered_by_target,  // egress matches the target's ranges (not intercepted)
  timed_out,
};

std::string_view to_string(ResolverTransparency value);

struct TransparencyObservation {
  ResolverTransparency klass = ResolverTransparency::timed_out;
  std::string display;  // answer address or rcode
};

/// §4.1.2 report over the intercepted resolvers.
struct TransparencyReport {
  std::map<resolvers::PublicResolverKind, TransparencyObservation> per_resolver;
  TransparencyClass overall = TransparencyClass::indeterminate;
};

class TransparencyTester {
 public:
  struct Config {
    QueryOptions query;
    netbase::IpFamily family = netbase::IpFamily::v4;
    /// Seed for the transaction-ID stream (the pipeline derives this from
    /// the probe seed; the default only matters for direct stage calls).
    std::uint64_t id_seed = 0x4000;
  };

  TransparencyTester() = default;
  explicit TransparencyTester(Config config) : config_(config) {}

  /// One whoami query per intercepted resolver, fanned out as one batch.
  TransparencyReport run(AsyncQueryTransport& engine,
                         const std::vector<resolvers::PublicResolverKind>& intercepted,
                         bool* drained = nullptr);
  /// Sequential compatibility path over a plain transport.
  TransparencyReport run(QueryTransport& transport,
                         const std::vector<resolvers::PublicResolverKind>& intercepted);
  /// SimTransport serves both interfaces; prefer its (byte-identical)
  /// batched cascade.
  TransparencyReport run(SimTransport& transport,
                         const std::vector<resolvers::PublicResolverKind>& intercepted);

 private:
  Config config_;
};

}  // namespace dnslocate::core
