#include "core/cpe_localizer.h"

#include "dnswire/debug_queries.h"
#include "core/sim_transport.h"

namespace dnslocate::core {

VersionBindObservation CpeLocalizer::interpret(const QueryResult& result) {
  VersionBindObservation obs;
  if (!result.answered()) {
    obs.display = "timeout";
    return obs;
  }
  obs.answered = true;
  obs.rcode = result.response->rcode();
  if (obs.rcode == dnswire::Rcode::NOERROR) {
    obs.txt = result.response->first_txt();
    obs.display = obs.txt.value_or("(empty)");
  } else {
    obs.display = std::string(dnswire::to_string(obs.rcode));
  }
  return obs;
}

CpeCheckReport CpeLocalizer::run(AsyncQueryTransport& engine,
                                 const netbase::IpAddress& cpe_public_ip,
                                 const std::vector<resolvers::PublicResolverKind>& suspects,
                                 bool* drained) {
  // Slot 0: version.bind to the CPE's own public IP. "By usual IP routing
  // rules, this query cannot travel beyond the CPE..." (§3.2). Slots 1..N:
  // the same question to each intercepted resolver's primary address.
  QueryBatch batch;
  simnet::Rng ids(config_.id_seed);
  batch.add(netbase::Endpoint{cpe_public_ip, netbase::kDnsPort},
            dnswire::make_chaos_query(random_query_id(ids), dnswire::version_bind()),
            config_.query);
  for (resolvers::PublicResolverKind kind : suspects) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    auto addrs = spec.service_addrs(config_.family);
    batch.add(netbase::Endpoint{addrs[0], netbase::kDnsPort},
              dnswire::make_chaos_query(random_query_id(ids), dnswire::version_bind()),
              config_.query);
  }

  engine.run(batch);
  if (drained != nullptr) *drained = batch.drained();

  CpeCheckReport report;
  report.cpe = interpret(batch.result(0));
  report.contested = batch.result(0).contested();
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    resolvers::PublicResolverKind kind = suspects[i];
    report.contested = report.contested || batch.result(1 + i).contested();
    VersionBindObservation obs = interpret(batch.result(1 + i));
    bool matches = report.cpe.has_string() && obs.has_string() && *report.cpe.txt == *obs.txt;
    if (matches) report.matching.push_back(kind);
    report.resolver_answers.emplace(kind, std::move(obs));
  }

  // Appendix A: the comparison is meaningful only because version.bind
  // strings are high-entropy. We additionally require the CPE to have
  // produced a string at all (error rcodes carry no identity).
  report.cpe_is_interceptor =
      report.cpe.has_string() && !suspects.empty() && report.matching.size() == suspects.size();
  return report;
}

CpeCheckReport CpeLocalizer::run(QueryTransport& transport,
                                 const netbase::IpAddress& cpe_public_ip,
                                 const std::vector<resolvers::PublicResolverKind>& suspects) {
  BlockingBatchAdapter adapter(transport);
  return run(adapter, cpe_public_ip, suspects);
}

CpeCheckReport CpeLocalizer::run(SimTransport& transport,
                                 const netbase::IpAddress& cpe_public_ip,
                                 const std::vector<resolvers::PublicResolverKind>& suspects) {
  return run(static_cast<AsyncQueryTransport&>(transport), cpe_public_ip, suspects);
}

}  // namespace dnslocate::core
