#include "core/cpe_localizer.h"

#include "dnswire/debug_queries.h"

namespace dnslocate::core {

VersionBindObservation CpeLocalizer::observe(QueryTransport& transport,
                                             const netbase::Endpoint& server) {
  VersionBindObservation obs;
  dnswire::Message query = dnswire::make_chaos_query(next_id_++, dnswire::version_bind());
  QueryResult result = transport.query(server, query, config_.query);
  if (!result.answered()) {
    obs.display = "timeout";
    return obs;
  }
  obs.answered = true;
  obs.rcode = result.response->rcode();
  if (obs.rcode == dnswire::Rcode::NOERROR) {
    obs.txt = result.response->first_txt();
    obs.display = obs.txt.value_or("(empty)");
  } else {
    obs.display = std::string(dnswire::to_string(obs.rcode));
  }
  return obs;
}

CpeCheckReport CpeLocalizer::run(QueryTransport& transport,
                                 const netbase::IpAddress& cpe_public_ip,
                                 const std::vector<resolvers::PublicResolverKind>& suspects) {
  CpeCheckReport report;

  // "First, we issue a version.bind query to the CPE's own public IP
  // address. By usual IP routing rules, this query cannot travel beyond the
  // CPE..." (§3.2)
  report.cpe = observe(transport, netbase::Endpoint{cpe_public_ip, netbase::kDnsPort});

  for (resolvers::PublicResolverKind kind : suspects) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    auto addrs = spec.service_addrs(config_.family);
    VersionBindObservation obs =
        observe(transport, netbase::Endpoint{addrs[0], netbase::kDnsPort});
    bool matches = report.cpe.has_string() && obs.has_string() && *report.cpe.txt == *obs.txt;
    if (matches) report.matching.push_back(kind);
    report.resolver_answers.emplace(kind, std::move(obs));
  }

  // Appendix A: the comparison is meaningful only because version.bind
  // strings are high-entropy. We additionally require the CPE to have
  // produced a string at all (error rcodes carry no identity).
  report.cpe_is_interceptor =
      report.cpe.has_string() && !suspects.empty() && report.matching.size() == suspects.size();
  return report;
}

}  // namespace dnslocate::core
