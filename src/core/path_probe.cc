#include "core/path_probe.h"

#include "dnswire/debug_queries.h"

namespace dnslocate::core {

std::string PathHop::to_string() const {
  std::string out = std::to_string(ttl) + "  ";
  out += router ? router->to_string() : "*";
  if (dns_answered) out += "  [DNS response]";
  return out;
}

std::vector<netbase::IpAddress> PathReport::routers() const {
  std::vector<netbase::IpAddress> out;
  for (const auto& hop : hops)
    if (hop.router) out.push_back(*hop.router);
  return out;
}

std::string PathReport::to_string() const {
  std::string out = "path to " + target.to_string() + "\n";
  for (const auto& hop : hops) out += "  " + hop.to_string() + "\n";
  if (responder_hop)
    out += "responder at hop " + std::to_string(*responder_hop) + "\n";
  return out;
}

PathReport PathProber::trace(QueryTransport& transport, const netbase::Endpoint& target) {
  PathReport report;
  report.target = target;
  if (!transport.supports_ttl()) return report;

  for (std::uint8_t ttl = 1; ttl <= config_.max_ttl; ++ttl) {
    QueryOptions options = config_.query;
    options.ttl = ttl;
    dnswire::Message query = dnswire::make_chaos_query(next_id_++, dnswire::version_bind());
    QueryResult result = transport.query(target, query, options);

    PathHop hop;
    hop.ttl = ttl;
    hop.router = result.icmp_from;
    hop.dns_answered = result.answered();
    report.hops.push_back(hop);

    if (result.answered()) {
      if (!report.responder_hop) report.responder_hop = ttl;
      if (config_.stop_at_responder) break;
    }
  }
  return report;
}

}  // namespace dnslocate::core
