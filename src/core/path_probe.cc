#include "core/path_probe.h"

#include "core/sim_transport.h"
#include "dnswire/debug_queries.h"

namespace dnslocate::core {

std::string PathHop::to_string() const {
  std::string out = std::to_string(ttl) + "  ";
  out += router ? router->to_string() : "*";
  if (dns_answered) out += "  [DNS response]";
  return out;
}

std::vector<netbase::IpAddress> PathReport::routers() const {
  std::vector<netbase::IpAddress> out;
  for (const auto& hop : hops)
    if (hop.router) out.push_back(*hop.router);
  return out;
}

std::string PathReport::to_string() const {
  std::string out = "path to " + target.to_string() + "\n";
  for (const auto& hop : hops) out += "  " + hop.to_string() + "\n";
  if (responder_hop)
    out += "responder at hop " + std::to_string(*responder_hop) + "\n";
  return out;
}

PathReport PathProber::trace(AsyncQueryTransport& engine, const netbase::Endpoint& target,
                             bool* drained) {
  PathReport report;
  report.target = target;
  if (drained != nullptr) *drained = false;
  if (!engine.transport().supports_ttl()) return report;

  // The whole TTL ladder goes into one declarative batch — the plan cannot
  // depend on results that don't exist yet, so stop_at_responder moves from
  // the send loop to the interpretation below: hops past the first DNS
  // answer are measured but left out of the report, exactly as if the
  // sequential loop had stopped there.
  QueryBatch batch;
  for (std::uint8_t ttl = 1; ttl <= config_.max_ttl; ++ttl) {
    QueryOptions options = config_.query;
    options.ttl = ttl;
    batch.add(target, dnswire::make_chaos_query(next_id_++, dnswire::version_bind()), options);
  }

  engine.run(batch);
  if (drained != nullptr) *drained = batch.drained();

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QueryResult& result = batch.result(i);
    PathHop hop;
    hop.ttl = static_cast<std::uint8_t>(i + 1);
    hop.router = result.icmp_from;
    hop.dns_answered = result.answered();
    report.hops.push_back(hop);

    if (result.answered()) {
      if (!report.responder_hop) report.responder_hop = hop.ttl;
      if (config_.stop_at_responder) break;
    }
  }
  return report;
}

PathReport PathProber::trace(QueryTransport& transport, const netbase::Endpoint& target) {
  BlockingBatchAdapter adapter(transport);
  return trace(adapter, target);
}

PathReport PathProber::trace(SimTransport& transport, const netbase::Endpoint& target) {
  return trace(static_cast<AsyncQueryTransport&>(transport), target);
}

}  // namespace dnslocate::core
