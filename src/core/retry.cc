#include "core/retry.h"

namespace dnslocate::core {

std::chrono::milliseconds RetryPolicy::backoff_before(unsigned attempt) const {
  if (attempt <= 1) return std::chrono::milliseconds(0);
  double scale = 1.0;
  for (unsigned i = 2; i < attempt; ++i) scale *= backoff_multiplier;
  auto backoff = std::chrono::milliseconds(
      static_cast<std::chrono::milliseconds::rep>(static_cast<double>(initial_backoff.count()) *
                                                  scale));
  return backoff < max_backoff ? backoff : max_backoff;
}

RetryPolicy RetryPolicy::standard(unsigned attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  return policy;
}

void rerandomize_query(dnswire::Message& message, const RetryPolicy& policy,
                       simnet::Rng& rng) {
  if (policy.fresh_id_per_attempt)
    message.id = static_cast<std::uint16_t>(rng.next_u64() & 0xffff);
  if (policy.rerandomize_0x20 && !message.questions.empty()) {
    // Re-roll the 0x20 case bits of the question name. A response echoing a
    // *previous* attempt's pattern still matches (the acceptance check is
    // case-insensitive), but a 0x20-validating caller comparing patterns
    // must compare against this attempt's name.
    std::string cased = message.questions.front().name.to_string();
    for (char& c : cased) {
      if (c >= 'a' && c <= 'z') {
        if (rng.bernoulli(0.5)) c = static_cast<char>(c - 'a' + 'A');
      } else if (c >= 'A' && c <= 'Z') {
        if (rng.bernoulli(0.5)) c = static_cast<char>(c - 'A' + 'a');
      }
    }
    if (auto name = dnswire::DnsName::parse(cased))
      message.questions.front().name = *name;
  }
}

}  // namespace dnslocate::core
