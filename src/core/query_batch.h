// Batched asynchronous query execution.
//
// Every pipeline stage describes its measurement as a *query set* — a
// QueryBatch of (server, message, options) triples built up front — and an
// engine executes the whole set, collecting results as they complete. The
// stage then interprets results by index, never by arrival order, so the
// same declarative plan produces the same report whether the engine ran the
// queries one at a time (BlockingBatchAdapter over any QueryTransport) or
// kept them all in flight at once (sockets::UdpEngine over a shared socket
// pair). That separation is what turns a probe's wall clock from the *sum*
// of its query timeouts into the *max* on real networks, while the simulated
// path stays byte-identical to the historical sequential loops (see
// docs/ARCHITECTURE.md, "Query engine").
#pragma once

#include <cstdint>
#include <vector>

#include "core/transport.h"
#include "simnet/rng.h"

namespace dnslocate::core {

/// Fresh 16-bit transaction ID from a seeded stream. Stage builders draw
/// every ID from a per-stage `simnet::Rng` at batch-build time, so IDs are
/// unpredictable to an off-path spoofer (the paper's hard-to-spoof
/// requirement) yet replay bit-identically from the probe seed — and, being
/// fixed before execution, are identical under every engine.
[[nodiscard]] inline std::uint16_t random_query_id(simnet::Rng& rng) {
  return static_cast<std::uint16_t>(rng.next_u64() & 0xffff);
}

/// One query of a batch: everything needed to send it, fixed at build time.
/// Transaction IDs (and any 0x20 case pattern) are already in `message`, so
/// two engines executing the same batch put identical datagrams on the wire.
struct QuerySpec {
  netbase::Endpoint server;
  dnswire::Message message;
  QueryOptions options;
};

/// A set of queries submitted together, with a result slot per query.
/// Results are correlated by index — arrival order is an engine detail.
class QueryBatch {
 public:
  /// Append a query; returns its index (the slot its result lands in).
  std::size_t add(const netbase::Endpoint& server, dnswire::Message message,
                  const QueryOptions& options = {}) {
    specs_.push_back(QuerySpec{server, std::move(message), options});
    results_.emplace_back();
    return specs_.size() - 1;
  }

  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] bool empty() const { return specs_.empty(); }

  [[nodiscard]] const QuerySpec& spec(std::size_t index) const { return specs_[index]; }
  [[nodiscard]] const std::vector<QuerySpec>& specs() const { return specs_; }

  [[nodiscard]] QueryResult& result(std::size_t index) { return results_[index]; }
  [[nodiscard]] const QueryResult& result(std::size_t index) const { return results_[index]; }

  /// Engines set this when cancellation cut the batch short: some queries
  /// were abandoned in flight (reported as timeouts) or never sent at all.
  /// A drained batch is honest about what it observed but incomplete — the
  /// pipeline marks the owning stage skipped and claims nothing from it
  /// beyond what completed queries actually showed.
  void mark_drained() { drained_ = true; }
  [[nodiscard]] bool drained() const { return drained_; }

 private:
  std::vector<QuerySpec> specs_;
  std::vector<QueryResult> results_;
  bool drained_ = false;
};

/// An engine that can execute a whole QueryBatch. Implementations are free
/// to overlap queries arbitrarily; they must fill every result slot before
/// returning and record per-query telemetry on their underlying transport.
class AsyncQueryTransport {
 public:
  virtual ~AsyncQueryTransport() = default;

  /// Execute every query in `batch`, filling `batch.result(i)` for all i.
  virtual void run(QueryBatch& batch) = 0;

  /// The synchronous transport behind this engine — the seam for capability
  /// checks (supports_family, supports_channel) and cumulative telemetry.
  [[nodiscard]] virtual QueryTransport& transport() = 0;
};

/// Compatibility adapter: runs a batch one query at a time, in submission
/// order, over any QueryTransport. This is *exactly* the historical
/// sequential loop — same queries, same order, same transport calls — so
/// wrapped transports (MappedTransport, test doubles, SimTransport) behave
/// byte-identically to the pre-batch pipeline. It never marks the batch
/// drained: per-query cancellation semantics are the inner transport's, as
/// they always were.
class BlockingBatchAdapter final : public AsyncQueryTransport {
 public:
  explicit BlockingBatchAdapter(QueryTransport& inner) : inner_(inner) {}

  void run(QueryBatch& batch) override;

  [[nodiscard]] QueryTransport& transport() override { return inner_; }

 private:
  QueryTransport& inner_;
};

/// Mirror one executed batch onto the metrics registry: run count, size and
/// latency distributions, drain count, and the high-water in-flight gauge.
/// Engines call this once per run(); latency is read off the thread's obs
/// clock, so simulated batches record simulated nanoseconds.
void note_batch_metrics(std::size_t queries, std::uint64_t latency_ns, std::size_t max_inflight,
                        bool drained);

}  // namespace dnslocate::core
