#include "core/transparency.h"

#include "resolvers/special_names.h"

namespace dnslocate::core {

std::string_view to_string(ResolverTransparency value) {
  switch (value) {
    case ResolverTransparency::transparent: return "transparent";
    case ResolverTransparency::status_modified: return "status modified";
    case ResolverTransparency::answered_by_target: return "answered by target";
    case ResolverTransparency::timed_out: return "timeout";
  }
  return "?";
}

TransparencyReport TransparencyTester::run(
    QueryTransport& transport, const std::vector<resolvers::PublicResolverKind>& intercepted) {
  TransparencyReport report;
  bool any_transparent = false;
  bool any_modified = false;

  for (resolvers::PublicResolverKind kind : intercepted) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    auto addrs = spec.service_addrs(config_.family);
    netbase::Endpoint server{addrs[0], netbase::kDnsPort};

    dnswire::RecordType qtype = config_.family == netbase::IpFamily::v4
                                    ? dnswire::RecordType::A
                                    : dnswire::RecordType::AAAA;
    dnswire::Message query =
        dnswire::make_query(next_id_++, resolvers::whoami_akamai(), qtype);
    QueryResult result = transport.query(server, query, config_.query);

    TransparencyObservation obs;
    if (!result.answered()) {
      obs.klass = ResolverTransparency::timed_out;
      obs.display = "timeout";
    } else if (result.response->rcode() != dnswire::Rcode::NOERROR) {
      obs.klass = ResolverTransparency::status_modified;
      obs.display = std::string(dnswire::to_string(result.response->rcode()));
      any_modified = true;
    } else if (auto addr = result.response->first_address()) {
      obs.display = addr->to_string();
      bool in_target_egress = false;
      for (const auto& prefix : spec.egress_prefixes)
        if (prefix.contains(*addr)) in_target_egress = true;
      // (a) interception confirmed when the answering egress is not the
      // target's; (b) transparent because the answer is a valid resolution.
      obs.klass = in_target_egress ? ResolverTransparency::answered_by_target
                                   : ResolverTransparency::transparent;
      if (!in_target_egress) any_transparent = true;
    } else {
      obs.klass = ResolverTransparency::status_modified;  // NOERROR but empty
      obs.display = "(empty)";
      any_modified = true;
    }
    report.per_resolver.emplace(kind, std::move(obs));
  }

  if (any_transparent && any_modified)
    report.overall = TransparencyClass::both;
  else if (any_transparent)
    report.overall = TransparencyClass::transparent;
  else if (any_modified)
    report.overall = TransparencyClass::status_modified;
  else
    report.overall = TransparencyClass::indeterminate;
  return report;
}

}  // namespace dnslocate::core
