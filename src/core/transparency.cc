#include "core/transparency.h"

#include "resolvers/special_names.h"
#include "core/sim_transport.h"

namespace dnslocate::core {

std::string_view to_string(ResolverTransparency value) {
  switch (value) {
    case ResolverTransparency::transparent: return "transparent";
    case ResolverTransparency::status_modified: return "status modified";
    case ResolverTransparency::answered_by_target: return "answered by target";
    case ResolverTransparency::timed_out: return "timeout";
  }
  return "?";
}

TransparencyReport TransparencyTester::run(
    AsyncQueryTransport& engine, const std::vector<resolvers::PublicResolverKind>& intercepted,
    bool* drained) {
  QueryBatch batch;
  simnet::Rng ids(config_.id_seed);
  dnswire::RecordType qtype = config_.family == netbase::IpFamily::v4
                                  ? dnswire::RecordType::A
                                  : dnswire::RecordType::AAAA;
  for (resolvers::PublicResolverKind kind : intercepted) {
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    auto addrs = spec.service_addrs(config_.family);
    batch.add(netbase::Endpoint{addrs[0], netbase::kDnsPort},
              dnswire::make_query(random_query_id(ids), resolvers::whoami_akamai(), qtype),
              config_.query);
  }

  engine.run(batch);
  if (drained != nullptr) *drained = batch.drained();

  TransparencyReport report;
  bool any_transparent = false;
  bool any_modified = false;

  for (std::size_t i = 0; i < intercepted.size(); ++i) {
    resolvers::PublicResolverKind kind = intercepted[i];
    const auto& spec = resolvers::PublicResolverSpec::get(kind);
    const QueryResult& result = batch.result(i);

    TransparencyObservation obs;
    if (!result.answered()) {
      obs.klass = ResolverTransparency::timed_out;
      obs.display = "timeout";
    } else if (result.response->rcode() != dnswire::Rcode::NOERROR) {
      obs.klass = ResolverTransparency::status_modified;
      obs.display = std::string(dnswire::to_string(result.response->rcode()));
      any_modified = true;
    } else if (auto addr = result.response->first_address()) {
      obs.display = addr->to_string();
      bool in_target_egress = false;
      for (const auto& prefix : spec.egress_prefixes)
        if (prefix.contains(*addr)) in_target_egress = true;
      // (a) interception confirmed when the answering egress is not the
      // target's; (b) transparent because the answer is a valid resolution.
      obs.klass = in_target_egress ? ResolverTransparency::answered_by_target
                                   : ResolverTransparency::transparent;
      if (!in_target_egress) any_transparent = true;
    } else {
      obs.klass = ResolverTransparency::status_modified;  // NOERROR but empty
      obs.display = "(empty)";
      any_modified = true;
    }
    report.per_resolver.emplace(kind, std::move(obs));
  }

  if (any_transparent && any_modified)
    report.overall = TransparencyClass::both;
  else if (any_transparent)
    report.overall = TransparencyClass::transparent;
  else if (any_modified)
    report.overall = TransparencyClass::status_modified;
  else
    report.overall = TransparencyClass::indeterminate;
  return report;
}

TransparencyReport TransparencyTester::run(
    QueryTransport& transport, const std::vector<resolvers::PublicResolverKind>& intercepted) {
  BlockingBatchAdapter adapter(transport);
  return run(adapter, intercepted);
}

TransparencyReport TransparencyTester::run(
    SimTransport& transport, const std::vector<resolvers::PublicResolverKind>& intercepted) {
  return run(static_cast<AsyncQueryTransport&>(transport), intercepted);
}

}  // namespace dnslocate::core
