// Top-level verdicts produced by the localization pipeline.
#pragma once

#include <cstddef>
#include <string_view>

namespace dnslocate::core {

/// Where the interceptor sits (Figure 4's categories).
enum class InterceptorLocation {
  not_intercepted,
  cpe,        // §3.2: the home router itself
  isp,        // §3.3: inside the client's AS
  unknown,    // intercepted, but beyond what bogon probing can prove
  contested,  // conflicting answers raced each other: something tampered,
              // but the evidence disagrees with itself and no location may
              // honestly be claimed (spoofing / replication in path)
};

inline constexpr std::size_t kInterceptorLocationCount = 5;

std::string_view to_string(InterceptorLocation location);

/// Figure 3's per-probe transparency categories.
enum class TransparencyClass {
  transparent,      // all intercepted resolvers resolved our query correctly
  status_modified,  // all intercepted resolvers returned DNS error statuses
  both,             // a mix
  indeterminate,    // no usable whoami responses
};

std::string_view to_string(TransparencyClass klass);

}  // namespace dnslocate::core
