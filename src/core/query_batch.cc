#include "core/query_batch.h"

#include "obs/metrics.h"
#include "obs/span.h"

namespace dnslocate::core {

void BlockingBatchAdapter::run(QueryBatch& batch) {
  obs::Span span("batch/blocking_run");
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const QuerySpec& spec = batch.spec(i);
    batch.result(i) = inner_.query(spec.server, spec.message, spec.options);
  }
  note_batch_metrics(batch.size(), 0, batch.empty() ? 0 : 1, batch.drained());
}

void note_batch_metrics(std::size_t queries, std::uint64_t latency_ns, std::size_t max_inflight,
                        bool drained) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& runs = obs::registry().counter("batch_runs_total");
  static obs::Counter& total_queries = obs::registry().counter("batch_queries_total");
  static obs::Counter& drains = obs::registry().counter("batch_drained_total");
  static obs::Histogram& size_hist = obs::registry().histogram("batch_size_queries");
  static obs::Histogram& latency_hist = obs::registry().histogram("batch_latency_us");
  static obs::Gauge& inflight_peak = obs::registry().gauge("batch_inflight_peak_queries");
  runs.add_always(1);
  total_queries.add_always(queries);
  if (drained) drains.add_always(1);
  size_hist.record_always(queries);
  if (latency_ns != 0) latency_hist.record_always(latency_ns / 1000);
  if (static_cast<std::int64_t>(max_inflight) > inflight_peak.value()) {
    inflight_peak.set(static_cast<std::int64_t>(max_inflight));
  }
}

}  // namespace dnslocate::core
