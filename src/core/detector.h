// Step 1 (§3.1): detect interception with location queries to the four
// public resolvers, on primary and secondary addresses, over IPv4 and IPv6.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/classify.h"
#include "core/query_batch.h"
#include "core/transport.h"

namespace dnslocate::core {

class SimTransport;

/// One location-query observation.
struct LocationProbe {
  resolvers::PublicResolverKind kind{};
  netbase::IpFamily family{};
  netbase::Endpoint server;
  QueryResult result;
  LocationVerdict verdict = LocationVerdict::timed_out;
  std::string display;  // Table-2-style rendering
  /// Conflicting answers were collected and they disagree on interception
  /// (see classify.h location_evidence_contested). The first-accepted
  /// answer still drives `verdict` — a replicating interceptor also
  /// conflicts with the genuine answer and must stay localizable — but the
  /// pipeline refuses to output a location that rests *only* on contested
  /// evidence (core/pipeline.cc).
  bool contested = false;
};

/// Per-resolver interception summary.
struct ResolverInterception {
  resolvers::PublicResolverKind kind{};
  bool tested_v4 = false;
  bool tested_v6 = false;
  bool intercepted_v4 = false;
  bool intercepted_v6 = false;
  /// Every probe of that family timed out — resolver unreachable, which the
  /// technique conservatively does not count as interception.
  bool unreachable_v4 = false;
  bool unreachable_v6 = false;
  /// Some probe of that family was contested (conflicting answers that
  /// disagree on interception): its detection evidence needs corroboration
  /// before it can support a localization claim.
  bool contested_v4 = false;
  bool contested_v6 = false;

  [[nodiscard]] bool intercepted(netbase::IpFamily family) const {
    return family == netbase::IpFamily::v4 ? intercepted_v4 : intercepted_v6;
  }
  [[nodiscard]] bool contested(netbase::IpFamily family) const {
    return family == netbase::IpFamily::v4 ? contested_v4 : contested_v6;
  }
};

/// Full step-1 report.
struct DetectionReport {
  std::vector<LocationProbe> probes;
  std::array<ResolverInterception, 4> per_resolver{};

  [[nodiscard]] const ResolverInterception& of(resolvers::PublicResolverKind kind) const {
    return per_resolver[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] bool any_intercepted(netbase::IpFamily family) const {
    for (const auto& r : per_resolver)
      if (r.intercepted(family)) return true;
    return false;
  }
  [[nodiscard]] bool any_intercepted() const {
    return any_intercepted(netbase::IpFamily::v4) || any_intercepted(netbase::IpFamily::v6);
  }
  [[nodiscard]] bool any_contested(netbase::IpFamily family) const {
    for (const auto& r : per_resolver)
      if (r.contested(family)) return true;
    return false;
  }
  [[nodiscard]] bool any_contested() const {
    return any_contested(netbase::IpFamily::v4) || any_contested(netbase::IpFamily::v6);
  }
  /// Resolvers flagged as intercepted in the given family.
  [[nodiscard]] std::vector<resolvers::PublicResolverKind> intercepted_kinds(
      netbase::IpFamily family) const;
  /// True if all four resolvers were intercepted (the majority pattern
  /// in Table 4's "All Intercepted" row).
  [[nodiscard]] bool all_four_intercepted(netbase::IpFamily family) const;
};

class InterceptionDetector {
 public:
  struct Config {
    bool test_v6 = true;
    /// Also probe the secondary service addresses (1.0.0.1, 8.8.4.4, ...).
    bool use_secondary_addresses = true;
    QueryOptions query;
    /// Seed for the transaction-ID stream (the pipeline derives this from
    /// the probe seed; the default only matters for direct stage calls).
    std::uint64_t id_seed = 0x1000;
  };

  InterceptionDetector() = default;
  explicit InterceptionDetector(Config config) : config_(config) {}

  /// Build the full detection query set (4 resolvers × families × addresses),
  /// fan it out on `engine`, and interpret the results by index. When the
  /// engine drained the batch (cancellation mid-flight), `*drained` is set so
  /// the caller can mark the stage skipped instead of trusting the report.
  DetectionReport run(AsyncQueryTransport& engine, bool* drained = nullptr);
  /// Sequential compatibility path over a plain transport.
  DetectionReport run(QueryTransport& transport);
  /// SimTransport serves both interfaces; prefer its (byte-identical)
  /// batched cascade.
  DetectionReport run(SimTransport& transport);

 private:
  Config config_;
};

}  // namespace dnslocate::core
