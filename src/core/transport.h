// QueryTransport: the single seam between the localization technique and
// the network it measures. The same pipeline runs over the simulator
// (core/sim_transport.h) and over real POSIX sockets (sockets/udp_transport.h)
// — matching the paper's claim that the technique "can be implemented on any
// device that can make DNS queries".
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/cancellation.h"
#include "core/retry.h"
#include "dnswire/message.h"
#include "netbase/endpoint.h"
#include "obs/metrics.h"
#include "simnet/packet.h"

namespace dnslocate::core {

/// Per-query knobs.
struct QueryOptions {
  std::chrono::milliseconds timeout{3000};
  /// IP TTL / hop limit override — used by the TTL-probing extension (§6
  /// future work). Transports that cannot set it report so via
  /// supports_ttl().
  std::optional<std::uint8_t> ttl;
  /// Transport channel. DoT channels model RFC 7858's strict and
  /// opportunistic privacy profiles; check supports_channel() first.
  simnet::Channel channel = simnet::Channel::udp;
  /// Retransmission policy. Defaults to single-shot: the technique treats
  /// timeouts as signal, so retries are an explicit opt-in.
  RetryPolicy retry;
  /// Cooperative cancellation: socket transports bound their waits (poll
  /// horizons, retry backoffs) by this token so a supervised probe can be
  /// stopped mid-query. Cancellation reports the query as timed out — it
  /// never fabricates an answer. The inert default never cancels.
  CancelToken cancel;
};

/// Per-query answer-arbitration evidence. The transports do not merely take
/// the first RFC 5452-valid response: they keep collecting for the rest of
/// the duplicate window and record everything that did not match the
/// accepted answer, so the classifier can tell a clean path from one where
/// an on-path injector raced the genuine resolver (Whac-A-Mole,
/// arXiv 2011.12978).
struct ArbitrationEvidence {
  /// Datagrams on the query's flow that decoded but failed RFC 5452
  /// acceptance (wrong ID, unechoed question, ...) or arrived from an
  /// endpoint other than the queried server: off-path injection attempts.
  std::uint64_t spoof_suspected = 0;
  /// Datagrams on the query's flow that did not decode as DNS at all.
  std::uint64_t malformed = 0;
  /// Accepted responses that semantically disagree with the first accepted
  /// answer (see core::responses_conflict in core/exchange.h): the probe's
  /// evidence is contested.
  std::uint64_t conflicts = 0;
  /// Accepted responses whose echoed question differed from the sent one
  /// byte-for-byte. RFC 5452 compares names case-insensitively, so these
  /// are accepted — but a mismatch means something in path re-wrote the
  /// 0x20 casing (a DPI ambiguity worth fingerprinting).
  std::uint64_t case_mismatches = 0;

  [[nodiscard]] bool contested() const { return conflicts > 0; }

  ArbitrationEvidence& operator+=(const ArbitrationEvidence& other) {
    spoof_suspected += other.spoof_suspected;
    malformed += other.malformed;
    conflicts += other.conflicts;
    case_mismatches += other.case_mismatches;
    return *this;
  }
};

/// Outcome of one query.
struct QueryResult {
  enum class Status { answered, timed_out };
  Status status = Status::timed_out;

  /// First response accepted (the one a stub resolver would use).
  std::optional<dnswire::Message> response;
  /// Every response observed before the timeout fired — more than one means
  /// query replication (§3.1).
  std::vector<dnswire::Message> all_responses;
  /// Time to the first response (meaningless for timeouts).
  std::chrono::microseconds rtt{0};
  /// Router that reported ICMP Time Exceeded for this query, if any —
  /// the raw material of traceroute-style interceptor localization.
  std::optional<netbase::IpAddress> icmp_from;
  /// How many attempts this query took and how many timed out.
  RetryTelemetry retry;
  /// What else arrived on this query's flow besides the accepted answer.
  ArbitrationEvidence arbitration;

  [[nodiscard]] bool answered() const { return status == Status::answered; }
  [[nodiscard]] bool replicated() const { return all_responses.size() > 1; }
  [[nodiscard]] bool contested() const { return arbitration.contested(); }
};

/// Running tally of transport activity, kept by every QueryTransport. The
/// pipeline snapshots it around a run to surface retry/timeout counts in
/// the probe verdict; the report layer aggregates them fleet-wide.
struct TransportTelemetry {
  std::uint64_t queries = 0;    // query() calls
  std::uint64_t attempts = 0;   // datagrams sent (>= queries with retries)
  std::uint64_t retries = 0;    // attempts beyond each query's first
  std::uint64_t timeouts = 0;   // attempts that ended in silence
  std::uint64_t answered = 0;   // queries that got an acceptable response
  // Arbitration tallies (see ArbitrationEvidence for semantics).
  std::uint64_t spoof_suspected = 0;  // rejected or wrong-source datagrams
  std::uint64_t malformed = 0;        // undecodable datagrams on query flows
  std::uint64_t conflicts = 0;        // accepted answers disagreeing
  std::uint64_t case_mismatches = 0;  // accepted answers with re-cased qname
  /// Responses that matched a transaction which had already completed or
  /// been cancelled: dropped, but counted so arbitration evidence is exact.
  std::uint64_t late_duplicates = 0;

  void note(const QueryResult& result) {
    ++queries;
    attempts += result.retry.attempts;
    retries += result.retry.retries();
    timeouts += result.retry.timeouts;
    if (result.answered()) ++answered;
    spoof_suspected += result.arbitration.spoof_suspected;
    malformed += result.arbitration.malformed;
    conflicts += result.arbitration.conflicts;
    case_mismatches += result.arbitration.case_mismatches;
  }

  TransportTelemetry& operator+=(const TransportTelemetry& other) {
    queries += other.queries;
    attempts += other.attempts;
    retries += other.retries;
    timeouts += other.timeouts;
    answered += other.answered;
    spoof_suspected += other.spoof_suspected;
    malformed += other.malformed;
    conflicts += other.conflicts;
    case_mismatches += other.case_mismatches;
    late_duplicates += other.late_duplicates;
    return *this;
  }

  friend TransportTelemetry operator-(TransportTelemetry a, const TransportTelemetry& b) {
    a.queries -= b.queries;
    a.attempts -= b.attempts;
    a.retries -= b.retries;
    a.timeouts -= b.timeouts;
    a.answered -= b.answered;
    a.spoof_suspected -= b.spoof_suspected;
    a.malformed -= b.malformed;
    a.conflicts -= b.conflicts;
    a.case_mismatches -= b.case_mismatches;
    a.late_duplicates -= b.late_duplicates;
    return a;
  }
};

/// Mirror one completed query onto the process-wide metrics registry. This
/// is the single seam every transport's record_telemetry passes through, so
/// the registry's transport_* totals agree exactly with the summed
/// TransportTelemetry structs the report layer aggregates. The RTT
/// histogram inherits the transport's clock: simulated time under
/// SimTransport, wall time under real sockets (see obs/clock.h).
inline void note_transport_metrics(const QueryResult& result) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& queries = obs::registry().counter("transport_queries_total");
  static obs::Counter& attempts = obs::registry().counter("transport_attempts_total");
  static obs::Counter& retries = obs::registry().counter("transport_retries_total");
  static obs::Counter& timeouts = obs::registry().counter("transport_timeouts_total");
  static obs::Counter& answered = obs::registry().counter("transport_answered_total");
  static obs::Histogram& rtt_us = obs::registry().histogram("transport_rtt_us");
  static obs::Counter& spoofs = obs::registry().counter("transport_spoof_suspected_total");
  static obs::Counter& malformed = obs::registry().counter("transport_malformed_total");
  static obs::Counter& conflicts = obs::registry().counter("transport_conflicts_total");
  static obs::Counter& recased = obs::registry().counter("transport_case_mismatches_total");
  queries.add_always(1);
  attempts.add_always(result.retry.attempts);
  retries.add_always(result.retry.retries());
  timeouts.add_always(result.retry.timeouts);
  if (result.answered()) {
    answered.add_always(1);
    rtt_us.record_always(static_cast<std::uint64_t>(result.rtt.count()));
  }
  if (result.arbitration.spoof_suspected != 0) spoofs.add_always(result.arbitration.spoof_suspected);
  if (result.arbitration.malformed != 0) malformed.add_always(result.arbitration.malformed);
  if (result.arbitration.conflicts != 0) conflicts.add_always(result.arbitration.conflicts);
  if (result.arbitration.case_mismatches != 0)
    recased.add_always(result.arbitration.case_mismatches);
}

/// Mirror one dropped late/spoofed datagram (a response for a transaction
/// that already completed or was cancelled) onto the metrics registry.
inline void note_late_duplicate_metric() {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& late = obs::registry().counter("transport_late_duplicates_total");
  late.add_always(1);
}

/// Synchronous DNS query interface.
class QueryTransport {
 public:
  virtual ~QueryTransport() = default;

  /// Send `query` to `server` and wait for a response or timeout.
  virtual QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                            const QueryOptions& options = {}) = 0;

  /// Cumulative telemetry since construction (or reset_telemetry()).
  /// Implementations record each completed query via record_telemetry().
  [[nodiscard]] const TransportTelemetry& telemetry() const { return telemetry_; }
  void reset_telemetry() { telemetry_ = TransportTelemetry{}; }

  /// Whether this transport can reach the given family at all.
  [[nodiscard]] virtual bool supports_family(netbase::IpFamily family) const = 0;

  /// Whether QueryOptions::ttl is honoured.
  [[nodiscard]] virtual bool supports_ttl() const { return false; }

  /// Whether the given channel can be used. Plain UDP is universal; DoT is
  /// currently offered by the simulated transport only.
  [[nodiscard]] virtual bool supports_channel(simnet::Channel channel) const {
    return channel == simnet::Channel::udp;
  }

 protected:
  void record_telemetry(const QueryResult& result) {
    telemetry_.note(result);
    note_transport_metrics(result);
  }

  /// Count a response that arrived for an already-finished transaction.
  /// Not tied to a QueryResult: the result was recorded when the
  /// transaction completed, so late arrivals are tallied transport-wide.
  void record_late_duplicate() {
    ++telemetry_.late_duplicates;
    note_late_duplicate_metric();
  }

 private:
  TransportTelemetry telemetry_;
};

}  // namespace dnslocate::core
