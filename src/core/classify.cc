#include "core/classify.h"

namespace dnslocate::core {
namespace {

bool all_digits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text)
    if (c < '0' || c > '9') return false;
  return true;
}

/// Splits "a.b.c" on dots without allocation.
std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

}  // namespace

std::string_view to_string(LocationVerdict verdict) {
  switch (verdict) {
    case LocationVerdict::standard: return "standard";
    case LocationVerdict::nonstandard: return "nonstandard";
    case LocationVerdict::error_status: return "error_status";
    case LocationVerdict::timed_out: return "timeout";
  }
  return "?";
}

bool is_cloudflare_standard(std::string_view txt) {
  if (txt.size() != 3) return false;
  for (char c : txt)
    if (c < 'A' || c > 'Z') return false;
  return resolvers::is_known_site(txt);
}

bool is_google_standard(std::string_view txt) {
  auto addr = netbase::IpAddress::parse(txt);
  if (!addr) return false;
  const auto& spec = resolvers::PublicResolverSpec::get(resolvers::PublicResolverKind::google);
  for (const auto& prefix : spec.egress_prefixes)
    if (prefix.contains(*addr)) return true;
  return false;
}

bool is_quad9_standard(std::string_view txt) {
  // res<NN>.<iata>.rrdns.pch.net
  auto parts = split(txt, '.');
  if (parts.size() != 5) return false;
  if (parts[0].substr(0, 3) != "res" || !all_digits(parts[0].substr(3))) return false;
  if (!resolvers::is_known_site(parts[1])) return false;
  return parts[2] == "rrdns" && parts[3] == "pch" && parts[4] == "net";
}

bool is_opendns_standard(std::string_view txt) {
  // server m<NN>.<iata>
  constexpr std::string_view kPrefix = "server m";
  if (txt.substr(0, kPrefix.size()) != kPrefix) return false;
  auto rest = txt.substr(kPrefix.size());
  auto parts = split(rest, '.');
  if (parts.size() != 2) return false;
  return all_digits(parts[0]) && resolvers::is_known_site(parts[1]);
}

LocationVerdict classify_location_response(resolvers::PublicResolverKind kind,
                                           const QueryResult& result) {
  if (!result.answered()) return LocationVerdict::timed_out;
  return classify_location_message(kind, *result.response);
}

LocationVerdict classify_location_message(resolvers::PublicResolverKind kind,
                                          const dnswire::Message& response) {
  if (response.rcode() != dnswire::Rcode::NOERROR) return LocationVerdict::error_status;
  auto txt = response.first_txt();
  if (!txt) return LocationVerdict::nonstandard;  // empty/NODATA answer

  bool standard = false;
  switch (kind) {
    case resolvers::PublicResolverKind::cloudflare: standard = is_cloudflare_standard(*txt); break;
    case resolvers::PublicResolverKind::google: standard = is_google_standard(*txt); break;
    case resolvers::PublicResolverKind::quad9: standard = is_quad9_standard(*txt); break;
    case resolvers::PublicResolverKind::opendns: standard = is_opendns_standard(*txt); break;
  }
  return standard ? LocationVerdict::standard : LocationVerdict::nonstandard;
}

bool location_evidence_contested(resolvers::PublicResolverKind kind, const QueryResult& result) {
  // Only collected-and-conflicting answers can contest; byte-identical
  // duplicates (replication of the same answer) were deduplicated by the
  // transport and a lone answer has nothing to disagree with.
  if (!result.contested() || result.all_responses.size() < 2) return false;
  bool any_interception = false;
  bool any_clean = false;
  for (const auto& response : result.all_responses) {
    if (indicates_interception(classify_location_message(kind, response)))
      any_interception = true;
    else
      any_clean = true;
  }
  return any_interception && any_clean;
}

std::string location_response_display(const QueryResult& result) {
  if (!result.answered()) return "timeout";
  const dnswire::Message& response = *result.response;
  if (response.rcode() != dnswire::Rcode::NOERROR)
    return std::string(dnswire::to_string(response.rcode()));
  if (auto txt = response.first_txt()) return *txt;
  if (auto addr = response.first_address()) return addr->to_string();
  return "(empty)";
}

}  // namespace dnslocate::core
