#include "core/verdict.h"

namespace dnslocate::core {

std::string_view to_string(InterceptorLocation location) {
  switch (location) {
    case InterceptorLocation::not_intercepted: return "not intercepted";
    case InterceptorLocation::cpe: return "CPE";
    case InterceptorLocation::isp: return "within ISP";
    case InterceptorLocation::unknown: return "unknown";
    case InterceptorLocation::contested: return "contested";
  }
  return "?";
}

std::string_view to_string(TransparencyClass klass) {
  switch (klass) {
    case TransparencyClass::transparent: return "Transparent";
    case TransparencyClass::status_modified: return "Status Modified";
    case TransparencyClass::both: return "Both";
    case TransparencyClass::indeterminate: return "Indeterminate";
  }
  return "?";
}

}  // namespace dnslocate::core
