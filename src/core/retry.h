// Adaptive retry/backoff for DNS queries.
//
// The localization technique treats timeouts as *signal* (§3.3), so naive
// retransmission is not free: it must never convert silence into a false
// positive. The policy here keeps the semantics safe by construction —
// every attempt gets a fresh transaction ID (and, optionally, a fresh
// DNS-0x20 case pattern), so a late response to an earlier attempt no
// longer matches and is discarded instead of being mistaken for an answer
// to the retry. Exhausting the attempt budget still reports a timeout;
// retries only reduce the chance that packet loss masquerades as silence.
#pragma once

#include <chrono>
#include <cstdint>

#include "dnswire/message.h"
#include "simnet/rng.h"

namespace dnslocate::core {

/// Backoff schedule and per-query attempt budget, shared by the simulated
/// and the real-socket transports.
struct RetryPolicy {
  /// Total attempts per query (1 = single shot, the paper's default —
  /// timeouts are meaningful, so retries are opt-in).
  unsigned max_attempts = 1;
  /// Wait before the second attempt; grows geometrically afterwards.
  std::chrono::milliseconds initial_backoff{250};
  double backoff_multiplier = 2.0;
  /// Ceiling on any single backoff interval.
  std::chrono::milliseconds max_backoff{2000};
  /// Draw a fresh transaction ID per attempt (stale responses are then
  /// rejected by the ID check rather than accepted by the retry).
  bool fresh_id_per_attempt = true;
  /// Re-randomize the 0x20 case pattern of the question name per attempt.
  bool rerandomize_0x20 = true;

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }

  /// Backoff to wait before attempt number `attempt` (attempts count from
  /// 1; attempt 1 has no backoff).
  [[nodiscard]] std::chrono::milliseconds backoff_before(unsigned attempt) const;

  /// The conventional "three tries, exponential backoff" profile.
  static RetryPolicy standard(unsigned attempts = 3);
};

/// Per-query retry telemetry, carried on QueryResult and aggregated by the
/// pipeline into the probe verdict.
struct RetryTelemetry {
  std::uint32_t attempts = 1;   // attempts actually sent
  std::uint32_t timeouts = 0;   // attempts that ended in silence
  std::chrono::milliseconds backoff_waited{0};

  [[nodiscard]] std::uint32_t retries() const { return attempts > 0 ? attempts - 1 : 0; }
};

/// Mutate `message` for a fresh attempt per `policy`: new transaction ID
/// and/or re-randomized 0x20 case bits, drawn from `rng`.
void rerandomize_query(dnswire::Message& message, const RetryPolicy& policy, simnet::Rng& rng);

}  // namespace dnslocate::core
