#include "core/pipeline.h"

namespace dnslocate::core {

ProbeVerdict LocalizationPipeline::run(QueryTransport& transport) {
  ProbeVerdict verdict;
  TransportTelemetry before = transport.telemetry();

  // Step 1: which resolvers are intercepted? (§3.1)
  InterceptionDetector detector(config_.detection);
  verdict.detection = detector.run(transport);
  // IPv6 interception is rare and handled jointly with v4 in the paper's
  // analyses (§4.1.1); localization proceeds on the v4 observations, falling
  // back to v6 when only v6 is intercepted.
  netbase::IpFamily family = verdict.detection.any_intercepted(netbase::IpFamily::v4)
                                 ? netbase::IpFamily::v4
                                 : netbase::IpFamily::v6;
  auto suspects = verdict.detection.intercepted_kinds(family);
  if (suspects.empty()) {
    verdict.location = InterceptorLocation::not_intercepted;
    verdict.telemetry = transport.telemetry() - before;
    return verdict;
  }

  // Step 2: version.bind comparison against the CPE's public IP (§3.2).
  if (config_.cpe_public_ip) {
    CpeLocalizer::Config cpe_config = config_.cpe_check;
    cpe_config.family = family;
    CpeLocalizer cpe(cpe_config);
    verdict.cpe_check = cpe.run(transport, *config_.cpe_public_ip, suspects);
  }

  if (verdict.cpe_check && verdict.cpe_check->cpe_is_interceptor) {
    verdict.location = InterceptorLocation::cpe;
  } else {
    // Step 3: bogon probing (§3.3).
    IspLocalizer isp(config_.bogon);
    verdict.bogon = isp.run(transport);
    verdict.location = verdict.bogon->within_isp() ? InterceptorLocation::isp
                                                   : InterceptorLocation::unknown;
  }

  if (config_.detect_replication) {
    ReplicationProber prober(config_.replication);
    verdict.replication = prober.run(transport);
  }

  // §4.1.2: is the interception transparent?
  if (config_.run_transparency) {
    TransparencyTester::Config transparency_config = config_.transparency;
    transparency_config.family = family;
    TransparencyTester tester(transparency_config);
    verdict.transparency = tester.run(transport, suspects);
  }
  verdict.telemetry = transport.telemetry() - before;
  return verdict;
}

}  // namespace dnslocate::core
