#include "core/pipeline.h"

#include "core/sim_transport.h"
#include "obs/span.h"

namespace dnslocate::core {
namespace {

void mark_skipped(ProbeVerdict& verdict, PipelineStage stage) {
  verdict.skipped_stages |=
      static_cast<std::uint8_t>(1u << static_cast<unsigned>(stage));
  if (obs::metrics_enabled()) {
    static obs::Counter& skipped =
        obs::registry().counter("pipeline_stages_skipped_total");
    skipped.add_always(1);
  }
}

/// Independent per-stage ID stream derived from the probe-level seed, so no
/// stage's draw count perturbs another's IDs.
std::uint64_t stage_id_seed(std::uint64_t query_id_seed, PipelineStage stage) {
  constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
  return simnet::Rng(query_id_seed ^ (kGolden * (static_cast<std::uint64_t>(stage) + 1)))
      .next_u64();
}

}  // namespace

ProbeVerdict LocalizationPipeline::run(AsyncQueryTransport& engine, const CancelToken& cancel) {
  obs::Span run_span("pipeline/run");
  if (obs::metrics_enabled()) {
    static obs::Counter& runs = obs::registry().counter("pipeline_runs_total");
    runs.add_always(1);
  }
  QueryTransport& transport = engine.transport();
  ProbeVerdict verdict;
  TransportTelemetry before = transport.telemetry();
  auto finish = [&]() -> ProbeVerdict {
    verdict.telemetry = transport.telemetry() - before;
    return verdict;
  };

  // A working copy so the token and derived ID seeds reach every step's
  // config without mutating the pipeline's own configuration.
  PipelineConfig config = config_;
  if (cancel.active()) config.apply_cancel(cancel);
  config.detection.id_seed = stage_id_seed(config.query_id_seed, PipelineStage::detection);
  config.cpe_check.id_seed = stage_id_seed(config.query_id_seed, PipelineStage::cpe_check);
  config.bogon.id_seed = stage_id_seed(config.query_id_seed, PipelineStage::bogon);
  config.replication.id_seed = stage_id_seed(config.query_id_seed, PipelineStage::replication);
  config.transparency.id_seed = stage_id_seed(config.query_id_seed, PipelineStage::transparency);
  config.fingerprint.id_seed = stage_id_seed(config.query_id_seed, PipelineStage::fingerprint);

  auto skip_tail = [&](bool include_cpe_and_bogon) {
    if (include_cpe_and_bogon) {
      mark_skipped(verdict, PipelineStage::cpe_check);
      mark_skipped(verdict, PipelineStage::bogon);
    }
    if (config.detect_replication) mark_skipped(verdict, PipelineStage::replication);
    if (config.run_transparency) mark_skipped(verdict, PipelineStage::transparency);
    if (config.run_fingerprint) mark_skipped(verdict, PipelineStage::fingerprint);
  };

  // Opt-in active fingerprinting (core/fingerprint.h). Runs on every
  // non-cancelled path — a DPI middlebox that never alters answer *content*
  // is invisible to detection yet still fingerprintable. Targets the first
  // interception suspect when there is one, the configured default when not.
  auto fingerprint_stage = [&](const std::vector<resolvers::PublicResolverKind>& suspects) {
    if (!config.run_fingerprint) return;
    if (cancel.cancelled()) {
      mark_skipped(verdict, PipelineStage::fingerprint);
      return;
    }
    obs::Span span("pipeline/fingerprint");
    FingerprintProber prober(config.fingerprint);
    resolvers::PublicResolverKind target =
        suspects.empty() ? config.fingerprint.default_target : suspects.front();
    bool drained = false;
    FingerprintReport report = prober.run(engine, target, &drained);
    if (drained) {
      mark_skipped(verdict, PipelineStage::fingerprint);
    } else {
      verdict.fingerprint = std::move(report);
    }
  };

  if (cancel.cancelled()) {
    // Out of budget before any query was sent: nothing ran, nothing is
    // claimed. Every configured stage is marked skipped.
    mark_skipped(verdict, PipelineStage::detection);
    skip_tail(true);
    return finish();
  }

  // Step 1: which resolvers are intercepted? (§3.1)
  bool detection_drained = false;
  {
    obs::Span span("pipeline/detection");
    InterceptionDetector detector(config.detection);
    verdict.detection = detector.run(engine, &detection_drained);
  }
  if (detection_drained) mark_skipped(verdict, PipelineStage::detection);

  // IPv6 interception is rare and handled jointly with v4 in the paper's
  // analyses (§4.1.1); localization proceeds on the v4 observations, falling
  // back to v6 when only v6 is intercepted.
  netbase::IpFamily family = verdict.detection.any_intercepted(netbase::IpFamily::v4)
                                 ? netbase::IpFamily::v4
                                 : netbase::IpFamily::v6;
  auto suspects = verdict.detection.intercepted_kinds(family);
  if (suspects.empty()) {
    if (!detection_drained && verdict.detection.any_contested()) {
      // Conflicting answers disagreed on interception and no resolver shows
      // *uncontested* interception: something tampered with the probe's
      // answers, but every localization signal would rest on the contested
      // data. Never fabricate a location from it (§3.1's conservatism,
      // extended to adversarial paths).
      verdict.location = InterceptorLocation::contested;
      fingerprint_stage(suspects);
      return finish();
    }
    // With a drained detection batch the verdict stays partial: "nothing was
    // detected" is only a claim when detection actually completed.
    verdict.location = InterceptorLocation::not_intercepted;
    if (detection_drained) {
      skip_tail(true);
    } else {
      fingerprint_stage(suspects);
    }
    return finish();
  }

  if (detection_drained || cancel.cancelled()) {
    // Interception is established but the budget is gone: localization is
    // honestly "unknown" — never a fabricated CPE/ISP attribution.
    verdict.location = InterceptorLocation::unknown;
    skip_tail(true);
    return finish();
  }

  // Step 2: version.bind comparison against the CPE's public IP (§3.2).
  bool cpe_drained = false;
  if (config.cpe_public_ip) {
    obs::Span span("pipeline/cpe_check");
    CpeLocalizer::Config cpe_config = config.cpe_check;
    cpe_config.family = family;
    CpeLocalizer cpe(cpe_config);
    CpeCheckReport report =
        cpe.run(engine, *config.cpe_public_ip, suspects, &cpe_drained);
    if (cpe_drained) {
      mark_skipped(verdict, PipelineStage::cpe_check);
    } else {
      verdict.cpe_check = std::move(report);
    }
  }

  // Tracks whether any stage's evidence drew conflicting answers. A
  // location is still claimed when *uncontested* corroboration exists (the
  // CPE-addressed version.bind match, an uncontested bogon answer — both
  // unreachable by a transit-core injector); otherwise conflicting evidence
  // degrades the verdict to `contested`, never a fabricated location.
  bool evidence_contested = verdict.detection.any_contested();

  if (verdict.cpe_check && verdict.cpe_check->cpe_is_interceptor) {
    // Corroborated: the query addressed to the CPE's own public IP cannot
    // travel beyond the CPE (§3.2), so no in-core adversary can fabricate
    // the string match that produced this attribution.
    verdict.location = InterceptorLocation::cpe;
  } else if (cpe_drained || cancel.cancelled()) {
    verdict.location = InterceptorLocation::unknown;
    mark_skipped(verdict, PipelineStage::bogon);
  } else {
    evidence_contested =
        evidence_contested || (verdict.cpe_check && verdict.cpe_check->contested);
    // Step 3: bogon probing (§3.3).
    obs::Span span("pipeline/bogon");
    IspLocalizer isp(config.bogon);
    bool bogon_drained = false;
    BogonReport report = isp.run(engine, &bogon_drained);
    if (bogon_drained) {
      mark_skipped(verdict, PipelineStage::bogon);
      verdict.location = InterceptorLocation::unknown;
    } else {
      verdict.bogon = std::move(report);
      evidence_contested = evidence_contested || verdict.bogon->contested();
      if (verdict.bogon->within_isp() && !verdict.bogon->contested()) {
        // Corroborated: bogon-addressed queries cannot leave the AS, so an
        // uncontested answer to one is in-ISP evidence no external injector
        // can forge.
        verdict.location = InterceptorLocation::isp;
      } else {
        verdict.location = evidence_contested ? InterceptorLocation::contested
                                              : InterceptorLocation::unknown;
      }
    }
  }

  if (config.detect_replication) {
    if (cancel.cancelled()) {
      mark_skipped(verdict, PipelineStage::replication);
    } else {
      obs::Span span("pipeline/replication");
      ReplicationProber prober(config.replication);
      bool drained = false;
      ReplicationReport report = prober.run(engine, &drained);
      if (drained) {
        mark_skipped(verdict, PipelineStage::replication);
      } else {
        verdict.replication = std::move(report);
      }
    }
  }

  // §4.1.2: is the interception transparent?
  if (config.run_transparency) {
    if (cancel.cancelled()) {
      mark_skipped(verdict, PipelineStage::transparency);
    } else {
      obs::Span span("pipeline/transparency");
      TransparencyTester::Config transparency_config = config.transparency;
      transparency_config.family = family;
      TransparencyTester tester(transparency_config);
      bool drained = false;
      TransparencyReport report = tester.run(engine, suspects, &drained);
      if (drained) {
        mark_skipped(verdict, PipelineStage::transparency);
      } else {
        verdict.transparency = std::move(report);
      }
    }
  }

  fingerprint_stage(suspects);
  return finish();
}

ProbeVerdict LocalizationPipeline::run(QueryTransport& transport, const CancelToken& cancel) {
  BlockingBatchAdapter adapter(transport);
  return run(adapter, cancel);
}

ProbeVerdict LocalizationPipeline::run(SimTransport& transport, const CancelToken& cancel) {
  return run(static_cast<AsyncQueryTransport&>(transport), cancel);
}

}  // namespace dnslocate::core
