#include "core/pipeline.h"

#include "obs/span.h"

namespace dnslocate::core {
namespace {

void mark_skipped(ProbeVerdict& verdict, PipelineStage stage) {
  verdict.skipped_stages |=
      static_cast<std::uint8_t>(1u << static_cast<unsigned>(stage));
  if (obs::metrics_enabled()) {
    static obs::Counter& skipped =
        obs::registry().counter("pipeline_stages_skipped_total");
    skipped.add_always(1);
  }
}

}  // namespace

ProbeVerdict LocalizationPipeline::run(QueryTransport& transport, const CancelToken& cancel) {
  obs::Span run_span("pipeline/run");
  if (obs::metrics_enabled()) {
    static obs::Counter& runs = obs::registry().counter("pipeline_runs_total");
    runs.add_always(1);
  }
  ProbeVerdict verdict;
  TransportTelemetry before = transport.telemetry();
  auto finish = [&]() -> ProbeVerdict {
    verdict.telemetry = transport.telemetry() - before;
    return verdict;
  };

  // A working copy so the token reaches every step's QueryOptions without
  // mutating the pipeline's own configuration.
  PipelineConfig config = config_;
  if (cancel.active()) config.apply_cancel(cancel);

  if (cancel.cancelled()) {
    // Out of budget before any query was sent: nothing ran, nothing is
    // claimed. Every configured stage is marked skipped.
    mark_skipped(verdict, PipelineStage::detection);
    mark_skipped(verdict, PipelineStage::cpe_check);
    mark_skipped(verdict, PipelineStage::bogon);
    if (config.detect_replication) mark_skipped(verdict, PipelineStage::replication);
    if (config.run_transparency) mark_skipped(verdict, PipelineStage::transparency);
    return finish();
  }

  // Step 1: which resolvers are intercepted? (§3.1)
  {
    obs::Span span("pipeline/detection");
    InterceptionDetector detector(config.detection);
    verdict.detection = detector.run(transport);
  }
  // IPv6 interception is rare and handled jointly with v4 in the paper's
  // analyses (§4.1.1); localization proceeds on the v4 observations, falling
  // back to v6 when only v6 is intercepted.
  netbase::IpFamily family = verdict.detection.any_intercepted(netbase::IpFamily::v4)
                                 ? netbase::IpFamily::v4
                                 : netbase::IpFamily::v6;
  auto suspects = verdict.detection.intercepted_kinds(family);
  if (suspects.empty()) {
    verdict.location = InterceptorLocation::not_intercepted;
    return finish();
  }

  if (cancel.cancelled()) {
    // Interception is established but the budget is gone: localization is
    // honestly "unknown" — never a fabricated CPE/ISP attribution.
    verdict.location = InterceptorLocation::unknown;
    mark_skipped(verdict, PipelineStage::cpe_check);
    mark_skipped(verdict, PipelineStage::bogon);
    if (config.detect_replication) mark_skipped(verdict, PipelineStage::replication);
    if (config.run_transparency) mark_skipped(verdict, PipelineStage::transparency);
    return finish();
  }

  // Step 2: version.bind comparison against the CPE's public IP (§3.2).
  if (config.cpe_public_ip) {
    obs::Span span("pipeline/cpe_check");
    CpeLocalizer::Config cpe_config = config.cpe_check;
    cpe_config.family = family;
    CpeLocalizer cpe(cpe_config);
    verdict.cpe_check = cpe.run(transport, *config.cpe_public_ip, suspects);
  }

  if (verdict.cpe_check && verdict.cpe_check->cpe_is_interceptor) {
    verdict.location = InterceptorLocation::cpe;
  } else if (cancel.cancelled()) {
    verdict.location = InterceptorLocation::unknown;
    mark_skipped(verdict, PipelineStage::bogon);
  } else {
    // Step 3: bogon probing (§3.3).
    obs::Span span("pipeline/bogon");
    IspLocalizer isp(config.bogon);
    verdict.bogon = isp.run(transport);
    verdict.location = verdict.bogon->within_isp() ? InterceptorLocation::isp
                                                   : InterceptorLocation::unknown;
  }

  if (config.detect_replication) {
    if (cancel.cancelled()) {
      mark_skipped(verdict, PipelineStage::replication);
    } else {
      obs::Span span("pipeline/replication");
      ReplicationProber prober(config.replication);
      verdict.replication = prober.run(transport);
    }
  }

  // §4.1.2: is the interception transparent?
  if (config.run_transparency) {
    if (cancel.cancelled()) {
      mark_skipped(verdict, PipelineStage::transparency);
    } else {
      obs::Span span("pipeline/transparency");
      TransparencyTester::Config transparency_config = config.transparency;
      transparency_config.family = family;
      TransparencyTester tester(transparency_config);
      verdict.transparency = tester.run(transport, suspects);
    }
  }
  return finish();
}

}  // namespace dnslocate::core
