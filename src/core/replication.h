// Query replication detection (§3.1): some interceptors *copy* queries
// instead of diverting them, so the client receives two responses — one
// from the interceptor's resolver (nearly always first, and thus accepted)
// and one from the true destination. The paper treats replication and
// interception as indistinguishable for localization; this prober makes the
// distinction observable by collecting every response within the timeout.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/classify.h"
#include "core/query_batch.h"
#include "core/transport.h"

namespace dnslocate::core {

class SimTransport;

/// Replication evidence for one resolver.
struct ReplicationObservation {
  std::size_t responses = 0;       // distinct datagrams received
  bool replicated = false;         // more than one response
  bool payloads_differ = false;    // the copies disagree (true interception
                                   // races the genuine answer)
  std::string first_display;       // what a stub resolver would accept
  std::string last_display;
};

struct ReplicationReport {
  std::map<resolvers::PublicResolverKind, ReplicationObservation> per_resolver;

  [[nodiscard]] bool any_replicated() const {
    for (const auto& [kind, obs] : per_resolver)
      if (obs.replicated) return true;
    return false;
  }
};

class ReplicationProber {
 public:
  struct Config {
    QueryOptions query;
    /// Seed for the transaction-ID stream (the pipeline derives this from
    /// the probe seed; the default only matters for direct stage calls).
    std::uint64_t id_seed = 0x8000;
  };

  ReplicationProber() = default;
  explicit ReplicationProber(Config config) : config_(config) {}

  /// Send each resolver's location query (one batch, all four resolvers)
  /// and count the responses that race back before the timeout.
  ReplicationReport run(AsyncQueryTransport& engine, bool* drained = nullptr);
  /// Sequential compatibility path over a plain transport.
  ReplicationReport run(QueryTransport& transport);
  /// SimTransport serves both interfaces; prefer its (byte-identical)
  /// batched cascade.
  ReplicationReport run(SimTransport& transport);

 private:
  Config config_;
};

}  // namespace dnslocate::core
