// Query replication detection (§3.1): some interceptors *copy* queries
// instead of diverting them, so the client receives two responses — one
// from the interceptor's resolver (nearly always first, and thus accepted)
// and one from the true destination. The paper treats replication and
// interception as indistinguishable for localization; this prober makes the
// distinction observable by collecting every response within the timeout.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/classify.h"
#include "core/transport.h"

namespace dnslocate::core {

/// Replication evidence for one resolver.
struct ReplicationObservation {
  std::size_t responses = 0;       // distinct datagrams received
  bool replicated = false;         // more than one response
  bool payloads_differ = false;    // the copies disagree (true interception
                                   // races the genuine answer)
  std::string first_display;       // what a stub resolver would accept
  std::string last_display;
};

struct ReplicationReport {
  std::map<resolvers::PublicResolverKind, ReplicationObservation> per_resolver;

  [[nodiscard]] bool any_replicated() const {
    for (const auto& [kind, obs] : per_resolver)
      if (obs.replicated) return true;
    return false;
  }
};

class ReplicationProber {
 public:
  struct Config {
    QueryOptions query;
  };

  ReplicationProber() = default;
  explicit ReplicationProber(Config config) : config_(config) {}

  /// Send each resolver's location query and count the responses that race
  /// back before the timeout.
  ReplicationReport run(QueryTransport& transport);

 private:
  Config config_;
  std::uint16_t next_id_ = 0x8000;
};

}  // namespace dnslocate::core
