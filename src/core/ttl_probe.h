// TTL-based interceptor hop localization — the §6 "future work" the paper
// could not run on RIPE Atlas (the platform cannot set the IP TTL of DNS
// requests). With a transport that honours QueryOptions::ttl, the
// interceptor's hop distance is the smallest TTL whose query still draws a
// DNS response: any smaller TTL expires in the network before reaching the
// box that answers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/query_batch.h"
#include "core/transport.h"
#include "dnswire/name.h"
#include "netbase/endpoint.h"

namespace dnslocate::core {

class SimTransport;

/// Result of a TTL sweep towards one server.
struct TtlSweepReport {
  netbase::Endpoint target;
  /// answered[i] == true if TTL i+1 drew a response.
  std::vector<bool> answered;
  /// Hop distance of whatever answers the query: min TTL with a response.
  std::optional<std::uint8_t> responder_hop;
};

class TtlLocalizer {
 public:
  struct Config {
    QueryOptions query;
    std::uint8_t max_ttl = 16;
  };

  TtlLocalizer() = default;
  explicit TtlLocalizer(Config config) : config_(config) {}

  /// Sweep TTL 1..max_ttl with version.bind queries towards `target`, as
  /// one declarative QueryBatch (results interpreted by index, so the
  /// report is engine-independent). Requires supports_ttl(); returns an
  /// empty report otherwise. If the engine drained the batch (cancellation
  /// cut it short), `*drained` is set and the report covers only what
  /// completed queries actually showed.
  TtlSweepReport sweep(AsyncQueryTransport& engine, const netbase::Endpoint& target,
                       bool* drained = nullptr);
  /// Sequential compatibility path over a plain transport.
  TtlSweepReport sweep(QueryTransport& transport, const netbase::Endpoint& target);
  /// SimTransport serves both interfaces; prefer its (byte-identical)
  /// batched cascade.
  TtlSweepReport sweep(SimTransport& transport, const netbase::Endpoint& target);

  /// Convenience: hop distance of the responder (see TtlSweepReport), or
  /// nullopt if nothing answered (or TTL is unsupported).
  std::optional<std::uint8_t> responder_hop(QueryTransport& transport,
                                            const netbase::Endpoint& target);
  std::optional<std::uint8_t> responder_hop(SimTransport& transport,
                                            const netbase::Endpoint& target);

 private:
  Config config_;
  std::uint16_t next_id_ = 0x5000;
};

}  // namespace dnslocate::core
