#include "core/isp_localizer.h"

#include "core/classify.h"
#include "dnswire/debug_queries.h"
#include "resolvers/special_names.h"

namespace dnslocate::core {

BogonFamilyReport IspLocalizer::probe_family(QueryTransport& transport,
                                             const netbase::Endpoint& target) {
  BogonFamilyReport report;
  report.tested = true;
  report.target = target;

  dnswire::Message a_query = dnswire::make_query(
      next_id_++, resolvers::bogon_probe_domain(), dnswire::RecordType::A);
  report.a_query = transport.query(target, a_query, config_.query);
  report.a_display = location_response_display(report.a_query);

  dnswire::Message version_query =
      dnswire::make_chaos_query(next_id_++, dnswire::version_bind());
  report.version_query = transport.query(target, version_query, config_.query);
  report.version_display = location_response_display(report.version_query);
  return report;
}

BogonReport IspLocalizer::run(QueryTransport& transport) {
  BogonReport report;
  if (transport.supports_family(netbase::IpFamily::v4))
    report.v4 = probe_family(transport, config_.bogon_v4);
  if (config_.test_v6 && transport.supports_family(netbase::IpFamily::v6))
    report.v6 = probe_family(transport, config_.bogon_v6);

  for (const BogonFamilyReport* family : {&report.v4, &report.v6}) {
    if (family->version_query.answered()) {
      if (auto txt = family->version_query.response->first_txt()) {
        report.version_bind_txt = *txt;
        break;
      }
    }
  }
  return report;
}

}  // namespace dnslocate::core
