#include "core/isp_localizer.h"

#include "core/classify.h"
#include "dnswire/debug_queries.h"
#include "resolvers/special_names.h"
#include "core/sim_transport.h"

namespace dnslocate::core {

BogonReport IspLocalizer::run(AsyncQueryTransport& engine, bool* drained) {
  // Per tested family: an A query for the probe domain, then version.bind,
  // both addressed to the bogon target — the order the sequential localizer
  // always used (v4 pair first, then v6).
  QueryBatch batch;
  simnet::Rng ids(config_.id_seed);
  QueryTransport& transport = engine.transport();

  struct Planned {
    BogonFamilyReport* family;
    netbase::Endpoint target;
  };
  BogonReport report;
  std::vector<Planned> plan;
  if (transport.supports_family(netbase::IpFamily::v4))
    plan.push_back(Planned{&report.v4, config_.bogon_v4});
  if (config_.test_v6 && transport.supports_family(netbase::IpFamily::v6))
    plan.push_back(Planned{&report.v6, config_.bogon_v6});

  for (const Planned& planned : plan) {
    batch.add(planned.target,
              dnswire::make_query(random_query_id(ids), resolvers::bogon_probe_domain(),
                                  dnswire::RecordType::A),
              config_.query);
    batch.add(planned.target,
              dnswire::make_chaos_query(random_query_id(ids), dnswire::version_bind()),
              config_.query);
  }

  engine.run(batch);
  if (drained != nullptr) *drained = batch.drained();

  for (std::size_t i = 0; i < plan.size(); ++i) {
    BogonFamilyReport& family = *plan[i].family;
    family.tested = true;
    family.target = plan[i].target;
    family.a_query = batch.result(2 * i);
    family.a_display = location_response_display(family.a_query);
    family.version_query = batch.result(2 * i + 1);
    family.version_display = location_response_display(family.version_query);
  }

  for (const BogonFamilyReport* family : {&report.v4, &report.v6}) {
    if (family->version_query.answered()) {
      if (auto txt = family->version_query.response->first_txt()) {
        report.version_bind_txt = *txt;
        break;
      }
    }
  }
  return report;
}

BogonReport IspLocalizer::run(QueryTransport& transport) {
  BlockingBatchAdapter adapter(transport);
  return run(adapter);
}

BogonReport IspLocalizer::run(SimTransport& transport) {
  return run(static_cast<AsyncQueryTransport&>(transport));
}

}  // namespace dnslocate::core
