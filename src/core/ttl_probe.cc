#include "core/ttl_probe.h"

#include "core/sim_transport.h"
#include "dnswire/debug_queries.h"

namespace dnslocate::core {

TtlSweepReport TtlLocalizer::sweep(AsyncQueryTransport& engine,
                                   const netbase::Endpoint& target, bool* drained) {
  TtlSweepReport report;
  report.target = target;
  if (drained != nullptr) *drained = false;
  if (!engine.transport().supports_ttl()) return report;

  // Declarative plan: the whole sweep is fixed before anything is sent, so
  // transaction IDs are allocated in TTL order under every engine.
  QueryBatch batch;
  for (std::uint8_t ttl = 1; ttl <= config_.max_ttl; ++ttl) {
    QueryOptions options = config_.query;
    options.ttl = ttl;
    batch.add(target, dnswire::make_chaos_query(next_id_++, dnswire::version_bind()), options);
  }

  engine.run(batch);
  if (drained != nullptr) *drained = batch.drained();

  for (std::size_t i = 0; i < batch.size(); ++i) {
    bool answered = batch.result(i).answered();
    report.answered.push_back(answered);
    if (answered && !report.responder_hop)
      report.responder_hop = static_cast<std::uint8_t>(i + 1);
  }
  return report;
}

TtlSweepReport TtlLocalizer::sweep(QueryTransport& transport,
                                   const netbase::Endpoint& target) {
  BlockingBatchAdapter adapter(transport);
  return sweep(adapter, target);
}

TtlSweepReport TtlLocalizer::sweep(SimTransport& transport, const netbase::Endpoint& target) {
  return sweep(static_cast<AsyncQueryTransport&>(transport), target);
}

std::optional<std::uint8_t> TtlLocalizer::responder_hop(QueryTransport& transport,
                                                        const netbase::Endpoint& target) {
  return sweep(transport, target).responder_hop;
}

std::optional<std::uint8_t> TtlLocalizer::responder_hop(SimTransport& transport,
                                                        const netbase::Endpoint& target) {
  return sweep(transport, target).responder_hop;
}

}  // namespace dnslocate::core
