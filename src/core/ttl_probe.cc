#include "core/ttl_probe.h"

#include "dnswire/debug_queries.h"

namespace dnslocate::core {

TtlSweepReport TtlLocalizer::sweep(QueryTransport& transport,
                                   const netbase::Endpoint& target) {
  TtlSweepReport report;
  report.target = target;
  if (!transport.supports_ttl()) return report;

  for (std::uint8_t ttl = 1; ttl <= config_.max_ttl; ++ttl) {
    QueryOptions options = config_.query;
    options.ttl = ttl;
    dnswire::Message query = dnswire::make_chaos_query(next_id_++, dnswire::version_bind());
    QueryResult result = transport.query(target, query, options);
    report.answered.push_back(result.answered());
    if (result.answered() && !report.responder_hop) report.responder_hop = ttl;
  }
  return report;
}

std::optional<std::uint8_t> TtlLocalizer::responder_hop(QueryTransport& transport,
                                                        const netbase::Endpoint& target) {
  return sweep(transport, target).responder_hop;
}

}  // namespace dnslocate::core
