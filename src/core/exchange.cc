#include "core/exchange.h"

#include <algorithm>
#include <thread>

#include "dnswire/decoder.h"
#include "obs/span.h"

namespace dnslocate::core {
namespace {

/// Granularity at which waits re-check a manually-cancellable token (a
/// deadline token needs no polling — it caps the wait horizon directly).
constexpr std::chrono::milliseconds kCancelPollSlice{50};

}  // namespace

std::uint64_t payload_fingerprint(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) h = (h ^ data[i]) * 0x100000001b3ull;
  return h;
}

bool response_acceptable(const dnswire::Message& sent, const dnswire::Message& response) {
  return dnswire::is_acceptable_response(sent, response);
}

bool responses_conflict(const dnswire::Message& a, const dnswire::Message& b) {
  return a.rcode() != b.rcode() || a.flags.tc != b.flags.tc || a.answers != b.answers;
}

void prepare_retry_attempt(dnswire::Message& message, const RetryPolicy& policy,
                           simnet::Rng& rng) {
  rerandomize_query(message, policy, rng);
}

bool interruptible_backoff(std::chrono::milliseconds backoff, const CancelToken& cancel) {
  if (!cancel.active()) {
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    return true;
  }
  auto wake = CancelToken::Clock::now() + backoff;
  if (auto deadline = cancel.deadline()) wake = std::min(wake, *deadline);
  while (!cancel.cancelled()) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        wake - CancelToken::Clock::now());
    if (remaining.count() <= 0) break;
    std::this_thread::sleep_for(std::min(remaining, kCancelPollSlice));
  }
  return !cancel.cancelled();
}

SourceKey source_key_from(const netbase::Endpoint& endpoint) {
  SourceKey key;
  if (endpoint.address.is_v4()) {
    key.bytes[0] = 4;
    auto bytes = endpoint.address.v4().to_bytes();
    std::copy(bytes.begin(), bytes.end(), key.bytes.begin() + 1);
    key.size = 1 + 4;
  } else {
    key.bytes[0] = 6;
    const auto& bytes = endpoint.address.v6().bytes();
    std::copy(bytes.begin(), bytes.end(), key.bytes.begin() + 1);
    key.size = 1 + 16;
  }
  key.bytes[key.size++] = static_cast<std::uint8_t>(endpoint.port >> 8);
  key.bytes[key.size++] = static_cast<std::uint8_t>(endpoint.port & 0xff);
  return key;
}

SourceKey source_key_from(const std::uint8_t* sockaddr_bytes, std::size_t size) {
  SourceKey key;
  // Real sockaddr forms fit (sockaddr_in6 is 28 bytes); clamp defensively so
  // a malformed length can never overflow the inline buffer.
  key.size = static_cast<std::uint8_t>(std::min(size, key.bytes.size()));
  std::copy(sockaddr_bytes, sockaddr_bytes + key.size, key.bytes.begin());
  return key;
}

ExchangeLedger::Disposition ExchangeLedger::deliver(const dnswire::Message& sent,
                                                    dnswire::Message&& response,
                                                    SourceKey source,
                                                    std::uint64_t fingerprint,
                                                    std::chrono::microseconds rtt) {
  for (const auto& [src, hash] : seen_)
    if (hash == fingerprint && src == source) return Disposition::duplicate;
  seen_.emplace_back(source, fingerprint);

  // RFC 5452 accepts a case-folded question echo; record the rewrite as
  // evidence (a DPI middlebox ambiguity — see simnet/adversary.h).
  if (const auto* echoed = response.question())
    if (const auto* asked = sent.question())
      if (!(echoed->name == asked->name)) ++result_.arbitration.case_mismatches;

  if (!result_.answered()) {
    result_.status = QueryResult::Status::answered;
    result_.response = response;
    result_.rtt = rtt;
    result_.all_responses.push_back(std::move(response));
    return Disposition::accepted;
  }
  if (responses_conflict(*result_.response, response)) {
    // The duplicate window stayed open and a semantically different answer
    // raced in: the transaction is contested, and both answers are kept in
    // all_responses for the classifier to arbitrate.
    ++result_.arbitration.conflicts;
  }
  result_.all_responses.push_back(std::move(response));
  return Disposition::followup;
}

QueryResult run_exchange(ExchangeChannel& channel, const dnswire::Message& message,
                         const QueryOptions& options, const ExchangePolicy& policy,
                         simnet::Rng& rng) {
  unsigned budget = std::max(1u, policy.retry.max_attempts);
  dnswire::Message attempt_message = message;
  RetryTelemetry telemetry;
  ExchangeLedger ledger;

  for (unsigned attempt_number = 1; attempt_number <= budget; ++attempt_number) {
    if (attempt_number > 1) {
      auto backoff = policy.retry.backoff_before(attempt_number);
      telemetry.backoff_waited += backoff;
      // The backoff wait honours the cancellation token: a supervised probe
      // stopped mid-backoff abandons its remaining attempts (reported as a
      // timeout — cancellation never manufactures an answer).
      if (!channel.wait_backoff(backoff, options.cancel)) break;
      // Fresh transaction ID (and 0x20 pattern): a straggling response to
      // an earlier attempt fails the ID check instead of answering this one.
      prepare_retry_attempt(attempt_message, policy.retry, rng);
    }
    if (policy.honour_cancellation && options.cancel.cancelled()) break;

    obs::Span attempt_span("transport/attempt");
    ledger.begin_attempt();
    auto sent_at = channel.now();
    auto deadline = sent_at + std::chrono::duration_cast<std::chrono::nanoseconds>(options.timeout);
    // A cancellation deadline caps the collection window; a manual token is
    // re-checked every poll slice inside the channel's receive.
    if (policy.honour_cancellation)
      if (auto cancel_deadline = options.cancel.deadline())
        deadline = std::min(deadline,
                            std::chrono::nanoseconds(cancel_deadline->time_since_epoch()));

    telemetry.attempts = attempt_number;
    if (!channel.begin_attempt_and_send(attempt_message, deadline)) {
      // Unsendable attempt (no socket / unsupported family / network down):
      // burns the attempt immediately, exactly like a silent network.
      ++telemetry.timeouts;
      channel.end_attempt();
      continue;
    }

    std::optional<std::chrono::nanoseconds> duplicate_deadline;
    while (true) {
      if (policy.honour_cancellation && options.cancel.cancelled()) break;
      auto horizon = duplicate_deadline ? std::min(*duplicate_deadline, deadline) : deadline;
      ExchangeChannel::Inbound* inbound = channel.receive(horizon, options.cancel);
      if (!inbound) break;

      if (inbound->kind == ExchangeChannel::Inbound::Kind::icmp_ttl_exceeded) {
        // The quoted datagram inside the error is our own query; confirm by
        // id before crediting the reporting router.
        auto quoted = dnswire::decode_message(inbound->payload);
        if (quoted && quoted->id == attempt_message.id && inbound->icmp_from)
          ledger.note_icmp(*inbound->icmp_from);
        continue;
      }

      auto response = dnswire::decode_message(inbound->payload);
      if (!response) {
        ledger.note_malformed();  // on our flow but not DNS: injection debris
        continue;
      }
      if (!inbound->source_matches) {
        ledger.note_spoof();  // wrong-egress injection
        continue;
      }
      if (!response_acceptable(attempt_message, *response)) {
        ledger.note_spoof();  // wrong ID / unechoed question: off-path guess
        continue;
      }

      auto rtt = std::chrono::duration_cast<std::chrono::microseconds>(channel.now() - sent_at);
      auto disposition = ledger.deliver(
          attempt_message, std::move(*response), inbound->source,
          payload_fingerprint(inbound->payload.data(), inbound->payload.size()), rtt);
      if (disposition == ExchangeLedger::Disposition::accepted && policy.duplicate_window)
        duplicate_deadline =
            channel.now() +
            std::chrono::duration_cast<std::chrono::nanoseconds>(*policy.duplicate_window);
    }
    channel.end_attempt();

    if (ledger.result().answered()) break;
    ++telemetry.timeouts;
  }

  QueryResult result = std::move(ledger.result());
  result.retry = telemetry;
  return result;
}

}  // namespace dnslocate::core
