// SimTransport: runs the localization client on a simulated host.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/query_batch.h"
#include "core/transport.h"
#include "simnet/simulator.h"

namespace dnslocate::core {

/// A QueryTransport backed by a simnet host device. Each query binds a fresh
/// ephemeral port, injects the datagram, and drives the simulator until the
/// response arrives and the timeout horizon passes (so replicated duplicates
/// are captured deterministically).
class SimTransport : public QueryTransport, private simnet::UdpApp, public AsyncQueryTransport {
 public:
  /// `host` is the measurement device (the RIPE-Atlas-probe stand-in).
  /// It must already be wired into a topology with a default route.
  SimTransport(simnet::Simulator& sim, simnet::Device& host);

  QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                    const QueryOptions& options = {}) override;

  /// Deterministic batch path: one simulator cascade per query, in strict
  /// submission order within a single run() call. Overlapping queries in
  /// simulated time would interleave draws on the simulator's shared RNG
  /// stream and permute traces; running them back-to-back keeps verdicts
  /// and traces byte-identical to the sequential engine, and simulated
  /// waits cost no wall-clock, so nothing is lost by not overlapping.
  void run(QueryBatch& batch) override;

  [[nodiscard]] QueryTransport& transport() override { return *this; }

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override;
  [[nodiscard]] bool supports_ttl() const override { return true; }
  [[nodiscard]] bool supports_channel(simnet::Channel) const override { return true; }

  /// Datagrams sent, counting every retry attempt.
  [[nodiscard]] std::uint64_t queries_sent() const { return queries_sent_; }

 private:
  void on_datagram(simnet::Simulator& sim, simnet::Device& self,
                   const simnet::UdpPacket& packet) override;

  /// One send + collect-until-deadline cycle (a single attempt).
  QueryResult attempt(const netbase::Endpoint& server, const dnswire::Message& message,
                      const QueryOptions& options);

  simnet::Simulator& sim_;
  simnet::Device& host_;
  std::uint16_t next_port_ = 40000;
  std::uint64_t queries_sent_ = 0;

  // Per-attempt collection state (valid only inside attempt()).
  struct Collecting {
    std::uint16_t port = 0;
    std::uint16_t id = 0;
    /// Endpoint the query went to: responses from anywhere else are spoof
    /// evidence, not answers (NAT/DNAT conntrack rewrites legitimate
    /// diverted replies back to this endpoint before they reach us).
    netbase::Endpoint server;
    const dnswire::Message* query = nullptr;
    bool deadline_passed = false;
    QueryResult result;
    simnet::SimTime sent_at{};
    /// (source, payload hash) of accepted responses — network-duplicated
    /// copies are byte-identical and are dropped, so fault-injected
    /// duplication cannot fabricate a replication verdict.
    std::vector<std::pair<netbase::Endpoint, std::uint64_t>> seen;
  };
  Collecting* collecting_ = nullptr;
};

}  // namespace dnslocate::core
