// SimTransport: runs the localization client on a simulated host.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/exchange.h"
#include "core/query_batch.h"
#include "core/transport.h"
#include "simnet/simulator.h"

namespace dnslocate::core {

/// A QueryTransport backed by a simnet host device. Each query runs through
/// the shared exchange kernel (core/exchange.h) over a simulated channel
/// that binds a fresh ephemeral port per attempt, injects the datagram, and
/// drives the simulator until the timeout horizon passes (so replicated
/// duplicates are captured deterministically).
class SimTransport : public QueryTransport, public AsyncQueryTransport {
 public:
  /// `host` is the measurement device (the RIPE-Atlas-probe stand-in).
  /// It must already be wired into a topology with a default route.
  SimTransport(simnet::Simulator& sim, simnet::Device& host);

  QueryResult query(const netbase::Endpoint& server, const dnswire::Message& message,
                    const QueryOptions& options = {}) override;

  /// Deterministic batch path: one simulator cascade per query, in strict
  /// submission order within a single run() call. Overlapping queries in
  /// simulated time would interleave draws on the simulator's shared RNG
  /// stream and permute traces; running them back-to-back keeps verdicts
  /// and traces byte-identical to the sequential engine, and simulated
  /// waits cost no wall-clock, so nothing is lost by not overlapping.
  void run(QueryBatch& batch) override;

  [[nodiscard]] QueryTransport& transport() override { return *this; }

  [[nodiscard]] bool supports_family(netbase::IpFamily family) const override;
  [[nodiscard]] bool supports_ttl() const override { return true; }
  [[nodiscard]] bool supports_channel(simnet::Channel) const override { return true; }

  /// Datagrams sent, counting every retry attempt.
  [[nodiscard]] std::uint64_t queries_sent() const { return queries_sent_; }

 private:
  simnet::Simulator& sim_;
  simnet::Device& host_;
  std::uint16_t next_port_ = 40000;
  std::uint64_t queries_sent_ = 0;
  /// Inbound-slot pool lent to the per-query exchange channel. Slots (and
  /// their payload capacity) persist across queries, so the steady-state
  /// datagram path allocates nothing.
  std::vector<ExchangeChannel::Inbound> inbound_pool_;
};

}  // namespace dnslocate::core
