// Plain-text table rendering for the experiment harnesses.
#pragma once

#include <string>
#include <vector>

namespace dnslocate::report {

/// A simple aligned text table with a header row; also exports CSV.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Column-aligned rendering with a separator rule under the header.
  [[nodiscard]] std::string render() const;

  /// RFC-4180-ish CSV (quotes cells containing commas or quotes).
  [[nodiscard]] std::string to_csv() const;

  /// GitHub-flavoured markdown table (pipes escaped).
  [[nodiscard]] std::string to_markdown() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dnslocate::report
