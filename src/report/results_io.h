// Measurement-result persistence: one JSON object per probe (JSONL), with
// enough detail to re-aggregate every table and figure offline — the
// equivalent of publishing the pilot study's dataset.
#pragma once

#include <string>
#include <vector>

#include "atlas/measurement.h"
#include "jsonio/json.h"

namespace dnslocate::report {

/// Serialize one probe record to a JSON object.
jsonio::Value probe_to_json(const atlas::ProbeRecord& record);

/// Whole run -> JSONL text (one probe per line, trailing newline).
std::string run_to_jsonl(const atlas::MeasurementRun& run);

/// Parse JSONL back into records. Fields the JSON lacks (raw responses)
/// stay default; everything the aggregators consume round-trips. Lines
/// that fail to parse are reported in `errors` (line numbers, 1-based).
struct JsonlLoadResult {
  atlas::MeasurementRun run;
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

JsonlLoadResult run_from_jsonl(std::string_view text);

}  // namespace dnslocate::report
