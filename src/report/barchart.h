// Horizontal stacked ASCII bar charts — the terminal rendering of the
// paper's Figure 3 and Figure 4.
#pragma once

#include <string>
#include <vector>

namespace dnslocate::report {

/// One stacked segment of a bar.
struct BarSegment {
  std::size_t value = 0;
  char glyph = '#';
};

/// A labelled bar of stacked segments.
struct Bar {
  std::string label;
  std::vector<BarSegment> segments;

  [[nodiscard]] std::size_t total() const {
    std::size_t sum = 0;
    for (const auto& segment : segments) sum += segment.value;
    return sum;
  }
};

class BarChart {
 public:
  /// `legend` pairs each glyph with its meaning, rendered under the chart.
  explicit BarChart(std::vector<std::pair<char, std::string>> legend = {})
      : legend_(std::move(legend)) {}

  void add_bar(Bar bar) { bars_.push_back(std::move(bar)); }

  /// Render with bars scaled to at most `max_width` glyphs; exact counts are
  /// printed after each bar.
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;

 private:
  std::vector<std::pair<char, std::string>> legend_;
  std::vector<Bar> bars_;
};

}  // namespace dnslocate::report
