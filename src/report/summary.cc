#include "report/summary.h"

#include "report/aggregate.h"
#include "report/stats.h"

namespace dnslocate::report {

std::string run_summary(const atlas::MeasurementRun& run) {
  std::size_t total = run.records.size();
  std::size_t intercepted = run.intercepted_count();
  if (total == 0) return "No probes measured.";

  std::string out;
  auto proportion = wilson_interval(intercepted, total);
  out += "Of " + std::to_string(total) + " probes, " + std::to_string(intercepted) +
         " (" + proportion.to_string() + ") had DNS queries to public resolvers " +
         "transparently intercepted.";

  if (intercepted > 0) {
    std::size_t cpe = run.count_location(core::InterceptorLocation::cpe);
    std::size_t isp = run.count_location(core::InterceptorLocation::isp);
    std::size_t unknown = run.count_location(core::InterceptorLocation::unknown);
    out += " Localization: " + std::to_string(cpe) + " at the CPE, " + std::to_string(isp) +
           " within the ISP, " + std::to_string(unknown) + " unknown";
    if (cpe + isp > unknown) out += " — interception is close to the client in the majority";
    out += ".";

    auto orgs = figure3_rows(run, 1);
    if (!orgs.empty()) {
      out += " " + orgs[0].org + " has the most intercepted probes (" +
             std::to_string(orgs[0].total()) + ").";
    }

    std::size_t transparent = 0, modified = 0;
    for (const auto& record : run.records) {
      if (!record.verdict.transparency) continue;
      if (record.verdict.transparency->overall == core::TransparencyClass::transparent)
        ++transparent;
      else if (record.verdict.transparency->overall != core::TransparencyClass::indeterminate)
        ++modified;
    }
    if (transparent + modified > 0) {
      out += " " + std::to_string(transparent) + " interceptors resolved queries correctly " +
             "(transparent); " + std::to_string(modified) + " returned modified statuses.";
    }
  }

  auto matrix = accuracy_matrix(run);
  if (matrix.total() > 0 && matrix.correct() != matrix.total()) {
    char buffer[96];
    std::snprintf(buffer, sizeof buffer,
                  " Against ground truth the technique scored %.4f (%zu misattributions).",
                  matrix.accuracy(), matrix.total() - matrix.correct());
    out += buffer;
  } else if (matrix.total() > 0) {
    out += " Every verdict matched the simulated ground truth.";
  }
  return out;
}

}  // namespace dnslocate::report
