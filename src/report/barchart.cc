#include "report/barchart.h"

namespace dnslocate::report {

std::string BarChart::render(std::size_t max_width) const {
  std::size_t label_width = 0;
  std::size_t max_total = 1;
  for (const auto& bar : bars_) {
    label_width = std::max(label_width, bar.label.size());
    max_total = std::max(max_total, bar.total());
  }

  std::string out;
  for (const auto& bar : bars_) {
    out += bar.label + std::string(label_width - bar.label.size(), ' ') + " |";
    std::string body;
    for (const auto& segment : bar.segments) {
      // Round each segment to the scaled width, keeping at least one glyph
      // for non-zero segments so small categories stay visible.
      std::size_t width = segment.value * max_width / max_total;
      if (segment.value > 0 && width == 0) width = 1;
      body += std::string(width, segment.glyph);
    }
    out += body + "  (";
    for (std::size_t i = 0; i < bar.segments.size(); ++i) {
      if (i > 0) out += "/";
      out += std::to_string(bar.segments[i].value);
    }
    out += ")\n";
  }
  if (!legend_.empty()) {
    out += "legend:";
    for (const auto& [glyph, meaning] : legend_)
      out += std::string(" ") + glyph + "=" + meaning;
    out += "\n";
  }
  return out;
}

}  // namespace dnslocate::report
