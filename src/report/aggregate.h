// Aggregating fleet measurements into the paper's tables and figures.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "atlas/measurement.h"
#include "report/barchart.h"
#include "report/table.h"

namespace dnslocate::report {

// --- Table 4: intercepted probes per public resolver, v4 & v6 ---

struct Table4Row {
  std::string resolver;  // "Cloudflare DNS" ... or "All Intercepted"
  std::size_t intercepted_v4 = 0;
  std::size_t total_v4 = 0;
  std::size_t intercepted_v6 = 0;
  std::size_t total_v6 = 0;
};

std::vector<Table4Row> table4_rows(const atlas::MeasurementRun& run);
TextTable render_table4(const atlas::MeasurementRun& run);

// --- Table 5: version.bind strings from CPE-intercepted probes ---

/// (string, probe count), descending by count then string.
std::vector<std::pair<std::string, std::size_t>> table5_rows(const atlas::MeasurementRun& run);
TextTable render_table5(const atlas::MeasurementRun& run);

// --- Figure 3: intercepted probes per top-N org, by transparency ---

struct Fig3Row {
  std::string org;
  std::size_t transparent = 0;
  std::size_t status_modified = 0;
  std::size_t both = 0;

  [[nodiscard]] std::size_t total() const { return transparent + status_modified + both; }
};

std::vector<Fig3Row> figure3_rows(const atlas::MeasurementRun& run, std::size_t top_n = 15);
BarChart render_figure3(const atlas::MeasurementRun& run, std::size_t top_n = 15);

// --- Figure 4: interception location per top-N country / org ---

struct Fig4Row {
  std::string label;  // country code or org
  std::size_t cpe = 0;
  std::size_t isp = 0;
  std::size_t unknown = 0;

  [[nodiscard]] std::size_t total() const { return cpe + isp + unknown; }
};

std::vector<Fig4Row> figure4_by_country(const atlas::MeasurementRun& run, std::size_t top_n = 15);
std::vector<Fig4Row> figure4_by_org(const atlas::MeasurementRun& run, std::size_t top_n = 15);
BarChart render_figure4(const std::vector<Fig4Row>& rows);

// --- accuracy vs ground truth (our ablation A2) ---

/// cells[expected][measured] probe counts over InterceptorLocation.
struct ConfusionMatrix {
  std::size_t cells[core::kInterceptorLocationCount][core::kInterceptorLocationCount] = {};
  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t correct() const;
  [[nodiscard]] double accuracy() const;
};

ConfusionMatrix accuracy_matrix(const atlas::MeasurementRun& run);
TextTable render_confusion(const ConfusionMatrix& matrix);

/// Interception-pattern census (§4.1.1): all four / one intercepted /
/// one allowed / other, per family.
struct PatternCensus {
  std::size_t all_four = 0;
  std::size_t one_intercepted = 0;
  std::size_t one_allowed = 0;
  std::size_t other = 0;
};

PatternCensus pattern_census(const atlas::MeasurementRun& run, netbase::IpFamily family);

// --- retry / timeout census (loss-resilience observability) ---

/// Fleet-wide transport telemetry: how many queries, retry attempts, and
/// attempt timeouts the pipeline spent, summed over probe verdicts.
struct RetryCensus {
  core::TransportTelemetry totals;
  std::size_t probes = 0;
  std::size_t probes_with_retries = 0;
  std::size_t probes_with_timeouts = 0;

  /// Mean attempts per query (1.0 when retries never fired).
  [[nodiscard]] double attempts_per_query() const {
    return totals.queries == 0
               ? 0.0
               : static_cast<double>(totals.attempts) / static_cast<double>(totals.queries);
  }
};

RetryCensus retry_census(const atlas::MeasurementRun& run);
TextTable render_retry_census(const RetryCensus& census);

// --- run health census (fleet supervision observability) ---

/// Fleet-wide supervision summary: per-outcome counts, partial verdicts,
/// transport/fault totals, the slowest probes, and every failure with its
/// error text. This is the operator's first look at a long campaign — did
/// anything crash, hang, or get skipped, and where did the time go?
struct RunCensus {
  std::size_t probes = 0;  // records present in the run
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t deadline_exceeded = 0;
  std::size_t partial_verdicts = 0;  // stages skipped by cancellation
  std::size_t not_run = 0;           // planned but never started (early stop)
  core::TransportTelemetry telemetry;
  simnet::DropCounters drops;
  simnet::FaultPlan::Counters faults;
  std::chrono::microseconds total_elapsed{0};

  struct ProbeNote {
    std::uint32_t probe_id = 0;
    std::string org;
    std::chrono::microseconds elapsed{0};
    atlas::ProbeOutcome outcome = atlas::ProbeOutcome::ok;
    std::string error;
  };
  std::vector<ProbeNote> slowest;   // top-N by elapsed, descending
  std::vector<ProbeNote> failures;  // first N non-ok probes with error text

  [[nodiscard]] std::size_t failure_count() const { return failed + deadline_exceeded; }
};

RunCensus run_census(const atlas::MeasurementRun& run, std::size_t top_n = 5);
/// Outcome/telemetry table (deterministic; no wall-clock columns). The
/// slowest-probe timings are rendered separately by the examples.
TextTable render_run_census(const RunCensus& census);

/// Accuracy restricted to probes whose ground truth is "intercepted": the
/// localization part of the task (CPE / ISP / unknown), where loss-induced
/// misclassification concentrates.
struct LocalizationAccuracy {
  std::size_t intercepted_truth = 0;  // probes that are actually intercepted
  std::size_t correct = 0;
  std::size_t missed = 0;       // classified not_intercepted (false negative)
  std::size_t wrong_layer = 0;  // intercepted but at the wrong location
  std::size_t contested = 0;    // honest refusal: conflicting answers in path

  [[nodiscard]] double accuracy() const {
    return intercepted_truth == 0
               ? 1.0
               : static_cast<double>(correct) / static_cast<double>(intercepted_truth);
  }
};

LocalizationAccuracy localization_accuracy(const atlas::MeasurementRun& run);

}  // namespace dnslocate::report
