// Aggregating fleet measurements into the paper's tables and figures.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "atlas/measurement.h"
#include "report/barchart.h"
#include "report/table.h"

namespace dnslocate::report {

// --- Table 4: intercepted probes per public resolver, v4 & v6 ---

struct Table4Row {
  std::string resolver;  // "Cloudflare DNS" ... or "All Intercepted"
  std::size_t intercepted_v4 = 0;
  std::size_t total_v4 = 0;
  std::size_t intercepted_v6 = 0;
  std::size_t total_v6 = 0;
};

std::vector<Table4Row> table4_rows(const atlas::MeasurementRun& run);
TextTable render_table4(const atlas::MeasurementRun& run);

// --- Table 5: version.bind strings from CPE-intercepted probes ---

/// (string, probe count), descending by count then string.
std::vector<std::pair<std::string, std::size_t>> table5_rows(const atlas::MeasurementRun& run);
TextTable render_table5(const atlas::MeasurementRun& run);

// --- Figure 3: intercepted probes per top-N org, by transparency ---

struct Fig3Row {
  std::string org;
  std::size_t transparent = 0;
  std::size_t status_modified = 0;
  std::size_t both = 0;

  [[nodiscard]] std::size_t total() const { return transparent + status_modified + both; }
};

std::vector<Fig3Row> figure3_rows(const atlas::MeasurementRun& run, std::size_t top_n = 15);
BarChart render_figure3(const atlas::MeasurementRun& run, std::size_t top_n = 15);

// --- Figure 4: interception location per top-N country / org ---

struct Fig4Row {
  std::string label;  // country code or org
  std::size_t cpe = 0;
  std::size_t isp = 0;
  std::size_t unknown = 0;

  [[nodiscard]] std::size_t total() const { return cpe + isp + unknown; }
};

std::vector<Fig4Row> figure4_by_country(const atlas::MeasurementRun& run, std::size_t top_n = 15);
std::vector<Fig4Row> figure4_by_org(const atlas::MeasurementRun& run, std::size_t top_n = 15);
BarChart render_figure4(const std::vector<Fig4Row>& rows);

// --- accuracy vs ground truth (our ablation A2) ---

/// cells[expected][measured] probe counts over InterceptorLocation.
struct ConfusionMatrix {
  std::size_t cells[4][4] = {};
  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t correct() const;
  [[nodiscard]] double accuracy() const;
};

ConfusionMatrix accuracy_matrix(const atlas::MeasurementRun& run);
TextTable render_confusion(const ConfusionMatrix& matrix);

/// Interception-pattern census (§4.1.1): all four / one intercepted /
/// one allowed / other, per family.
struct PatternCensus {
  std::size_t all_four = 0;
  std::size_t one_intercepted = 0;
  std::size_t one_allowed = 0;
  std::size_t other = 0;
};

PatternCensus pattern_census(const atlas::MeasurementRun& run, netbase::IpFamily family);

}  // namespace dnslocate::report
