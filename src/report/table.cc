#include "report/table.h"

namespace dnslocate::report {
namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      line += "| " + cell + std::string(widths[i] - cell.size(), ' ') + " ";
    }
    line += "|\n";
    return line;
  };

  std::string out = render_row(headers_);
  std::string rule;
  for (std::size_t width : widths) rule += "|" + std::string(width + 2, '-');
  out += rule + "|\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::to_markdown() const {
  auto render_row = [](const std::vector<std::string>& row) {
    std::string line = "|";
    for (const auto& cell : row) {
      line += " ";
      for (char c : cell) {
        if (c == '|') line += "\\|";
        else line.push_back(c);
      }
      line += " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  out += "|";
  for (std::size_t i = 0; i < headers_.size(); ++i) out += "---|";
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::to_csv() const {
  std::string out;
  auto render_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      out += csv_escape(row[i]);
    }
    out += "\n";
  };
  render_row(headers_);
  for (const auto& row : rows_) render_row(row);
  return out;
}

}  // namespace dnslocate::report
