// Small statistics helpers for measurement proportions: Wilson score
// intervals (the standard choice for binomial proportions like "fraction of
// probes intercepted") and a two-proportion comparison used by the shape
// checks.
#pragma once

#include <cstddef>
#include <string>

namespace dnslocate::report {

/// A binomial proportion with its Wilson score interval.
struct Proportion {
  double estimate = 0;  // successes / trials
  double low = 0;       // interval bounds, clamped to [0, 1]
  double high = 0;

  [[nodiscard]] std::string to_string() const;  // "1.71% [1.47%, 2.00%]"
};

/// Wilson score interval. `z` defaults to the 95% normal quantile.
/// trials == 0 yields the degenerate [0, 1] interval.
Proportion wilson_interval(std::size_t successes, std::size_t trials, double z = 1.959964);

/// True if the two proportions' 95% intervals do not overlap — a
/// conservative "clearly different" check used in shape assertions.
bool clearly_different(const Proportion& a, const Proportion& b);

}  // namespace dnslocate::report
