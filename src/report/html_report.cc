#include "report/html_report.h"

#include "obs/export.h"
#include "obs/metrics.h"
#include "report/aggregate.h"
#include "report/stats.h"

namespace dnslocate::report {

std::string html_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

void open_section(std::string& out, const std::string& heading) {
  out += "<section><h2>" + html_escape(heading) + "</h2>\n";
}

void table_header(std::string& out, std::initializer_list<const char*> columns) {
  out += "<table><thead><tr>";
  for (const char* column : columns) out += "<th>" + html_escape(column) + "</th>";
  out += "</tr></thead><tbody>\n";
}

void cell(std::string& out, const std::string& value) {
  out += "<td>" + html_escape(value) + "</td>";
}

/// Inline stacked bar: widths as percentages of `scale`.
std::string stacked_bar(std::size_t a, std::size_t b, std::size_t c, std::size_t scale) {
  auto percent = [scale](std::size_t value) {
    return scale == 0 ? 0.0 : 100.0 * static_cast<double>(value) / static_cast<double>(scale);
  };
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "<div class=\"bar\">"
                "<span class=\"s1\" style=\"width:%.1f%%\"></span>"
                "<span class=\"s2\" style=\"width:%.1f%%\"></span>"
                "<span class=\"s3\" style=\"width:%.1f%%\"></span></div>",
                percent(a), percent(b), percent(c));
  return buffer;
}

}  // namespace

std::string html_report(const atlas::MeasurementRun& run, const HtmlReportOptions& options) {
  std::string out;
  out += "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n<title>" +
         html_escape(options.title) + "</title>\n<style>\n";
  out +=
      "body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:60rem;color:#222}\n"
      "table{border-collapse:collapse;margin:1rem 0}\n"
      "th,td{border:1px solid #bbb;padding:.3rem .6rem;text-align:left;"
      "font-variant-numeric:tabular-nums}\n"
      "th{background:#f0f0f0}\n"
      ".bar{display:flex;width:16rem;height:1rem;background:#eee}\n"
      ".s1{background:#2b6cb0}.s2{background:#c05621}.s3{background:#718096}\n"
      ".legend span{display:inline-block;width:.8rem;height:.8rem;margin:0 .3rem 0 1rem}\n"
      "</style></head><body>\n";
  out += "<h1>" + html_escape(options.title) + "</h1>\n";
  out += "<p>" + std::to_string(run.records.size()) + " probes measured, " +
         std::to_string(run.intercepted_count()) + " intercepted.</p>\n";

  // Table 4.
  open_section(out, "Intercepted probes per public resolver (Table 4)");
  table_header(out, {"Resolver", "Intercepted v4", "Total v4", "v4 (Wilson 95%)",
                     "Intercepted v6", "Total v6"});
  for (const auto& row : table4_rows(run)) {
    out += "<tr>";
    cell(out, row.resolver);
    cell(out, std::to_string(row.intercepted_v4));
    cell(out, std::to_string(row.total_v4));
    cell(out, wilson_interval(row.intercepted_v4, row.total_v4).to_string());
    cell(out, std::to_string(row.intercepted_v6));
    cell(out, std::to_string(row.total_v6));
    out += "</tr>\n";
  }
  out += "</tbody></table></section>\n";

  // Table 5.
  open_section(out, "version.bind strings of CPE interceptors (Table 5)");
  table_header(out, {"version.bind response", "# probes"});
  for (const auto& [text, count] : table5_rows(run)) {
    out += "<tr>";
    cell(out, text);
    cell(out, std::to_string(count));
    out += "</tr>\n";
  }
  out += "</tbody></table></section>\n";

  // Figure 3.
  auto fig3 = figure3_rows(run, options.top_n);
  std::size_t fig3_max = 1;
  for (const auto& row : fig3) fig3_max = std::max(fig3_max, row.total());
  open_section(out, "Intercepted probes per organization, by transparency (Figure 3)");
  out += "<p class=\"legend\"><span class=\"s1\"></span>Transparent"
         "<span class=\"s2\"></span>Status modified<span class=\"s3\"></span>Both</p>\n";
  table_header(out, {"Organization", "", "T/M/B"});
  for (const auto& row : fig3) {
    out += "<tr>";
    cell(out, row.org);
    out += "<td>" + stacked_bar(row.transparent, row.status_modified, row.both, fig3_max) +
           "</td>";
    cell(out, std::to_string(row.transparent) + "/" + std::to_string(row.status_modified) +
              "/" + std::to_string(row.both));
    out += "</tr>\n";
  }
  out += "</tbody></table></section>\n";

  // Figure 4 (countries + orgs).
  for (bool by_country : {true, false}) {
    auto rows = by_country ? figure4_by_country(run, options.top_n)
                           : figure4_by_org(run, options.top_n);
    std::size_t scale = 1;
    for (const auto& row : rows) scale = std::max(scale, row.total());
    open_section(out, by_country ? "Interception location per country (Figure 4a)"
                                 : "Interception location per organization (Figure 4b)");
    out += "<p class=\"legend\"><span class=\"s1\"></span>CPE"
           "<span class=\"s2\"></span>Within ISP<span class=\"s3\"></span>Unknown</p>\n";
    table_header(out, {by_country ? "Country" : "Organization", "", "CPE/ISP/?"});
    for (const auto& row : rows) {
      out += "<tr>";
      cell(out, row.label);
      out += "<td>" + stacked_bar(row.cpe, row.isp, row.unknown, scale) + "</td>";
      cell(out, std::to_string(row.cpe) + "/" + std::to_string(row.isp) + "/" +
                std::to_string(row.unknown));
      out += "</tr>\n";
    }
    out += "</tbody></table></section>\n";
  }

  if (options.include_accuracy) {
    auto matrix = accuracy_matrix(run);
    open_section(out, "Technique vs ground truth");
    char buffer[128];
    std::snprintf(buffer, sizeof buffer, "<p>accuracy %.4f (%zu/%zu)</p>\n",
                  matrix.accuracy(), matrix.correct(), matrix.total());
    out += buffer;
    static constexpr const char* kNames[] = {"not intercepted", "CPE", "within ISP",
                                             "unknown"};
    table_header(out, {"expected \\ measured", kNames[0], kNames[1], kNames[2], kNames[3]});
    for (std::size_t i = 0; i < 4; ++i) {
      out += "<tr>";
      cell(out, kNames[i]);
      for (std::size_t j = 0; j < 4; ++j) cell(out, std::to_string(matrix.cells[i][j]));
      out += "</tr>\n";
    }
    out += "</tbody></table></section>\n";
  }

  // Run health: supervision outcomes and transport/fault totals. Only the
  // deterministic fields are rendered — wall-clock timings stay out so a
  // resumed run's report is byte-identical to an uninterrupted one.
  {
    auto census = run_census(run);
    open_section(out, "Run health");
    table_header(out, {"Metric", "Value"});
    auto row = [&out](const char* metric, std::size_t value) {
      out += "<tr>";
      cell(out, metric);
      cell(out, std::to_string(value));
      out += "</tr>\n";
    };
    row("probes measured", census.probes);
    row("ok", census.ok);
    row("failed", census.failed);
    row("deadline exceeded", census.deadline_exceeded);
    row("partial verdicts", census.partial_verdicts);
    row("not run (stopped early)", census.not_run);
    row("queries", census.telemetry.queries);
    row("retry attempts", census.telemetry.retries);
    row("attempt timeouts", census.telemetry.timeouts);
    row("fault drops", census.faults.drops());
    row("injected faults", census.faults.reordered + census.faults.duplicated +
                               census.faults.truncated + census.faults.jittered);
    out += "</tbody></table>\n";
    if (!census.failures.empty()) {
      table_header(out, {"Probe", "Organization", "Outcome", "Error"});
      for (const auto& note : census.failures) {
        out += "<tr>";
        cell(out, std::to_string(note.probe_id));
        cell(out, note.org);
        cell(out, std::string(to_string(note.outcome)));
        cell(out, note.error);
        out += "</tr>\n";
      }
      out += "</tbody></table>\n";
    }
    out += "</section>\n";
  }

  // Observability: only rendered when the metrics registry was live during
  // the run, so default reports stay byte-for-byte what they were before.
  if (obs::metrics_enabled()) {
    auto snapshot = obs::registry().snapshot();
    open_section(out, "Observability");
    table_header(out, {"Metric", "Value"});
    for (const auto& [name, value] : snapshot.counters) {
      out += "<tr>";
      cell(out, name);
      cell(out, std::to_string(value));
      out += "</tr>\n";
    }
    for (const auto& [name, value] : snapshot.gauges) {
      out += "<tr>";
      cell(out, name);
      cell(out, std::to_string(value));
      out += "</tr>\n";
    }
    for (const auto& [name, hist] : snapshot.histograms) {
      out += "<tr>";
      cell(out, name);
      cell(out, std::to_string(hist.count) + " samples, sum " + std::to_string(hist.sum));
      out += "</tr>\n";
    }
    out += "</tbody></table>\n";
    // The full snapshot rides along machine-readable; tools can pull it
    // back out of the report with a JSON parse of this one element.
    out += "<script type=\"application/json\" id=\"dnslocate-metrics\">";
    out += obs::metrics_json(snapshot).dump();
    out += "</script>\n</section>\n";
  }

  out += "</body></html>\n";
  return out;
}

}  // namespace dnslocate::report
