// Self-contained HTML report of a measurement run: every table and figure
// of the pilot study in one shareable file (no external assets, inline CSS
// bar charts).
#pragma once

#include <string>

#include "atlas/measurement.h"

namespace dnslocate::report {

struct HtmlReportOptions {
  std::string title = "dnslocate pilot study";
  std::size_t top_n = 15;
  bool include_accuracy = true;
};

/// Render the full report page.
std::string html_report(const atlas::MeasurementRun& run, const HtmlReportOptions& options = {});

/// Escape text for HTML element content.
std::string html_escape(std::string_view text);

}  // namespace dnslocate::report
