#include "report/results_io.h"

namespace dnslocate::report {
namespace {

using core::InterceptorLocation;
using core::TransparencyClass;
using jsonio::Array;
using jsonio::Object;
using jsonio::Value;

constexpr std::string_view kLocationNames[] = {"not_intercepted", "cpe", "isp", "unknown",
                                               "contested"};
constexpr std::string_view kTransparencyNames[] = {"transparent", "status_modified", "both",
                                                   "indeterminate"};

std::optional<InterceptorLocation> location_from(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kLocationNames); ++i)
    if (kLocationNames[i] == name) return static_cast<InterceptorLocation>(i);
  return std::nullopt;
}

std::optional<TransparencyClass> transparency_from(const std::string& name) {
  for (std::size_t i = 0; i < 4; ++i)
    if (kTransparencyNames[i] == name) return static_cast<TransparencyClass>(i);
  return std::nullopt;
}

Object resolver_to_json(const core::ResolverInterception& summary) {
  Object out;
  out["tested_v4"] = summary.tested_v4;
  out["tested_v6"] = summary.tested_v6;
  out["intercepted_v4"] = summary.intercepted_v4;
  out["intercepted_v6"] = summary.intercepted_v6;
  return out;
}

}  // namespace

Value probe_to_json(const atlas::ProbeRecord& record) {
  Object out;
  out["probe_id"] = static_cast<std::uint64_t>(record.probe_id);
  out["org"] = record.org.org;
  out["asn"] = static_cast<std::uint64_t>(record.org.asn);
  out["country"] = record.org.country;
  out["tested_v6"] = record.tested_v6;
  out["location"] =
      std::string(kLocationNames[static_cast<std::size_t>(record.verdict.location)]);
  // Supervision fields, emitted only when non-default so pre-supervision
  // exports stay byte-identical (missing = a clean, complete probe).
  if (record.outcome != atlas::ProbeOutcome::ok)
    out["outcome"] = std::string(to_string(record.outcome));
  if (!record.error.empty()) out["probe_error"] = record.error;
  if (record.verdict.skipped_stages != 0)
    out["skipped_stages"] = static_cast<std::uint64_t>(record.verdict.skipped_stages);

  Object detection;
  for (const auto& summary : record.verdict.detection.per_resolver)
    detection[std::string(to_string(summary.kind))] = resolver_to_json(summary);
  out["detection"] = std::move(detection);

  if (record.verdict.transparency) {
    out["transparency"] = std::string(
        kTransparencyNames[static_cast<std::size_t>(record.verdict.transparency->overall)]);
  }
  if (record.verdict.cpe_check && record.verdict.cpe_check->cpe.has_string())
    out["cpe_version_bind"] = *record.verdict.cpe_check->cpe.txt;
  if (record.verdict.bogon) out["bogon_answered"] = record.verdict.bogon->within_isp();

  Object truth;
  truth["cpe_intercepts"] = record.truth.cpe_intercepts;
  truth["isp_intercepts_v4"] = record.truth.isp_intercepts_v4;
  truth["external_intercepts"] = record.truth.external_intercepts;
  truth["expected"] =
      std::string(kLocationNames[static_cast<std::size_t>(record.truth.expected)]);
  out["truth"] = std::move(truth);
  return Value(std::move(out));
}

std::string run_to_jsonl(const atlas::MeasurementRun& run) {
  std::string out;
  for (const auto& record : run.records) {
    out += probe_to_json(record).dump();
    out += "\n";
  }
  return out;
}

JsonlLoadResult run_from_jsonl(std::string_view text) {
  JsonlLoadResult result;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t newline = text.find('\n', start);
    std::string_view line = newline == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, newline - start);
    start = newline == std::string_view::npos ? text.size() : newline + 1;
    ++line_number;
    if (line.empty()) continue;

    jsonio::ParseError error;
    auto value = jsonio::parse(line, &error);
    if (!value || !value->is_object()) {
      result.errors.push_back("line " + std::to_string(line_number) + ": " +
                              (value ? "not an object" : error.message));
      continue;
    }

    atlas::ProbeRecord record;
    record.probe_id = static_cast<std::uint32_t>((*value)["probe_id"].as_int());
    record.org.org = (*value)["org"].as_string();
    record.org.asn = static_cast<std::uint32_t>((*value)["asn"].as_int());
    record.org.country = (*value)["country"].as_string();
    record.tested_v6 = (*value)["tested_v6"].as_bool();

    auto location = location_from((*value)["location"].as_string());
    if (!location) {
      result.errors.push_back("line " + std::to_string(line_number) + ": bad location");
      continue;
    }
    record.verdict.location = *location;

    if ((*value)["outcome"].is_string()) {
      if (auto outcome = atlas::probe_outcome_from((*value)["outcome"].as_string()))
        record.outcome = *outcome;
    }
    record.error = (*value)["probe_error"].as_string();
    record.verdict.skipped_stages =
        static_cast<std::uint8_t>((*value)["skipped_stages"].as_int());

    const auto& detection = (*value)["detection"];
    for (auto kind : resolvers::all_public_resolvers()) {
      const auto& entry = detection[std::string(to_string(kind))];
      auto& summary = record.verdict.detection.per_resolver[static_cast<std::size_t>(kind)];
      summary.kind = kind;
      summary.tested_v4 = entry["tested_v4"].as_bool();
      summary.tested_v6 = entry["tested_v6"].as_bool();
      summary.intercepted_v4 = entry["intercepted_v4"].as_bool();
      summary.intercepted_v6 = entry["intercepted_v6"].as_bool();
    }

    if ((*value)["transparency"].is_string()) {
      if (auto transparency = transparency_from((*value)["transparency"].as_string())) {
        core::TransparencyReport report;
        report.overall = *transparency;
        record.verdict.transparency = std::move(report);
      }
    }
    if ((*value)["cpe_version_bind"].is_string()) {
      core::CpeCheckReport check;
      check.cpe.answered = true;
      check.cpe.txt = (*value)["cpe_version_bind"].as_string();
      check.cpe.display = *check.cpe.txt;
      check.cpe_is_interceptor = record.verdict.location == InterceptorLocation::cpe;
      record.verdict.cpe_check = std::move(check);
    }
    if ((*value)["bogon_answered"].is_bool()) {
      core::BogonReport bogon;
      bogon.v4.tested = true;
      if ((*value)["bogon_answered"].as_bool())
        bogon.v4.a_query.status = core::QueryResult::Status::answered;
      record.verdict.bogon = std::move(bogon);
    }

    const auto& truth = (*value)["truth"];
    record.truth.cpe_intercepts = truth["cpe_intercepts"].as_bool();
    record.truth.isp_intercepts_v4 = truth["isp_intercepts_v4"].as_bool();
    record.truth.external_intercepts = truth["external_intercepts"].as_bool();
    if (auto expected = location_from(truth["expected"].as_string()))
      record.truth.expected = *expected;

    result.run.records.push_back(std::move(record));
  }
  return result;
}

}  // namespace dnslocate::report
