#include "report/aggregate.h"

#include <algorithm>
#include <cstdio>

namespace dnslocate::report {
namespace {

using atlas::MeasurementRun;
using atlas::ProbeRecord;
using core::InterceptorLocation;
using resolvers::PublicResolverKind;

/// Sorts (label -> row) maps by total, descending, keeping the top N.
template <typename Row>
std::vector<Row> top_rows(std::map<std::string, Row> by_label, std::size_t top_n) {
  std::vector<Row> rows;
  rows.reserve(by_label.size());
  for (auto& [label, row] : by_label) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.total() > b.total(); });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

}  // namespace

std::vector<Table4Row> table4_rows(const MeasurementRun& run) {
  std::vector<Table4Row> rows;
  for (PublicResolverKind kind : resolvers::all_public_resolvers()) {
    Table4Row row;
    row.resolver = std::string(to_string(kind));
    for (const ProbeRecord& record : run.records) {
      const auto& summary = record.verdict.detection.of(kind);
      if (summary.tested_v4) {
        ++row.total_v4;
        if (summary.intercepted_v4) ++row.intercepted_v4;
      }
      if (summary.tested_v6) {
        ++row.total_v6;
        if (summary.intercepted_v6) ++row.intercepted_v6;
      }
    }
    rows.push_back(std::move(row));
  }

  Table4Row all;
  all.resolver = "All Intercepted";
  for (const ProbeRecord& record : run.records) {
    const auto& detection = record.verdict.detection;
    bool tested_all_v4 = true, tested_all_v6 = true;
    for (const auto& summary : detection.per_resolver) {
      tested_all_v4 = tested_all_v4 && summary.tested_v4;
      tested_all_v6 = tested_all_v6 && summary.tested_v6;
    }
    if (tested_all_v4) {
      ++all.total_v4;
      if (detection.all_four_intercepted(netbase::IpFamily::v4)) ++all.intercepted_v4;
    }
    if (tested_all_v6) {
      ++all.total_v6;
      if (detection.all_four_intercepted(netbase::IpFamily::v6)) ++all.intercepted_v6;
    }
  }
  rows.push_back(std::move(all));
  return rows;
}

TextTable render_table4(const MeasurementRun& run) {
  TextTable table({"Resolver", "Intercepted v4", "Total v4", "Intercepted v6", "Total v6"});
  for (const Table4Row& row : table4_rows(run)) {
    table.add_row({row.resolver, std::to_string(row.intercepted_v4),
                   std::to_string(row.total_v4), std::to_string(row.intercepted_v6),
                   std::to_string(row.total_v6)});
  }
  return table;
}

std::vector<std::pair<std::string, std::size_t>> table5_rows(const MeasurementRun& run) {
  std::map<std::string, std::size_t> counts;
  for (const ProbeRecord& record : run.records) {
    if (record.verdict.location != InterceptorLocation::cpe) continue;
    if (!record.verdict.cpe_check || !record.verdict.cpe_check->cpe.has_string()) continue;
    ++counts[*record.verdict.cpe_check->cpe.txt];
  }
  std::vector<std::pair<std::string, std::size_t>> rows(counts.begin(), counts.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return rows;
}

TextTable render_table5(const MeasurementRun& run) {
  TextTable table({"version.bind Response", "# Probes"});
  for (const auto& [text, count] : table5_rows(run))
    table.add_row({text, std::to_string(count)});
  return table;
}

std::vector<Fig3Row> figure3_rows(const MeasurementRun& run, std::size_t top_n) {
  std::map<std::string, Fig3Row> by_org;
  for (const ProbeRecord& record : run.records) {
    if (!record.verdict.intercepted() || !record.verdict.transparency) continue;
    Fig3Row& row = by_org[record.org.org];
    row.org = record.org.org;
    switch (record.verdict.transparency->overall) {
      case core::TransparencyClass::transparent: ++row.transparent; break;
      case core::TransparencyClass::status_modified: ++row.status_modified; break;
      case core::TransparencyClass::both: ++row.both; break;
      case core::TransparencyClass::indeterminate: break;
    }
  }
  return top_rows(std::move(by_org), top_n);
}

BarChart render_figure3(const MeasurementRun& run, std::size_t top_n) {
  BarChart chart({{'#', "Transparent"}, {'X', "Status Modified"}, {'%', "Both"}});
  for (const Fig3Row& row : figure3_rows(run, top_n)) {
    chart.add_bar(Bar{row.org,
                      {{row.transparent, '#'}, {row.status_modified, 'X'}, {row.both, '%'}}});
  }
  return chart;
}

namespace {

std::vector<Fig4Row> figure4_rows(const MeasurementRun& run, std::size_t top_n,
                                  bool by_country) {
  std::map<std::string, Fig4Row> by_label;
  for (const ProbeRecord& record : run.records) {
    if (!record.verdict.intercepted()) continue;
    std::string label = by_country ? record.org.country : record.org.org;
    Fig4Row& row = by_label[label];
    row.label = label;
    switch (record.verdict.location) {
      case InterceptorLocation::cpe: ++row.cpe; break;
      case InterceptorLocation::isp: ++row.isp; break;
      case InterceptorLocation::unknown: ++row.unknown; break;
      // Figure 4 keeps the paper's three categories; contested probes carry
      // no location claim to chart.
      case InterceptorLocation::contested: break;
      case InterceptorLocation::not_intercepted: break;
    }
  }
  return top_rows(std::move(by_label), top_n);
}

}  // namespace

std::vector<Fig4Row> figure4_by_country(const MeasurementRun& run, std::size_t top_n) {
  return figure4_rows(run, top_n, true);
}

std::vector<Fig4Row> figure4_by_org(const MeasurementRun& run, std::size_t top_n) {
  return figure4_rows(run, top_n, false);
}

BarChart render_figure4(const std::vector<Fig4Row>& rows) {
  BarChart chart({{'C', "CPE"}, {'I', "within ISP"}, {'?', "unknown"}});
  for (const Fig4Row& row : rows)
    chart.add_bar(Bar{row.label, {{row.cpe, 'C'}, {row.isp, 'I'}, {row.unknown, '?'}}});
  return chart;
}

std::size_t ConfusionMatrix::total() const {
  std::size_t sum = 0;
  for (const auto& row : cells)
    for (std::size_t cell : row) sum += cell;
  return sum;
}

std::size_t ConfusionMatrix::correct() const {
  std::size_t sum = 0;
  for (std::size_t i = 0; i < core::kInterceptorLocationCount; ++i) sum += cells[i][i];
  return sum;
}

double ConfusionMatrix::accuracy() const {
  std::size_t all = total();
  return all == 0 ? 1.0 : static_cast<double>(correct()) / static_cast<double>(all);
}

ConfusionMatrix accuracy_matrix(const MeasurementRun& run) {
  ConfusionMatrix matrix;
  for (const ProbeRecord& record : run.records) {
    auto expected = static_cast<std::size_t>(record.truth.expected);
    auto measured = static_cast<std::size_t>(record.verdict.location);
    ++matrix.cells[expected][measured];
  }
  return matrix;
}

TextTable render_confusion(const ConfusionMatrix& matrix) {
  static constexpr const char* kNames[] = {"not intercepted", "CPE", "within ISP", "unknown",
                                           "contested"};
  static_assert(std::size(kNames) == core::kInterceptorLocationCount);
  std::vector<std::string> header{"expected \\ measured"};
  for (const char* name : kNames) header.emplace_back(name);
  TextTable table(header);
  for (std::size_t i = 0; i < core::kInterceptorLocationCount; ++i) {
    std::vector<std::string> row{kNames[i]};
    for (std::size_t j = 0; j < core::kInterceptorLocationCount; ++j)
      row.push_back(std::to_string(matrix.cells[i][j]));
    table.add_row(row);
  }
  return table;
}

RetryCensus retry_census(const MeasurementRun& run) {
  RetryCensus census;
  for (const ProbeRecord& record : run.records) {
    ++census.probes;
    census.totals += record.verdict.telemetry;
    if (record.verdict.telemetry.retries > 0) ++census.probes_with_retries;
    if (record.verdict.telemetry.timeouts > 0) ++census.probes_with_timeouts;
  }
  return census;
}

TextTable render_retry_census(const RetryCensus& census) {
  TextTable table({"Metric", "Value"});
  table.add_row({"probes", std::to_string(census.probes)});
  table.add_row({"queries", std::to_string(census.totals.queries)});
  table.add_row({"attempts", std::to_string(census.totals.attempts)});
  table.add_row({"retries", std::to_string(census.totals.retries)});
  table.add_row({"attempt timeouts", std::to_string(census.totals.timeouts)});
  table.add_row({"answered queries", std::to_string(census.totals.answered)});
  table.add_row({"probes with retries", std::to_string(census.probes_with_retries)});
  table.add_row({"probes with timeouts", std::to_string(census.probes_with_timeouts)});
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", census.attempts_per_query());
  table.add_row({"attempts per query", buffer});
  return table;
}

RunCensus run_census(const MeasurementRun& run, std::size_t top_n) {
  RunCensus census;
  census.not_run = run.not_run;
  for (const ProbeRecord& record : run.records) {
    ++census.probes;
    switch (record.outcome) {
      case atlas::ProbeOutcome::ok: ++census.ok; break;
      case atlas::ProbeOutcome::failed: ++census.failed; break;
      case atlas::ProbeOutcome::deadline_exceeded: ++census.deadline_exceeded; break;
    }
    if (record.verdict.partial()) ++census.partial_verdicts;
    census.telemetry += record.verdict.telemetry;
    census.drops += record.drops;
    census.faults.burst_drops += record.faults.burst_drops;
    census.faults.random_drops += record.faults.random_drops;
    census.faults.reordered += record.faults.reordered;
    census.faults.duplicated += record.faults.duplicated;
    census.faults.truncated += record.faults.truncated;
    census.faults.jittered += record.faults.jittered;
    census.total_elapsed += record.elapsed;

    RunCensus::ProbeNote note{record.probe_id, record.org.org, record.elapsed,
                              record.outcome, record.error};
    if (record.outcome != atlas::ProbeOutcome::ok && census.failures.size() < top_n)
      census.failures.push_back(note);
    census.slowest.push_back(std::move(note));
  }
  std::sort(census.slowest.begin(), census.slowest.end(),
            [](const RunCensus::ProbeNote& a, const RunCensus::ProbeNote& b) {
              return a.elapsed != b.elapsed ? a.elapsed > b.elapsed
                                            : a.probe_id < b.probe_id;
            });
  if (census.slowest.size() > top_n) census.slowest.resize(top_n);
  return census;
}

TextTable render_run_census(const RunCensus& census) {
  TextTable table({"Metric", "Value"});
  table.add_row({"probes measured", std::to_string(census.probes)});
  table.add_row({"ok", std::to_string(census.ok)});
  table.add_row({"failed", std::to_string(census.failed)});
  table.add_row({"deadline exceeded", std::to_string(census.deadline_exceeded)});
  table.add_row({"partial verdicts", std::to_string(census.partial_verdicts)});
  table.add_row({"not run (stopped early)", std::to_string(census.not_run)});
  table.add_row({"queries", std::to_string(census.telemetry.queries)});
  table.add_row({"retry attempts", std::to_string(census.telemetry.retries)});
  table.add_row({"attempt timeouts", std::to_string(census.telemetry.timeouts)});
  table.add_row({"fault drops", std::to_string(census.faults.drops())});
  table.add_row({"injected faults",
                 std::to_string(census.faults.reordered + census.faults.duplicated +
                                census.faults.truncated + census.faults.jittered)});
  return table;
}

LocalizationAccuracy localization_accuracy(const MeasurementRun& run) {
  LocalizationAccuracy accuracy;
  for (const ProbeRecord& record : run.records) {
    if (record.truth.expected == InterceptorLocation::not_intercepted) continue;
    ++accuracy.intercepted_truth;
    if (record.verdict.location == record.truth.expected) {
      ++accuracy.correct;
    } else if (record.verdict.location == InterceptorLocation::not_intercepted) {
      ++accuracy.missed;
    } else if (record.verdict.location == InterceptorLocation::contested) {
      ++accuracy.contested;
    } else {
      ++accuracy.wrong_layer;
    }
  }
  return accuracy;
}

PatternCensus pattern_census(const MeasurementRun& run, netbase::IpFamily family) {
  PatternCensus census;
  for (const ProbeRecord& record : run.records) {
    const auto& detection = record.verdict.detection;
    std::size_t intercepted = detection.intercepted_kinds(family).size();
    if (intercepted == 0) continue;
    if (intercepted == 4) ++census.all_four;
    else if (intercepted == 1) ++census.one_intercepted;
    else if (intercepted == 3) ++census.one_allowed;
    else ++census.other;
  }
  return census;
}

}  // namespace dnslocate::report
