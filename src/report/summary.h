// Executive summary of a measurement run: the prose a study README leads
// with, generated from the data.
#pragma once

#include <string>

#include "atlas/measurement.h"

namespace dnslocate::report {

/// A short paragraph: probe/interception counts, the location split, the
/// dominant organization, the transparency split, and (when ground truth
/// is present) the technique's accuracy.
std::string run_summary(const atlas::MeasurementRun& run);

}  // namespace dnslocate::report
