#include "report/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dnslocate::report {

std::string Proportion::to_string() const {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.2f%% [%.2f%%, %.2f%%]", estimate * 100, low * 100,
                high * 100);
  return buffer;
}

Proportion wilson_interval(std::size_t successes, std::size_t trials, double z) {
  Proportion out;
  if (trials == 0) {
    out.high = 1;
    return out;
  }
  double n = static_cast<double>(trials);
  double p = static_cast<double>(successes) / n;
  out.estimate = p;
  double z2 = z * z;
  double denominator = 1 + z2 / n;
  double centre = p + z2 / (2 * n);
  double margin = z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n));
  out.low = std::max(0.0, (centre - margin) / denominator);
  out.high = std::min(1.0, (centre + margin) / denominator);
  return out;
}

bool clearly_different(const Proportion& a, const Proportion& b) {
  return a.high < b.low || b.high < a.low;
}

}  // namespace dnslocate::report
