#!/usr/bin/env bash
# Smoke test for the resident measurement service (dnslocated): boot the
# daemon, drive one fleet through the HTTP/JSON control plane end to end,
# and check that SIGTERM drains cleanly. Gates in CI (service-smoke job);
# run locally as:  tools/service_smoke.sh [path/to/dnslocated]
set -euo pipefail

BIN=${1:-./build/examples/dnslocated}
[ -x "$BIN" ] && BIN=$(readlink -f "$BIN") || { echo "FAIL: daemon binary not found at $BIN" >&2; exit 1; }

STATE=$(mktemp -d /tmp/dnslocate-smoke-XXXXXX)
DAEMON=0
cleanup() {
  [ "$DAEMON" -gt 0 ] && kill -9 "$DAEMON" 2>/dev/null || true
  rm -rf "$STATE"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

"$BIN" --state-dir "$STATE" --port-file "$STATE/port" &
DAEMON=$!

for _ in $(seq 1 100); do [ -s "$STATE/port" ] && break; sleep 0.1; done
[ -s "$STATE/port" ] || fail "daemon never wrote its port file"
BASE="http://127.0.0.1:$(cat "$STATE/port")"
echo "daemon up at $BASE (state: $STATE)"

# --- health ---------------------------------------------------------------
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"

# --- malformed JSON must come back 400 with a byte-offset diagnostic ------
BAD=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/fleets" -d '{"oops":')
[ "$BAD" = 400 ] || fail "malformed plan answered $BAD, expected 400"
curl -sS -X POST "$BASE/v1/fleets" -d '{"oops":' | grep -q '"offset"' \
  || fail "400 body carries no parse offset"

# --- submit a small paced fleet -------------------------------------------
PLAN='{"seed": 11, "tenant": "smoke", "orgs": [
        {"org": "SmokeNet", "asn": 64900, "country": "US", "probes": 30,
         "cpe_xb6": 2, "isp_allfour": 1},
        {"org": "CleanNet", "asn": 64901, "country": "DE", "probes": 10}]}'
SUBMIT=$(curl -fsS -X POST "$BASE/v1/fleets" -H 'Content-Type: application/json' -d "$PLAN")
ID=$(echo "$SUBMIT" | grep -o 'run-[0-9]*' | head -1)
[ -n "$ID" ] || fail "submit returned no run id: $SUBMIT"
echo "submitted $ID"

# --- poll to completion ---------------------------------------------------
STATUS=""
for _ in $(seq 1 300); do
  STATUS=$(curl -fsS "$BASE/v1/fleets/$ID")
  echo "$STATUS" | grep -q '"state":"completed"' && break
  echo "$STATUS" | grep -qE '"state":"(failed|cancelled)"' && fail "run ended badly: $STATUS"
  sleep 0.2
done
echo "$STATUS" | grep -q '"state":"completed"' || fail "run never completed: $STATUS"

# --- verdict stream line count == census probe count ----------------------
PROBES=$(echo "$STATUS" | grep -o '"probes":[0-9]*' | head -1 | cut -d: -f2)
VERDICTS=$(curl -fsS "$BASE/v1/fleets/$ID/verdicts" | wc -l)
[ "$VERDICTS" = "$PROBES" ] || fail "verdict stream has $VERDICTS lines, census says $PROBES probes"
echo "verdicts match census: $VERDICTS/$PROBES"

# --- resumable stream cursor ----------------------------------------------
TAIL=$(curl -fsS "$BASE/v1/fleets/$ID/verdicts?from_seq=$((PROBES - 5))" | wc -l)
[ "$TAIL" = 5 ] || fail "from_seq cursor returned $TAIL lines, expected 5"

# --- metrics scrape -------------------------------------------------------
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^transport_queries_total' || fail "metrics missing transport_queries_total"
echo "$METRICS" | grep -q '^probe_ok_total' || fail "metrics missing probe_ok_total"

# --- SIGTERM: clean drain, exit 0 -----------------------------------------
kill -TERM "$DAEMON"
WAITED=0
if wait "$DAEMON"; then WAITED=0; else WAITED=$?; fi
DAEMON=0
[ "$WAITED" = 0 ] || fail "daemon exited $WAITED after SIGTERM, expected clean drain + 0"
echo "PASS: service smoke complete"
