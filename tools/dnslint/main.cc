// dnslint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   dnslint --root <repo> [--compile-commands build/compile_commands.json]
//           [file...]
//
// With no positional files, lints every source discovered under <root>/src
// (compilation database entries plus a directory walk for headers).
#include <cstdio>
#include <string>
#include <vector>

#include "dnslint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compile_commands;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dnslint: %s requires a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = next();
      if (!v) return 2;
      root = v;
    } else if (arg == "--compile-commands") {
      const char* v = next();
      if (!v) return 2;
      compile_commands = v;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: dnslint --root <repo> [--compile-commands <json>] [file...]\n");
      return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dnslint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(std::move(arg));
    }
  }

  if (files.empty()) {
    files = dnslocate::lint::discover_sources(root, compile_commands);
    if (files.empty()) {
      std::fprintf(stderr, "dnslint: no sources found under %s/src\n", root.c_str());
      return 2;
    }
  }

  std::vector<dnslocate::lint::Finding> findings = dnslocate::lint::lint_paths(root, files);
  for (const auto& f : findings) std::printf("%s\n", f.to_string().c_str());
  std::printf("dnslint: %zu finding(s) across %zu file(s) scanned\n", findings.size(),
              files.size());
  return findings.empty() ? 0 : 1;
}
