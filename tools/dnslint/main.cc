// dnslint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   dnslint --root <repo> [--compile-commands build/compile_commands.json]
//           [--format=plain|github] [--json <path>] [file...]
//
// With no positional files, lints every source discovered under <root>/src
// (compilation database entries plus a directory walk for headers).
//
// --format=github emits GitHub Actions workflow annotations
// (`::error file=...,line=...::`) so findings surface inline on the PR diff;
// --json dumps the findings to a machine-readable file for tooling.
#include <cstdio>
#include <string>
#include <vector>

#include "dnslint/lint.h"
#include "jsonio/json.h"

namespace {

/// GitHub Actions workflow-annotation form of one finding. Property values
/// (file, title) must not contain the `::` terminator or commas are fine;
/// the message has its newlines escaped per the workflow-command spec.
std::string to_github(const dnslocate::lint::Finding& f) {
  std::string message = f.message;
  std::string escaped;
  escaped.reserve(message.size());
  for (char c : message) {
    if (c == '\n')
      escaped += "%0A";
    else if (c == '\r')
      escaped += "%0D";
    else if (c == '%')
      escaped += "%25";
    else
      escaped.push_back(c);
  }
  return "::error file=" + f.path + ",line=" + std::to_string(f.line) +
         ",title=dnslint(" + f.rule + ")::" + escaped;
}

bool write_json(const std::string& path, std::size_t files_scanned,
                const std::vector<dnslocate::lint::Finding>& findings) {
  dnslocate::jsonio::Object report;
  report["files_scanned"] = static_cast<std::uint64_t>(files_scanned);
  std::vector<dnslocate::jsonio::Value> items;
  items.reserve(findings.size());
  for (const auto& f : findings) {
    dnslocate::jsonio::Object item;
    item["path"] = f.path;
    item["line"] = static_cast<std::uint64_t>(f.line);
    item["rule"] = f.rule;
    item["message"] = f.message;
    items.emplace_back(std::move(item));
  }
  report["findings"] = std::move(items);
  std::string text = dnslocate::jsonio::Value(std::move(report)).dump() + "\n";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compile_commands;
  std::string format = "plain";
  std::string json_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dnslint: %s requires a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = next();
      if (!v) return 2;
      root = v;
    } else if (arg == "--compile-commands") {
      const char* v = next();
      if (!v) return 2;
      compile_commands = v;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "plain" && format != "github") {
        std::fprintf(stderr, "dnslint: unknown format '%s' (plain|github)\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--format") {
      const char* v = next();
      if (!v) return 2;
      format = v;
      if (format != "plain" && format != "github") {
        std::fprintf(stderr, "dnslint: unknown format '%s' (plain|github)\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return 2;
      json_path = v;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: dnslint --root <repo> [--compile-commands <json>] "
                   "[--format=plain|github] [--json <path>] [file...]\n");
      return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dnslint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(std::move(arg));
    }
  }

  if (files.empty()) {
    files = dnslocate::lint::discover_sources(root, compile_commands);
    if (files.empty()) {
      std::fprintf(stderr, "dnslint: no sources found under %s/src\n", root.c_str());
      return 2;
    }
  }

  std::vector<dnslocate::lint::Finding> findings = dnslocate::lint::lint_paths(root, files);
  for (const auto& f : findings) {
    if (format == "github")
      std::printf("%s\n", to_github(f).c_str());
    else
      std::printf("%s\n", f.to_string().c_str());
  }
  std::printf("dnslint: %zu finding(s) across %zu file(s) scanned\n", findings.size(),
              files.size());
  if (!json_path.empty() && !write_json(json_path, files.size(), findings)) {
    std::fprintf(stderr, "dnslint: cannot write %s\n", json_path.c_str());
    return 2;
  }
  return findings.empty() ? 0 : 1;
}
