#include "dnslint/scan.h"

#include <cctype>

namespace dnslocate::lint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Scrubbed scrub(std::string_view src) {
  Scrubbed out;
  out.code.assign(src.size(), ' ');
  enum class State { code, line_comment, block_comment, str, chr, raw_str };
  State state = State::code;
  std::size_t line = 1;
  std::size_t line_start = 0;  // offset of the current line's first char
  CommentSpan current;
  std::string raw_delim;  // for raw string literals: the )delim" terminator

  auto line_owned = [&](std::size_t begin) {
    for (std::size_t j = line_start; j < begin; ++j) {
      char c = src[j];
      if (c != ' ' && c != '\t') return false;
    }
    return true;
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::code:
        if (c == '/' && next == '/') {
          state = State::line_comment;
          current = CommentSpan{line, line_owned(i), ""};
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::block_comment;
          current = CommentSpan{line, line_owned(i), ""};
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R prefix.
          if (i > 0 && src[i - 1] == 'R' && (i < 2 || !is_ident_char(src[i - 2]))) {
            state = State::raw_str;
            raw_delim.clear();
            raw_delim.push_back(')');
            for (std::size_t j = i + 1; j < src.size() && src[j] != '('; ++j)
              raw_delim.push_back(src[j]);
            raw_delim.push_back('"');
            out.code[i] = '"';
          } else {
            state = State::str;
            out.code[i] = '"';
          }
        } else if (c == '\'') {
          // Distinguish char literals from digit separators (1'000'000).
          if (i > 0 && is_ident_char(src[i - 1]) && is_ident_char(next)) {
            out.code[i] = c;  // digit separator: keep
          } else {
            state = State::chr;
            out.code[i] = '\'';
          }
        } else {
          out.code[i] = c;
        }
        break;
      case State::line_comment:
        if (c == '\n') {
          state = State::code;
          out.comments.push_back(std::move(current));
        } else {
          current.text.push_back(c);
        }
        break;
      case State::block_comment:
        if (c == '*' && next == '/') {
          state = State::code;
          out.comments.push_back(std::move(current));
          ++i;
        } else {
          current.text.push_back(c);
        }
        break;
      case State::str:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::code;
          out.code[i] = '"';
        }
        break;
      case State::chr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::code;
          out.code[i] = '\'';
        }
        break;
      case State::raw_str:
        if (c == ')' && src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::code;
          out.code[i] = '"';
        }
        break;
    }
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      line_start = i + 1;
    }
  }
  if (state == State::line_comment || state == State::block_comment)
    out.comments.push_back(std::move(current));
  return out;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::size_t find_ident(std::string_view line, std::string_view word, std::size_t from) {
  while (from < line.size()) {
    std::size_t pos = line.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t end = pos + word.size();
    bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string_view::npos;
}

std::size_t skip_ws(std::string_view line, std::size_t pos) {
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  return pos;
}

bool is_call(std::string_view line, std::size_t pos, std::size_t len) {
  std::size_t after = skip_ws(line, pos + len);
  return after < line.size() && line[after] == '(';
}

bool is_member_access(std::string_view line, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && (line[i - 1] == ' ' || line[i - 1] == '\t')) --i;
  if (i == 0) return false;
  if (line[i - 1] == '.') {
    // Rule out floating literals like `1.close` (nonsense) — treat any '.'
    // as member access.
    return true;
  }
  if (line[i - 1] == '>' && i >= 2 && line[i - 2] == '-') return true;
  return false;
}

std::string_view qualifier(std::string_view line, std::size_t pos) {
  if (pos < 2 || line[pos - 1] != ':' || line[pos - 2] != ':') return {};
  std::size_t end = pos - 2;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(line[begin - 1])) --begin;
  return line.substr(begin, end - begin);
}

std::vector<Token> tokenize(std::string_view scrubbed_code) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = scrubbed_code.size();
  while (i < n) {
    char c = scrubbed_code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t begin = i;
      while (i < n && (is_ident_char(scrubbed_code[i]) || scrubbed_code[i] == '.')) ++i;
      out.push_back(Token{Token::Kind::number, scrubbed_code.substr(begin, i - begin), line});
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t begin = i;
      while (i < n && is_ident_char(scrubbed_code[i])) ++i;
      out.push_back(Token{Token::Kind::ident, scrubbed_code.substr(begin, i - begin), line});
      continue;
    }
    out.push_back(Token{Token::Kind::punct, scrubbed_code.substr(i, 1), line});
    ++i;
  }
  return out;
}

}  // namespace dnslocate::lint
