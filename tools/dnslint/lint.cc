#include "dnslint/lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "jsonio/json.h"

namespace dnslocate::lint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// A comment extracted during scrubbing (directives live in comments).
struct CommentSpan {
  std::size_t line = 0;  // 1-based line of the comment's first character
  bool owns_line = false;  // nothing but whitespace precedes it on that line
  std::string text;
};

/// Source with comment/string/char-literal bodies blanked to spaces.
/// Same length and line structure as the input, so token scans cannot be
/// fooled by quoted or commented-out code.
struct Scrubbed {
  std::string code;
  std::vector<CommentSpan> comments;
};

Scrubbed scrub(std::string_view src) {
  Scrubbed out;
  out.code.assign(src.size(), ' ');
  enum class State { code, line_comment, block_comment, str, chr, raw_str };
  State state = State::code;
  std::size_t line = 1;
  std::size_t line_start = 0;  // offset of the current line's first char
  CommentSpan current;
  std::string raw_delim;  // for raw string literals: the )delim" terminator

  auto line_owned = [&](std::size_t begin) {
    for (std::size_t j = line_start; j < begin; ++j) {
      char c = src[j];
      if (c != ' ' && c != '\t') return false;
    }
    return true;
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::code:
        if (c == '/' && next == '/') {
          state = State::line_comment;
          current = CommentSpan{line, line_owned(i), ""};
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::block_comment;
          current = CommentSpan{line, line_owned(i), ""};
          ++i;
        } else if (c == '"') {
          // Raw string literal? Look back for R prefix.
          if (i > 0 && src[i - 1] == 'R' && (i < 2 || !is_ident_char(src[i - 2]))) {
            state = State::raw_str;
            raw_delim = ")";
            for (std::size_t j = i + 1; j < src.size() && src[j] != '('; ++j)
              raw_delim.push_back(src[j]);
            raw_delim.push_back('"');
            out.code[i] = '"';
          } else {
            state = State::str;
            out.code[i] = '"';
          }
        } else if (c == '\'') {
          // Distinguish char literals from digit separators (1'000'000).
          if (i > 0 && is_ident_char(src[i - 1]) && is_ident_char(next)) {
            out.code[i] = c;  // digit separator: keep
          } else {
            state = State::chr;
            out.code[i] = '\'';
          }
        } else {
          out.code[i] = c;
        }
        break;
      case State::line_comment:
        if (c == '\n') {
          state = State::code;
          out.comments.push_back(std::move(current));
        } else {
          current.text.push_back(c);
        }
        break;
      case State::block_comment:
        if (c == '*' && next == '/') {
          state = State::code;
          out.comments.push_back(std::move(current));
          ++i;
        } else {
          current.text.push_back(c);
        }
        break;
      case State::str:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::code;
          out.code[i] = '"';
        }
        break;
      case State::chr:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::code;
          out.code[i] = '\'';
        }
        break;
      case State::raw_str:
        if (c == ')' && src.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::code;
          out.code[i] = '"';
        }
        break;
    }
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      line_start = i + 1;
    }
  }
  if (state == State::line_comment || state == State::block_comment)
    out.comments.push_back(std::move(current));
  return out;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Find `word` as a whole identifier in `line`, starting at `from`.
std::size_t find_ident(std::string_view line, std::string_view word, std::size_t from = 0) {
  while (from < line.size()) {
    std::size_t pos = line.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    std::size_t end = pos + word.size();
    bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string_view::npos;
}

std::size_t skip_ws(std::string_view line, std::size_t pos) {
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  return pos;
}

/// Is the identifier at [pos, pos+len) called as a function (next token '(')?
bool is_call(std::string_view line, std::size_t pos, std::size_t len) {
  std::size_t after = skip_ws(line, pos + len);
  return after < line.size() && line[after] == '(';
}

/// Is the identifier at `pos` a member access (`x.foo`, `x->foo`)? A plain
/// `::foo` (global namespace) still counts as a bare call.
bool is_member_access(std::string_view line, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && (line[i - 1] == ' ' || line[i - 1] == '\t')) --i;
  if (i == 0) return false;
  if (line[i - 1] == '.') {
    // Rule out floating literals like `1.close` (nonsense) — treat any '.'
    // as member access.
    return true;
  }
  if (line[i - 1] == '>' && i >= 2 && line[i - 2] == '-') return true;
  return false;
}

/// Is the identifier at `pos` qualified by something other than the global
/// namespace (e.g. `std::time`, `obj::time`)? Returns the qualifier.
std::string_view qualifier(std::string_view line, std::size_t pos) {
  if (pos < 2 || line[pos - 1] != ':' || line[pos - 2] != ':') return {};
  std::size_t end = pos - 2;
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(line[begin - 1])) --begin;
  return line.substr(begin, end - begin);
}

struct Suppression {
  std::string rule;
  bool used = false;
};

struct Directives {
  // line (1-based) -> suppressions covering that line
  std::vector<std::pair<std::size_t, Suppression>> allows;
  std::vector<Finding> errors;  // bad-suppression findings
};

constexpr std::array<std::string_view, 6> kKnownRules = {
    kRuleDeterminism, kRuleWireBounds,    kRuleRaiiSockets,
    kRuleHeaderHygiene, kRuleHttpBlocking, kRuleAcceptanceSeam};

Directives parse_directives(std::string_view path, const Scrubbed& s) {
  static const std::regex kDirective(
      R"(dnslint:\s*allow\(([A-Za-z0-9_-]+)\)(\s*:\s*(\S[^]*?))?\s*$)");
  Directives out;
  for (const CommentSpan& c : s.comments) {
    std::size_t mention = c.text.find("dnslint:");
    if (mention == std::string::npos) continue;
    std::smatch m;
    std::string text = c.text;
    if (!std::regex_search(text, m, kDirective)) {
      out.errors.push_back(Finding{std::string(path), c.line, std::string(kRuleBadSuppression),
                                   "malformed dnslint directive (expected "
                                   "`dnslint: allow(<rule>): <reason>`)"});
      continue;
    }
    std::string rule = m[1].str();
    bool known = std::find(kKnownRules.begin(), kKnownRules.end(), rule) != kKnownRules.end();
    if (!known) {
      out.errors.push_back(Finding{std::string(path), c.line, std::string(kRuleBadSuppression),
                                   "allow() names unknown rule '" + rule + "'"});
      continue;
    }
    if (!m[2].matched || m[3].str().empty()) {
      out.errors.push_back(Finding{std::string(path), c.line, std::string(kRuleBadSuppression),
                                   "allow(" + rule + ") must carry a reason: "
                                   "`// dnslint: allow(" + rule + "): <why>`"});
      continue;
    }
    // A directive covers its own line; a comment that owns its line also
    // covers the line below it.
    out.allows.emplace_back(c.line, Suppression{rule});
    if (c.owns_line) out.allows.emplace_back(c.line + 1, Suppression{rule});
  }
  return out;
}

struct PathScope {
  bool in_src = false;
  bool in_dnswire = false;
  bool in_sockets = false;
  bool in_service = false;
  bool is_header = false;
  bool determinism_seam = false;  // the allowlisted clock/entropy seam
  bool service_listener_seam = false;  // the allowlisted accept-loop seam
  bool exchange_seam = false;  // src/core/exchange.* — the one acceptance impl
  bool retry_seam = false;     // src/core/retry.* — defines rerandomize_query
};

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

PathScope classify_path(std::string_view path) {
  PathScope scope;
  scope.in_src = starts_with(path, "src/");
  scope.in_dnswire = starts_with(path, "src/dnswire/");
  scope.in_sockets = starts_with(path, "src/sockets/");
  scope.is_header = path.size() >= 2 && path.substr(path.size() - 2) == ".h";
  // The seam that is allowed to touch ambient entropy and the wall clock:
  // simnet's seeded RNG + simulated time, and obs's ScopedClock.
  scope.determinism_seam = path == "src/simnet/rng.h" || path == "src/simnet/rng.cc" ||
                           path == "src/simnet/time.h" || path == "src/obs/clock.h" ||
                           path == "src/obs/clock.cc";
  scope.in_service = starts_with(path, "src/service/");
  // The measurement service's accept loop is the one place outside
  // src/sockets/ that owns raw socket fds: HttpServer wraps listen/accept/
  // recv/send behind a single finite-tick poll(), RAII-owns every fd in its
  // Connection struct, and nothing else in src/service/ ever sees an fd.
  // Only this exact file gets the R3 ownership exemption — handlers and the
  // service kernel stay under the full rule (and under R5).
  scope.service_listener_seam = path == "src/service/http_server.cc";
  // The exchange kernel is the only place that may implement acceptance,
  // duplicate fingerprinting and arbitration (R6); retry.* defines the
  // re-randomization primitive the kernel wraps.
  scope.exchange_seam = starts_with(path, "src/core/exchange.");
  scope.retry_seam = starts_with(path, "src/core/retry.");
  return scope;
}

using Sink = std::vector<Finding>;

void add(Sink& sink, std::string_view path, std::size_t line, std::string_view rule,
         std::string message) {
  sink.push_back(Finding{std::string(path), line, std::string(rule), std::move(message)});
}

// ---------------------------------------------------------------- R1 -------

void check_determinism(std::string_view path, const std::vector<std::string_view>& lines,
                       Sink& sink) {
  static const std::regex kUnseededEngine(
      R"(\b(mt19937(_64)?|default_random_engine|minstd_rand0?|ranlux24|ranlux48)\s+[A-Za-z_]\w*\s*(;|\{\s*\}|\(\s*\)))");
  static const std::regex kNullTime(R"(\btime\s*\(\s*(nullptr|NULL|0)?\s*\))");
  constexpr std::array<std::string_view, 3> kBannedIdents = {"random_device", "system_clock",
                                                             "gettimeofday"};
  constexpr std::array<std::string_view, 4> kBannedCalls = {"rand", "srand", "rand_r",
                                                            "drand48"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    for (std::string_view ident : kBannedIdents) {
      if (find_ident(line, ident) != std::string_view::npos)
        add(sink, path, lineno, kRuleDeterminism,
            std::string(ident) + " is nondeterministic; route through the seeded "
            "simnet entropy / obs::ScopedClock seam");
    }
    for (std::string_view ident : kBannedCalls) {
      std::size_t pos = find_ident(line, ident);
      if (pos != std::string_view::npos && is_call(line, pos, ident.size()) &&
          !is_member_access(line, pos))
        add(sink, path, lineno, kRuleDeterminism,
            std::string(ident) + "() draws ambient entropy; use simnet::Rng "
            "(seeded) instead");
    }
    // std::time(nullptr) and friends read the wall clock.
    std::size_t pos = find_ident(line, "time");
    if (pos != std::string_view::npos && !is_member_access(line, pos)) {
      std::string_view qual = qualifier(line, pos);
      std::string tail(line.substr(pos));
      std::smatch m;
      if (std::regex_search(tail, m, kNullTime) && m.position(0) == 0 &&
          (qual == "std" || (qual.empty() && m[1].matched)))
        add(sink, path, lineno, kRuleDeterminism,
            "time() reads the wall clock; use the sim clock / obs::ScopedClock");
    }
    std::string text(line);
    std::smatch m;
    if (std::regex_search(text, m, kUnseededEngine))
      add(sink, path, lineno, kRuleDeterminism,
          m[1].str() + " constructed without a seed is implementation-seeded; "
          "pass an explicit seed derived from the probe/scenario seed");
  }
}

// ---------------------------------------------------------------- R2 -------

void check_wire_bounds(std::string_view path, const std::vector<std::string_view>& lines,
                       Sink& sink) {
  static const std::regex kDataArith(R"(\.\s*data\s*\(\s*\)\s*[+\[])");
  constexpr std::array<std::string_view, 5> kRawCopies = {"memcpy", "memmove", "strcpy",
                                                          "strncpy", "alloca"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    for (std::string_view ident : kRawCopies) {
      std::size_t pos = find_ident(line, ident);
      if (pos != std::string_view::npos && is_call(line, pos, ident.size()))
        add(sink, path, lineno, kRuleWireBounds,
            std::string(ident) + "() bypasses the bounds-checked cursor helpers; "
            "use Reader/Writer primitives (or std::span copies) instead");
    }
    if (find_ident(line, "reinterpret_cast") != std::string_view::npos)
      add(sink, path, lineno, kRuleWireBounds,
          "reinterpret_cast over wire bytes defeats bounds/type checking; "
          "construct from a bounds-checked std::span instead");
    std::string text(line);
    if (std::regex_search(text, kDataArith))
      add(sink, path, lineno, kRuleWireBounds,
          "raw pointer arithmetic on .data(); use subspan()/cursor helpers "
          "so every access stays bounds-checked");
  }
}

// ---------------------------------------------------------------- R3 -------

void check_raii_sockets(std::string_view path, const std::vector<std::string_view>& lines,
                        bool owns_fds, Sink& sink) {
  static const std::regex kInfinitePoll(R"(\bpoll\s*\([^;()]*,\s*-1\s*\))");
  constexpr std::array<std::string_view, 9> kOwnedCalls = {
      "socket", "close", "recvfrom", "sendto", "recv", "accept",
      "setsockopt", "poll", "select"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    if (!owns_fds) {
      for (std::string_view ident : kOwnedCalls) {
        std::size_t pos = find_ident(line, ident);
        if (pos != std::string_view::npos && is_call(line, pos, ident.size()) &&
            !is_member_access(line, pos)) {
          std::string_view qual = qualifier(line, pos);
          if (qual == "std") continue;  // std::accept etc. do not exist; be safe
          add(sink, path, lineno, kRuleRaiiSockets,
              "naked " + std::string(ident) + "() outside the fd owners; socket "
              "lifetimes belong to src/sockets/ (or the allowlisted accept-loop "
              "seam src/service/http_server.cc)");
        }
      }
    }
    // Everywhere (owners included): poll must carry a finite deadline.
    std::string text(line);
    if (std::regex_search(text, kInfinitePoll))
      add(sink, path, lineno, kRuleRaiiSockets,
          "poll() with an infinite (-1) timeout can hang a probe forever; "
          "every wait needs a deadline");
  }
}

// ---------------------------------------------------------------- R5 -------

/// src/service/ outside the accept-loop seam runs on the HTTP server's
/// event thread: request handlers and verdict-stream pullers are invoked
/// from the poll loop, so one blocking read stalls every connection. Work
/// that waits belongs on the MeasurementService worker pool; handlers only
/// snapshot state that is already in memory (or journaled on disk).
void check_http_blocking(std::string_view path, const std::vector<std::string_view>& lines,
                         Sink& sink) {
  constexpr std::array<std::string_view, 12> kBlockingReads = {
      "recv", "recvfrom", "recvmsg", "read",   "pread", "readv",
      "accept", "select", "fgets",   "getline", "scanf", "fscanf"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    for (std::string_view ident : kBlockingReads) {
      std::size_t pos = find_ident(line, ident);
      if (pos != std::string_view::npos && is_call(line, pos, ident.size()) &&
          !is_member_access(line, pos))
        add(sink, path, lineno, kRuleHttpBlocking,
            std::string(ident) + "() can block the HTTP event thread; handlers "
            "and stream pullers must stay non-blocking — queue the work on the "
            "service's worker pool instead");
    }
    if (find_ident(line, "cin") != std::string_view::npos)
      add(sink, path, lineno, kRuleHttpBlocking,
          "std::cin reads block the HTTP event thread; the daemon's control "
          "plane is the HTTP API, not stdin");
  }
}

// ---------------------------------------------------------------- R6 -------

/// Exactly one implementation of answer acceptance, duplicate-window
/// fingerprinting and arbitration exists: the exchange kernel
/// (src/core/exchange.*). A transport that matches transaction IDs, hashes
/// payloads for dedup, or compares answers on its own will drift from the
/// RFC 5452 semantics the whole evidence model rests on — the refactor that
/// created the kernel exists precisely because four copies had grown apart.
void check_acceptance_seam(std::string_view path, const std::vector<std::string_view>& lines,
                           const PathScope& scope, Sink& sink) {
  struct Banned {
    std::string_view ident;
    bool allowed;
    std::string_view message;
  };
  const std::array<Banned, 4> banned = {{
      {"is_acceptable_response", scope.in_dnswire,
       "RFC 5452 acceptance belongs to the exchange kernel; route answers "
       "through core::run_exchange / ExchangeLedger (core/exchange.h)"},
      {"responses_conflict", false,
       "answer arbitration belongs to the exchange kernel; deliver the "
       "response to an ExchangeLedger and act on its Disposition"},
      {"rerandomize_query", scope.retry_seam,
       "per-attempt re-randomization belongs to the exchange kernel; use "
       "core::prepare_retry_attempt (core/exchange.h)"},
      {"bytes_hash", false,
       "duplicate-window fingerprinting belongs to the exchange kernel; use "
       "core::payload_fingerprint via ExchangeLedger::deliver"},
  }};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    for (const Banned& b : banned) {
      if (b.allowed) continue;
      if (find_ident(line, b.ident) != std::string_view::npos)
        add(sink, path, lineno, kRuleAcceptanceSeam,
            std::string(b.ident) + " outside src/core/exchange.*: " +
                std::string(b.message));
    }
  }
}

// ---------------------------------------------------------------- R4 -------

void check_header_hygiene(std::string_view path, const std::vector<std::string_view>& lines,
                          Sink& sink) {
  static const std::regex kGuardDefine(R"(^\s*#\s*ifndef\s+\w+_H(_|PP)?_?\s*$)");
  std::size_t pragma_count = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    if (find_ident(line, "using") != std::string_view::npos) {
      std::size_t upos = find_ident(line, "using");
      std::size_t npos = find_ident(line, "namespace", upos);
      if (npos != std::string_view::npos && skip_ws(line, upos + 5) == npos)
        add(sink, path, lineno, kRuleHeaderHygiene,
            "`using namespace` in a header leaks into every includer; qualify "
            "names or move the directive into a .cc file");
    }
    std::string text(line);
    std::smatch m;
    static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
    if (std::regex_search(text, m, kPragmaOnce)) {
      ++pragma_count;
      if (pragma_count == 2)
        add(sink, path, lineno, kRuleHeaderHygiene, "duplicate #pragma once");
    }
    if (std::regex_search(text, m, kGuardDefine))
      add(sink, path, lineno, kRuleHeaderHygiene,
          "legacy include guard; this tree standardizes on #pragma once");
  }
  if (pragma_count == 0)
    add(sink, path, 1, kRuleHeaderHygiene, "header is missing #pragma once");
}

}  // namespace

std::string Finding::to_string() const {
  return path + ":" + std::to_string(line) + ": error: [" + rule + "] " + message;
}

std::vector<Finding> lint_file(std::string_view path, std::string_view content) {
  PathScope scope = classify_path(path);
  Scrubbed s = scrub(content);
  Directives directives = parse_directives(path, s);
  std::vector<std::string_view> lines = split_lines(s.code);

  Sink raw;
  if (scope.in_src && !scope.determinism_seam) check_determinism(path, lines, raw);
  if (scope.in_dnswire) check_wire_bounds(path, lines, raw);
  if (scope.in_src)
    check_raii_sockets(path, lines, scope.in_sockets || scope.service_listener_seam, raw);
  if (scope.in_service && !scope.service_listener_seam) check_http_blocking(path, lines, raw);
  if (scope.in_src && !scope.exchange_seam) check_acceptance_seam(path, lines, scope, raw);
  if (scope.in_src && scope.is_header) check_header_hygiene(path, lines, raw);

  Sink out = std::move(directives.errors);
  for (Finding& f : raw) {
    bool suppressed = false;
    for (auto& [line, allow] : directives.allows) {
      if (line == f.line && allow.rule == f.rule) {
        allow.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  return out;
}

std::vector<Finding> lint_paths(const std::string& root, const std::vector<std::string>& files) {
  namespace fs = std::filesystem;
  std::vector<Finding> out;
  fs::path root_abs = fs::absolute(fs::path(root)).lexically_normal();
  for (const std::string& file : files) {
    fs::path abs = fs::absolute(fs::path(file)).lexically_normal();
    std::string rel = abs.lexically_relative(root_abs).generic_string();
    if (rel.empty() || starts_with(rel, "..")) rel = abs.generic_string();
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      out.push_back(Finding{rel, 0, std::string(kRuleBadSuppression), "unreadable file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string content = buf.str();
    std::vector<Finding> findings = lint_file(rel, content);
    out.insert(out.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
  }
  return out;
}

std::vector<std::string> discover_sources(const std::string& root,
                                          const std::string& compile_commands_path) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  fs::path root_abs = fs::absolute(fs::path(root)).lexically_normal();
  fs::path src = root_abs / "src";

  if (!compile_commands_path.empty()) {
    std::ifstream in(compile_commands_path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      if (auto db = jsonio::parse(buf.str()); db && db->is_array()) {
        for (const jsonio::Value& entry : db->as_array()) {
          if (!entry.is_object()) continue;
          const jsonio::Value& file = entry["file"];
          if (!file.is_string()) continue;
          fs::path p = fs::path(file.as_string());
          if (p.is_relative()) p = fs::path(entry["directory"].as_string()) / p;
          p = p.lexically_normal();
          std::string rel = p.lexically_relative(root_abs).generic_string();
          if (starts_with(rel, "src/")) files.push_back(p.generic_string());
        }
      }
    }
  }

  if (fs::exists(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp")
        files.push_back(entry.path().lexically_normal().generic_string());
    }
  }

  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace dnslocate::lint
