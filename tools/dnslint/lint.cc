#include "dnslint/lint.h"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "dnslint/scan.h"
#include "dnslint/scopes.h"
#include "jsonio/json.h"

namespace dnslocate::lint {
namespace {

struct Suppression {
  std::string rule;
  bool used = false;
};

struct Directives {
  // line (1-based) -> suppressions covering that line
  std::vector<std::pair<std::size_t, Suppression>> allows;
  std::vector<Finding> errors;  // bad-suppression findings
};

constexpr std::array<std::string_view, 9> kKnownRules = {
    kRuleDeterminism,    kRuleWireBounds, kRuleRaiiSockets,
    kRuleHeaderHygiene,  kRuleHttpBlocking, kRuleAcceptanceSeam,
    kRuleNoBlockingUnderLock, kRuleLockOrder, kRuleAnnotationCoverage};

/// How far a suppression placed above a statement reaches: the statement
/// runs from `start` (0-based index into `lines`) to the line where it
/// syntactically ends — last non-blank character `;`, `{` or `}` with all
/// parentheses/brackets opened since `start` closed again. Capped so a
/// directive can never silently blanket a whole file.
constexpr std::size_t kMaxStatementLines = 12;

std::size_t statement_end(const std::vector<std::string_view>& lines, std::size_t start) {
  long depth = 0;
  std::size_t limit = std::min(lines.size(), start + kMaxStatementLines);
  for (std::size_t idx = start; idx < limit; ++idx) {
    std::string_view line = lines[idx];
    char trailing = '\0';
    for (char c : line) {
      if (c == '(' || c == '[') ++depth;
      else if (c == ')' || c == ']') --depth;
      if (c != ' ' && c != '\t') trailing = c;
    }
    if (trailing == '\0') return idx;  // blank line: the statement is over
    if (depth <= 0 && (trailing == ';' || trailing == '{' || trailing == '}'))
      return idx;
  }
  return limit == 0 ? 0 : limit - 1;
}

Directives parse_directives(std::string_view path, const Scrubbed& s,
                            const std::vector<std::string_view>& lines) {
  static const std::regex kDirective(
      R"(dnslint:\s*allow\(([A-Za-z0-9_-]+)\)(\s*:\s*(\S[^]*?))?\s*$)");
  Directives out;
  for (const CommentSpan& c : s.comments) {
    std::size_t mention = c.text.find("dnslint:");
    if (mention == std::string::npos) continue;
    std::smatch m;
    std::string text = c.text;
    if (!std::regex_search(text, m, kDirective)) {
      out.errors.push_back(Finding{std::string(path), c.line, std::string(kRuleBadSuppression),
                                   "malformed dnslint directive (expected "
                                   "`dnslint: allow(<rule>): <reason>`)"});
      continue;
    }
    std::string rule = m[1].str();
    bool known = std::find(kKnownRules.begin(), kKnownRules.end(), rule) != kKnownRules.end();
    if (!known) {
      out.errors.push_back(Finding{std::string(path), c.line, std::string(kRuleBadSuppression),
                                   "allow() names unknown rule '" + rule + "'"});
      continue;
    }
    if (!m[2].matched || m[3].str().empty()) {
      out.errors.push_back(Finding{std::string(path), c.line, std::string(kRuleBadSuppression),
                                   "allow(" + rule + ") must carry a reason: "
                                   "`// dnslint: allow(" + rule + "): <why>`"});
      continue;
    }
    // A directive covers its own line; a comment that owns its line also
    // covers the whole statement starting on the line below — a multi-line
    // call or declaration is suppressed end to end, not just its first
    // physical line.
    out.allows.emplace_back(c.line, Suppression{rule});
    if (c.owns_line && c.line < lines.size()) {
      std::size_t end = statement_end(lines, c.line);  // 0-based == c.line 1-based + 1
      for (std::size_t idx = c.line; idx <= end; ++idx)
        out.allows.emplace_back(idx + 1, Suppression{rule});
    }
  }
  return out;
}

struct PathScope {
  bool in_src = false;
  bool in_dnswire = false;
  bool in_sockets = false;
  bool in_service = false;
  bool is_header = false;
  bool determinism_seam = false;  // the allowlisted clock/entropy seam
  bool service_listener_seam = false;  // the allowlisted accept-loop seam
  bool exchange_seam = false;  // src/core/exchange.* — the one acceptance impl
  bool retry_seam = false;     // src/core/retry.* — defines rerandomize_query
  bool annotated_subsystem = false;  // R9: capability-annotated subsystems
};

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

PathScope classify_path(std::string_view path) {
  PathScope scope;
  scope.in_src = starts_with(path, "src/");
  scope.in_dnswire = starts_with(path, "src/dnswire/");
  scope.in_sockets = starts_with(path, "src/sockets/");
  scope.is_header = path.size() >= 2 && path.substr(path.size() - 2) == ".h";
  // The seam that is allowed to touch ambient entropy and the wall clock:
  // simnet's seeded RNG + simulated time, and obs's ScopedClock.
  scope.determinism_seam = path == "src/simnet/rng.h" || path == "src/simnet/rng.cc" ||
                           path == "src/simnet/time.h" || path == "src/obs/clock.h" ||
                           path == "src/obs/clock.cc";
  scope.in_service = starts_with(path, "src/service/");
  // The measurement service's accept loop is the one place outside
  // src/sockets/ that owns raw socket fds: HttpServer wraps listen/accept/
  // recv/send behind a single finite-tick poll(), RAII-owns every fd in its
  // Connection struct, and nothing else in src/service/ ever sees an fd.
  // Only this exact file gets the R3 ownership exemption — handlers and the
  // service kernel stay under the full rule (and under R5).
  scope.service_listener_seam = path == "src/service/http_server.cc";
  // The exchange kernel is the only place that may implement acceptance,
  // duplicate fingerprinting and arbitration (R6); retry.* defines the
  // re-randomization primitive the kernel wraps.
  scope.exchange_seam = starts_with(path, "src/core/exchange.");
  scope.retry_seam = starts_with(path, "src/core/retry.");
  // Subsystems whose mutexes are netbase::Mutex capabilities (engine 1,
  // thread_annotations.h); R9 keeps them that way.
  scope.annotated_subsystem =
      scope.in_service || scope.in_sockets || starts_with(path, "src/obs/") ||
      starts_with(path, "src/atlas/") || starts_with(path, "src/netbase/");
  return scope;
}

using Sink = std::vector<Finding>;

void add(Sink& sink, std::string_view path, std::size_t line, std::string_view rule,
         std::string message) {
  sink.push_back(Finding{std::string(path), line, std::string(rule), std::move(message)});
}

// ---------------------------------------------------------------- R1 -------

void check_determinism(std::string_view path, const std::vector<std::string_view>& lines,
                       Sink& sink) {
  static const std::regex kUnseededEngine(
      R"(\b(mt19937(_64)?|default_random_engine|minstd_rand0?|ranlux24|ranlux48)\s+[A-Za-z_]\w*\s*(;|\{\s*\}|\(\s*\)))");
  static const std::regex kNullTime(R"(\btime\s*\(\s*(nullptr|NULL|0)?\s*\))");
  constexpr std::array<std::string_view, 3> kBannedIdents = {"random_device", "system_clock",
                                                             "gettimeofday"};
  constexpr std::array<std::string_view, 4> kBannedCalls = {"rand", "srand", "rand_r",
                                                            "drand48"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    for (std::string_view ident : kBannedIdents) {
      if (find_ident(line, ident) != std::string_view::npos)
        add(sink, path, lineno, kRuleDeterminism,
            std::string(ident) + " is nondeterministic; route through the seeded "
            "simnet entropy / obs::ScopedClock seam");
    }
    for (std::string_view ident : kBannedCalls) {
      std::size_t pos = find_ident(line, ident);
      if (pos != std::string_view::npos && is_call(line, pos, ident.size()) &&
          !is_member_access(line, pos))
        add(sink, path, lineno, kRuleDeterminism,
            std::string(ident) + "() draws ambient entropy; use simnet::Rng "
            "(seeded) instead");
    }
    // std::time(nullptr) and friends read the wall clock.
    std::size_t pos = find_ident(line, "time");
    if (pos != std::string_view::npos && !is_member_access(line, pos)) {
      std::string_view qual = qualifier(line, pos);
      std::string tail(line.substr(pos));
      std::smatch m;
      if (std::regex_search(tail, m, kNullTime) && m.position(0) == 0 &&
          (qual == "std" || (qual.empty() && m[1].matched)))
        add(sink, path, lineno, kRuleDeterminism,
            "time() reads the wall clock; use the sim clock / obs::ScopedClock");
    }
    std::string text(line);
    std::smatch m;
    if (std::regex_search(text, m, kUnseededEngine))
      add(sink, path, lineno, kRuleDeterminism,
          m[1].str() + " constructed without a seed is implementation-seeded; "
          "pass an explicit seed derived from the probe/scenario seed");
  }
}

// ---------------------------------------------------------------- R2 -------

void check_wire_bounds(std::string_view path, const std::vector<std::string_view>& lines,
                       Sink& sink) {
  static const std::regex kDataArith(R"(\.\s*data\s*\(\s*\)\s*[+\[])");
  constexpr std::array<std::string_view, 5> kRawCopies = {"memcpy", "memmove", "strcpy",
                                                          "strncpy", "alloca"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    for (std::string_view ident : kRawCopies) {
      std::size_t pos = find_ident(line, ident);
      if (pos != std::string_view::npos && is_call(line, pos, ident.size()))
        add(sink, path, lineno, kRuleWireBounds,
            std::string(ident) + "() bypasses the bounds-checked cursor helpers; "
            "use Reader/Writer primitives (or std::span copies) instead");
    }
    if (find_ident(line, "reinterpret_cast") != std::string_view::npos)
      add(sink, path, lineno, kRuleWireBounds,
          "reinterpret_cast over wire bytes defeats bounds/type checking; "
          "construct from a bounds-checked std::span instead");
    std::string text(line);
    if (std::regex_search(text, kDataArith))
      add(sink, path, lineno, kRuleWireBounds,
          "raw pointer arithmetic on .data(); use subspan()/cursor helpers "
          "so every access stays bounds-checked");
  }
}

// ---------------------------------------------------------------- R3 -------

void check_raii_sockets(std::string_view path, const std::vector<std::string_view>& lines,
                        bool owns_fds, Sink& sink) {
  static const std::regex kInfinitePoll(R"(\bpoll\s*\([^;()]*,\s*-1\s*\))");
  constexpr std::array<std::string_view, 9> kOwnedCalls = {
      "socket", "close", "recvfrom", "sendto", "recv", "accept",
      "setsockopt", "poll", "select"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    if (!owns_fds) {
      for (std::string_view ident : kOwnedCalls) {
        std::size_t pos = find_ident(line, ident);
        if (pos != std::string_view::npos && is_call(line, pos, ident.size()) &&
            !is_member_access(line, pos)) {
          std::string_view qual = qualifier(line, pos);
          if (qual == "std") continue;  // std::accept etc. do not exist; be safe
          add(sink, path, lineno, kRuleRaiiSockets,
              "naked " + std::string(ident) + "() outside the fd owners; socket "
              "lifetimes belong to src/sockets/ (or the allowlisted accept-loop "
              "seam src/service/http_server.cc)");
        }
      }
    }
    // Everywhere (owners included): poll must carry a finite deadline.
    std::string text(line);
    if (std::regex_search(text, kInfinitePoll))
      add(sink, path, lineno, kRuleRaiiSockets,
          "poll() with an infinite (-1) timeout can hang a probe forever; "
          "every wait needs a deadline");
  }
}

// ---------------------------------------------------------------- R5 -------

/// src/service/ outside the accept-loop seam runs on the HTTP server's
/// event thread: request handlers and verdict-stream pullers are invoked
/// from the poll loop, so one blocking read stalls every connection. Work
/// that waits belongs on the MeasurementService worker pool; handlers only
/// snapshot state that is already in memory (or journaled on disk).
void check_http_blocking(std::string_view path, const std::vector<std::string_view>& lines,
                         Sink& sink) {
  constexpr std::array<std::string_view, 12> kBlockingReads = {
      "recv", "recvfrom", "recvmsg", "read",   "pread", "readv",
      "accept", "select", "fgets",   "getline", "scanf", "fscanf"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    for (std::string_view ident : kBlockingReads) {
      std::size_t pos = find_ident(line, ident);
      if (pos != std::string_view::npos && is_call(line, pos, ident.size()) &&
          !is_member_access(line, pos))
        add(sink, path, lineno, kRuleHttpBlocking,
            std::string(ident) + "() can block the HTTP event thread; handlers "
            "and stream pullers must stay non-blocking — queue the work on the "
            "service's worker pool instead");
    }
    if (find_ident(line, "cin") != std::string_view::npos)
      add(sink, path, lineno, kRuleHttpBlocking,
          "std::cin reads block the HTTP event thread; the daemon's control "
          "plane is the HTTP API, not stdin");
  }
}

// ---------------------------------------------------------------- R6 -------

/// Exactly one implementation of answer acceptance, duplicate-window
/// fingerprinting and arbitration exists: the exchange kernel
/// (src/core/exchange.*). A transport that matches transaction IDs, hashes
/// payloads for dedup, or compares answers on its own will drift from the
/// RFC 5452 semantics the whole evidence model rests on — the refactor that
/// created the kernel exists precisely because four copies had grown apart.
void check_acceptance_seam(std::string_view path, const std::vector<std::string_view>& lines,
                           const PathScope& scope, Sink& sink) {
  struct Banned {
    std::string_view ident;
    bool allowed;
    std::string_view message;
  };
  const std::array<Banned, 4> banned = {{
      {"is_acceptable_response", scope.in_dnswire,
       "RFC 5452 acceptance belongs to the exchange kernel; route answers "
       "through core::run_exchange / ExchangeLedger (core/exchange.h)"},
      {"responses_conflict", false,
       "answer arbitration belongs to the exchange kernel; deliver the "
       "response to an ExchangeLedger and act on its Disposition"},
      {"rerandomize_query", scope.retry_seam,
       "per-attempt re-randomization belongs to the exchange kernel; use "
       "core::prepare_retry_attempt (core/exchange.h)"},
      {"bytes_hash", false,
       "duplicate-window fingerprinting belongs to the exchange kernel; use "
       "core::payload_fingerprint via ExchangeLedger::deliver"},
  }};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    for (const Banned& b : banned) {
      if (b.allowed) continue;
      if (find_ident(line, b.ident) != std::string_view::npos)
        add(sink, path, lineno, kRuleAcceptanceSeam,
            std::string(b.ident) + " outside src/core/exchange.*: " +
                std::string(b.message));
    }
  }
}

// ---------------------------------------------------------------- R4 -------

void check_header_hygiene(std::string_view path, const std::vector<std::string_view>& lines,
                          Sink& sink) {
  static const std::regex kGuardDefine(R"(^\s*#\s*ifndef\s+\w+_H(_|PP)?_?\s*$)");
  std::size_t pragma_count = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    std::size_t lineno = i + 1;
    if (find_ident(line, "using") != std::string_view::npos) {
      std::size_t upos = find_ident(line, "using");
      std::size_t npos = find_ident(line, "namespace", upos);
      if (npos != std::string_view::npos && skip_ws(line, upos + 5) == npos)
        add(sink, path, lineno, kRuleHeaderHygiene,
            "`using namespace` in a header leaks into every includer; qualify "
            "names or move the directive into a .cc file");
    }
    std::string text(line);
    std::smatch m;
    static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
    if (std::regex_search(text, m, kPragmaOnce)) {
      ++pragma_count;
      if (pragma_count == 2)
        add(sink, path, lineno, kRuleHeaderHygiene, "duplicate #pragma once");
    }
    if (std::regex_search(text, m, kGuardDefine))
      add(sink, path, lineno, kRuleHeaderHygiene,
          "legacy include guard; this tree standardizes on #pragma once");
  }
  if (pragma_count == 0)
    add(sink, path, 1, kRuleHeaderHygiene, "header is missing #pragma once");
}

}  // namespace

std::string Finding::to_string() const {
  return path + ":" + std::to_string(line) + ": error: [" + rule + "] " + message;
}

std::vector<Finding> lint_file(std::string_view path, std::string_view content) {
  return lint_file(path, content, LockOrder{});
}

std::vector<Finding> lint_file(std::string_view path, std::string_view content,
                               const LockOrder& lock_order) {
  PathScope scope = classify_path(path);
  Scrubbed s = scrub(content);
  std::vector<std::string_view> lines = split_lines(s.code);
  Directives directives = parse_directives(path, s, lines);

  Sink raw;
  if (scope.in_src && !scope.determinism_seam) check_determinism(path, lines, raw);
  if (scope.in_dnswire) check_wire_bounds(path, lines, raw);
  if (scope.in_src)
    check_raii_sockets(path, lines, scope.in_sockets || scope.service_listener_seam, raw);
  if (scope.in_service && !scope.service_listener_seam) check_http_blocking(path, lines, raw);
  if (scope.in_src && !scope.exchange_seam) check_acceptance_seam(path, lines, scope, raw);
  if (scope.in_src && scope.is_header) check_header_hygiene(path, lines, raw);
  if (scope.in_src) {
    std::vector<Token> tokens = tokenize(s.code);
    check_lock_scopes(path, tokens, lock_order, raw);
    if (scope.annotated_subsystem) check_annotation_coverage(path, tokens, raw);
  }

  Sink out = std::move(directives.errors);
  for (Finding& f : raw) {
    bool suppressed = false;
    for (auto& [line, allow] : directives.allows) {
      if (line == f.line && allow.rule == f.rule) {
        allow.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  return out;
}

LockOrder load_lock_order(const std::string& root) {
  std::ifstream in(root + "/tools/dnslint/lock_order.txt", std::ios::binary);
  if (!in) return LockOrder{};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_lock_order(buf.str());
}

std::vector<Finding> lint_paths(const std::string& root, const std::vector<std::string>& files) {
  namespace fs = std::filesystem;
  std::vector<Finding> out;
  fs::path root_abs = fs::absolute(fs::path(root)).lexically_normal();
  LockOrder lock_order = load_lock_order(root_abs.generic_string());
  for (const std::string& file : files) {
    fs::path abs = fs::absolute(fs::path(file)).lexically_normal();
    std::string rel = abs.lexically_relative(root_abs).generic_string();
    if (rel.empty() || starts_with(rel, "..")) rel = abs.generic_string();
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      out.push_back(Finding{rel, 0, std::string(kRuleBadSuppression), "unreadable file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string content = buf.str();
    std::vector<Finding> findings = lint_file(rel, content, lock_order);
    out.insert(out.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
  }
  return out;
}

std::vector<std::string> discover_sources(const std::string& root,
                                          const std::string& compile_commands_path) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  fs::path root_abs = fs::absolute(fs::path(root)).lexically_normal();
  fs::path src = root_abs / "src";

  if (!compile_commands_path.empty()) {
    std::ifstream in(compile_commands_path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      if (auto db = jsonio::parse(buf.str()); db && db->is_array()) {
        for (const jsonio::Value& entry : db->as_array()) {
          if (!entry.is_object()) continue;
          const jsonio::Value& file = entry["file"];
          if (!file.is_string()) continue;
          fs::path p = fs::path(file.as_string());
          if (p.is_relative()) p = fs::path(entry["directory"].as_string()) / p;
          p = p.lexically_normal();
          std::string rel = p.lexically_relative(root_abs).generic_string();
          if (starts_with(rel, "src/")) files.push_back(p.generic_string());
        }
      }
    }
  }

  if (fs::exists(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp")
        files.push_back(entry.path().lexically_normal().generic_string());
    }
  }

  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace dnslocate::lint
