#include "dnslint/scopes.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>
#include <string>

namespace dnslocate::lint {
namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::punct && t.text == s;
}

/// Is the identifier at `i` a member access (`x.foo`, `x->foo`)?
bool member_access(const Tokens& toks, std::size_t i) {
  if (i == 0) return false;
  if (is_punct(toks[i - 1], ".")) return true;
  return is_punct(toks[i - 1], ">") && i >= 2 && is_punct(toks[i - 2], "-");
}

/// Is the identifier at `i` qualified as `name::ident`?
bool qualified_by(const Tokens& toks, std::size_t i, std::string_view name) {
  return i >= 3 && is_punct(toks[i - 1], ":") && is_punct(toks[i - 2], ":") &&
         toks[i - 3].kind == Token::Kind::ident && toks[i - 3].text == name;
}

/// Index of the first token of the (possibly qualified) name ending at `i`.
std::size_t qualified_begin(const Tokens& toks, std::size_t i) {
  while (i >= 3 && is_punct(toks[i - 1], ":") && is_punct(toks[i - 2], ":") &&
         toks[i - 3].kind == Token::Kind::ident)
    i -= 3;
  return i;
}

/// toks[i] == '<': index just past the matching '>' (or a bail-out point).
std::size_t skip_angles(const Tokens& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], "<")) ++depth;
    else if (is_punct(toks[i], ">")) {
      if (--depth == 0) return i + 1;
    } else if (is_punct(toks[i], ";") || is_punct(toks[i], "{")) {
      break;  // malformed / not really template args
    }
  }
  return i;
}

// ------------------------------------------------------------- R7 + R8 -----

/// One live RAII guard in some scope.
struct Guard {
  std::string_view name;                 // variable name
  std::vector<std::string> labels;       // normalized mutex labels
  std::size_t line = 0;                  // acquisition line
  bool held = true;
};

/// A brace scope. Lambda bodies are *boundary* scopes: the enclosing
/// function's guards are not held when the lambda body eventually runs, so
/// they are suspended for every rule while walking the body.
struct Scope {
  bool boundary = false;
  std::vector<Guard> guards;
};

/// Guard-declaring types the tracker understands.
constexpr std::array<std::string_view, 5> kGuardTypes = {
    "lock_guard", "unique_lock", "shared_lock", "scoped_lock", "MutexLock"};

bool is_guard_type(std::string_view text) {
  return std::find(kGuardTypes.begin(), kGuardTypes.end(), text) != kGuardTypes.end();
}

/// Calls that block (or can block unboundedly) and are therefore banned
/// while any lock guard is live. Whole-token matches only: `fsync` does not
/// match `fsync_journal`, `write` does not match `fwrite` — a *named helper*
/// that blocks under a deliberately-held leaf lock (the journal writer) is
/// the sanctioned escape, and it documents itself at the definition site.
constexpr std::array<std::string_view, 27> kBlockingCalls = {
    "fsync",      "fdatasync", "sync_file_range", "write",    "pwrite",
    "writev",     "poll",      "ppoll",           "epoll_wait", "select",
    "pselect",    "recv",      "recvfrom",        "recvmsg",  "send",
    "sendto",     "sendmsg",   "accept",          "accept4",  "connect",
    "usleep",     "nanosleep", "sleep",           "flock",    "system",
    "sleep_for",  "sleep_until"};

bool is_blocking_call(std::string_view text) {
  return std::find(kBlockingCalls.begin(), kBlockingCalls.end(), text) !=
         kBlockingCalls.end();
}

/// Does the '{' at `i` open a lambda body? Walk backwards over trailing
/// specifiers / return-type tokens; a lambda head ends with `]` or with a
/// `(...)` parameter list whose opener is preceded by `]`.
bool lambda_boundary(const Tokens& toks, std::size_t i) {
  std::size_t j = i;
  while (j > 0) {
    const Token& t = toks[j - 1];
    if (t.kind == Token::Kind::ident) {  // noexcept / mutable / type names
      --j;
      continue;
    }
    if (t.kind == Token::Kind::punct &&
        (t.text == ">" || t.text == "<" || t.text == "*" || t.text == "&" ||
         t.text == ":" || t.text == "," || t.text == "-")) {
      --j;
      continue;
    }
    break;
  }
  if (j == 0) return false;
  const Token& t = toks[j - 1];
  if (is_punct(t, ")")) {
    int depth = 0;
    std::size_t k = j - 1;
    while (true) {
      if (is_punct(toks[k], ")")) ++depth;
      else if (is_punct(toks[k], "(") && --depth == 0) break;
      if (k == 0) return false;
      --k;
    }
    return k > 0 && is_punct(toks[k - 1], "]");
  }
  return is_punct(t, "]");
}

/// A parsed guard declaration.
struct GuardDecl {
  bool valid = false;
  Guard guard;
  std::size_t next = 0;  // token index just past the declaration's ')'
};

/// Normalized label of one constructor argument: the last identifier of the
/// lock expression (`run->mutex` -> "mutex", `mutex_` -> "mutex_").
/// std::defer_lock / adopt_lock / try_to_lock tags yield no label.
struct ArgInfo {
  std::string label;
  bool defer = false;
};

ArgInfo classify_arg(const Tokens& toks, std::size_t begin, std::size_t end) {
  ArgInfo info;
  for (std::size_t k = begin; k < end; ++k) {
    if (toks[k].kind != Token::Kind::ident) continue;
    std::string_view t = toks[k].text;
    if (t == "defer_lock") {
      info.defer = true;
      info.label.clear();
      return info;
    }
    if (t == "adopt_lock" || t == "try_to_lock" || t == "std" || t == "this") continue;
    info.label = std::string(t);
  }
  return info;
}

/// Parse a guard declaration starting at the guard-type identifier `i`.
/// Handles `std::lock_guard<std::mutex> g(m);`, optional template args,
/// multi-mutex scoped_lock, `netbase::MutexLock g(m);`, defer_lock, and the
/// CTAD form `auto g = std::unique_lock(m);`. Reference/pointer parameter
/// declarations (`std::unique_lock<std::mutex>& lk`) are not guards here.
GuardDecl parse_guard_decl(const Tokens& toks, std::size_t i) {
  GuardDecl decl;
  std::size_t j = i + 1;
  if (j < toks.size() && is_punct(toks[j], "<")) j = skip_angles(toks, j);
  if (j >= toks.size()) return decl;

  if (toks[j].kind == Token::Kind::ident) {
    decl.guard.name = toks[j].text;
    ++j;
  } else if (is_punct(toks[j], "(")) {
    // CTAD: a preceding `auto g =` binds the temporary to a name; a bare
    // temporary guard dies at the end of the statement and is ignored.
    std::size_t qbegin = qualified_begin(toks, i);
    if (qbegin >= 3 && is_punct(toks[qbegin - 1], "=") &&
        toks[qbegin - 2].kind == Token::Kind::ident &&
        toks[qbegin - 3].kind == Token::Kind::ident && toks[qbegin - 3].text == "auto") {
      decl.guard.name = toks[qbegin - 2].text;
    } else {
      return decl;
    }
  } else {
    return decl;  // reference/pointer param, member decl, etc.
  }

  if (j >= toks.size() || !is_punct(toks[j], "(")) return decl;
  // Collect constructor arguments, splitting on top-level commas.
  int paren = 0;
  int angle = 0;
  std::size_t arg_begin = j + 1;
  bool deferred = false;
  for (; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "(")) ++paren;
    else if (is_punct(t, ")")) {
      if (--paren == 0) {
        ArgInfo info = classify_arg(toks, arg_begin, j);
        if (info.defer) deferred = true;
        if (!info.label.empty()) decl.guard.labels.push_back(std::move(info.label));
        decl.next = j + 1;
        break;
      }
    } else if (is_punct(t, "<")) {
      ++angle;
    } else if (is_punct(t, ">")) {
      if (angle > 0) --angle;
    } else if (is_punct(t, ",") && paren == 1 && angle == 0) {
      ArgInfo info = classify_arg(toks, arg_begin, j);
      if (info.defer) deferred = true;
      if (!info.label.empty()) decl.guard.labels.push_back(std::move(info.label));
      arg_begin = j + 1;
    } else if (is_punct(t, ";") || is_punct(t, "{")) {
      return decl;  // malformed
    }
  }
  if (decl.next == 0 || decl.guard.labels.empty()) return decl;
  decl.guard.line = toks[i].line;
  decl.guard.held = !deferred;
  decl.valid = true;
  return decl;
}

/// Per-file acquisition graph for R8 cycle detection.
class AcqGraph {
 public:
  /// Record `from` -> `to`; true when `to` could already reach `from`
  /// (i.e. this edge closes a cycle).
  bool add_and_check_cycle(const std::string& from, const std::string& to) {
    bool cyclic = reaches(to, from);
    if (!cyclic) adj_[from].insert(to);
    return cyclic;
  }

 private:
  bool reaches(const std::string& from, const std::string& to) const {
    if (from == to) return true;
    std::set<std::string> seen;
    std::vector<const std::string*> stack = {&from};
    while (!stack.empty()) {
      const std::string& node = *stack.back();
      stack.pop_back();
      auto it = adj_.find(node);
      if (it == adj_.end()) continue;
      for (const std::string& next : it->second) {
        if (next == to) return true;
        if (seen.insert(next).second) stack.push_back(&next);
      }
    }
    return false;
  }

  std::map<std::string, std::set<std::string>> adj_;
};

void add_finding(std::vector<Finding>& sink, std::string_view path, std::size_t line,
                 std::string_view rule, std::string message) {
  sink.push_back(Finding{std::string(path), line, std::string(rule), std::move(message)});
}

/// Walker state for R7/R8 over one file.
struct LockWalk {
  std::string_view path;
  const LockOrder* order = nullptr;
  std::vector<Finding>* sink = nullptr;
  std::vector<Scope> scopes{Scope{}};  // implicit file scope
  AcqGraph graph;

  /// Guards visible at the current point: everything from the innermost
  /// boundary scope (inclusive) outward-stops — a lambda body does not hold
  /// the enclosing function's guards.
  [[nodiscard]] std::vector<Guard*> visible_guards() {
    std::vector<Guard*> out;
    for (auto scope = scopes.rbegin(); scope != scopes.rend(); ++scope) {
      for (Guard& g : scope->guards) out.push_back(&g);
      if (scope->boundary) break;
    }
    return out;
  }

  /// R8: record edges from every held guard to each newly acquired label.
  void record_acquisition(const std::vector<std::string>& new_labels, std::size_t line) {
    for (Guard* held : visible_guards()) {
      if (!held->held) continue;
      for (const std::string& h : held->labels) {
        for (const std::string& n : new_labels) {
          if (h == n) {
            add_finding(*sink, path, line, kRuleLockOrder,
                        "acquiring '" + n + "' while already holding a lock with the "
                        "same label (line " + std::to_string(held->line) + "); two "
                        "same-class locks need an explicit address-ordered protocol");
            continue;
          }
          int rh = order->rank(h);
          int rn = order->rank(n);
          if (rh >= 0 && rn >= 0 && rh > rn) {
            add_finding(*sink, path, line, kRuleLockOrder,
                        "acquiring '" + n + "' while holding '" + h + "' (line " +
                        std::to_string(held->line) + ") contradicts the declared "
                        "order in tools/dnslint/lock_order.txt ('" + n + "' is "
                        "outermost-ranked above '" + h + "')");
            continue;
          }
          if (graph.add_and_check_cycle(h, n)) {
            add_finding(*sink, path, line, kRuleLockOrder,
                        "acquiring '" + n + "' while holding '" + h + "' (line " +
                        std::to_string(held->line) + ") closes an acquisition cycle "
                        "in this file — a lock-order inversion that can deadlock");
          }
        }
      }
    }
  }
};

void walk_lock_scopes(std::string_view path, const Tokens& toks, const LockOrder& order,
                      std::vector<Finding>& sink) {
  LockWalk walk;
  walk.path = path;
  walk.order = &order;
  walk.sink = &sink;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      walk.scopes.push_back(Scope{lambda_boundary(toks, i), {}});
      continue;
    }
    if (is_punct(t, "}")) {
      if (walk.scopes.size() > 1) walk.scopes.pop_back();
      continue;
    }
    if (t.kind != Token::Kind::ident) continue;

    // Guard declarations.
    if (is_guard_type(t.text) && !member_access(toks, i)) {
      GuardDecl decl = parse_guard_decl(toks, i);
      if (decl.valid) {
        if (decl.guard.held) walk.record_acquisition(decl.guard.labels, decl.guard.line);
        walk.scopes.back().guards.push_back(std::move(decl.guard));
        i = decl.next - 1;
        continue;
      }
    }

    // Guard lifetime events: g.unlock() / g.lock() / std::move(g).
    if (i + 3 < toks.size() && is_punct(toks[i + 1], ".") &&
        toks[i + 2].kind == Token::Kind::ident && is_punct(toks[i + 3], "(")) {
      std::string_view method = toks[i + 2].text;
      if (method == "unlock" || method == "lock" || method == "try_lock") {
        for (Guard* g : walk.visible_guards()) {
          if (g->name != t.text) continue;
          if (method == "unlock") {
            g->held = false;
          } else {
            walk.record_acquisition(g->labels, toks[i].line);
            g->held = true;
          }
          break;
        }
      }
    }
    if (t.text == "move" && qualified_by(toks, i, "std") && i + 3 < toks.size() &&
        is_punct(toks[i + 1], "(") && toks[i + 2].kind == Token::Kind::ident &&
        is_punct(toks[i + 3], ")")) {
      for (Guard* g : walk.visible_guards()) {
        if (g->name == toks[i + 2].text) {
          g->held = false;  // ownership left this scope
          break;
        }
      }
    }

    // R7: blocking calls while any visible guard is held.
    bool call = i + 1 < toks.size() && is_punct(toks[i + 1], "(");
    if (!call) continue;
    const Guard* held = nullptr;
    for (Guard* g : walk.visible_guards()) {
      if (g->held) {
        held = g;
        break;
      }
    }
    if (held == nullptr) continue;

    if (is_blocking_call(t.text) && !member_access(toks, i)) {
      std::string lock_desc = held->labels.empty() ? std::string("a lock")
                                                   : "'" + held->labels.front() + "'";
      add_finding(sink, path, t.line, kRuleNoBlockingUnderLock,
                  std::string(t.text) + "() can block while holding " + lock_desc +
                  " (guard '" + std::string(held->name) + "', line " +
                  std::to_string(held->line) + "); release the lock first, or move "
                  "the slow work out of the critical section");
    } else if (t.text == "run" && member_access(toks, i)) {
      // sim.run() / simulator->run(...) pumps the whole event loop.
      std::size_t recv = i >= 2 && is_punct(toks[i - 1], ".") ? i - 2
                       : i >= 3 ? i - 3
                                : 0;
      if (recv > 0 && toks[recv].kind == Token::Kind::ident) {
        std::string lower(toks[recv].text);
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
        if (lower.find("sim") != std::string::npos) {
          add_finding(sink, path, t.line, kRuleNoBlockingUnderLock,
                      "Simulator::run() under '" + std::string(held->name) +
                      "' (line " + std::to_string(held->line) + ") pumps the whole "
                      "event loop inside a critical section; run the simulation "
                      "outside the lock and publish results after");
        }
      }
    }
  }
}

// ------------------------------------------------------------------ R9 -----

constexpr std::array<std::string_view, 5> kRawMutexTypes = {
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex"};

/// Identifiers that exempt a member statement from the guarded-by rule:
/// non-field declarations, lock-free members, and synchronization primitives
/// with their own discipline.
constexpr std::array<std::string_view, 13> kCoverageExempt = {
    "static", "constexpr", "using",  "friend",   "typedef",
    "operator", "enum",    "class",  "struct",   "template",
    "atomic", "condition_variable", "condition_variable_any"};

struct MemberStmt {
  std::vector<std::size_t> toks;  // indices into the file token stream
};

/// Analyze one member-declaration statement of a class body.
void analyze_member(std::string_view path, const Tokens& toks, MemberStmt& stmt,
                    bool& mutex_seen, std::vector<Finding>& sink) {
  // Strip access labels (`public:` etc. fold into the following statement).
  std::size_t begin = 0;
  while (begin + 1 < stmt.toks.size()) {
    const Token& a = toks[stmt.toks[begin]];
    if (a.kind == Token::Kind::ident &&
        (a.text == "public" || a.text == "private" || a.text == "protected") &&
        is_punct(toks[stmt.toks[begin + 1]], ":"))
      begin += 2;
    else
      break;
  }
  if (begin >= stmt.toks.size()) return;

  bool exempt = false;
  bool has_annotation = false;
  bool declares_capability = false;
  for (std::size_t k = begin; k < stmt.toks.size(); ++k) {
    const Token& t = toks[stmt.toks[k]];
    if (t.kind != Token::Kind::ident) continue;
    if (std::find(kCoverageExempt.begin(), kCoverageExempt.end(), t.text) !=
        kCoverageExempt.end())
      exempt = true;
    if (t.text == "DNSLOCATE_GUARDED_BY" || t.text == "DNSLOCATE_PT_GUARDED_BY")
      has_annotation = true;
    if (t.text == "Mutex" && k + 1 < stmt.toks.size() &&
        toks[stmt.toks[k + 1]].kind == Token::Kind::ident)
      declares_capability = true;
    // Raw standard mutex member: must be the netbase::Mutex wrapper instead.
    if (std::find(kRawMutexTypes.begin(), kRawMutexTypes.end(), t.text) !=
            kRawMutexTypes.end() &&
        qualified_by(toks, stmt.toks[k], "std") && k + 1 < stmt.toks.size() &&
        toks[stmt.toks[k + 1]].kind == Token::Kind::ident) {
      add_finding(sink, path, t.line, kRuleAnnotationCoverage,
                  "raw std::" + std::string(t.text) + " member in an annotated "
                  "subsystem; use the netbase::Mutex capability wrapper "
                  "(netbase/thread_annotations.h) so clang's thread-safety "
                  "analysis can see the lock");
      return;
    }
  }
  if (declares_capability) {
    mutex_seen = true;
    return;
  }
  if (exempt || !mutex_seen) return;

  // Field vs. function: a function declarator has an identifier directly
  // followed by '(' outside template angle brackets (annotation macros are
  // not declarators).
  int angle = 0;
  bool is_function = false;
  for (std::size_t k = begin; k + 1 < stmt.toks.size(); ++k) {
    const Token& t = toks[stmt.toks[k]];
    if (is_punct(t, "<")) ++angle;
    else if (is_punct(t, ">")) {
      if (angle > 0) --angle;
    } else if (angle == 0 && t.kind == Token::Kind::ident &&
               is_punct(toks[stmt.toks[k + 1]], "(") &&
               t.text.substr(0, 10) != "DNSLOCATE_") {
      is_function = true;
      break;
    }
  }
  if (is_function) return;

  if (!has_annotation) {
    const Token& first = toks[stmt.toks[begin]];
    add_finding(sink, path, first.line, kRuleAnnotationCoverage,
                "field declared after a Mutex member without DNSLOCATE_GUARDED_BY; "
                "state below the lock is the state it guards — annotate it (or move "
                "an immutable field above the Mutex with an ownership comment)");
  }
}

struct ClassFrame {
  bool class_body = false;
  bool mutex_seen = false;
  MemberStmt stmt;
};

void walk_annotation_coverage(std::string_view path, const Tokens& toks,
                              std::vector<Finding>& sink) {
  std::vector<ClassFrame> frames{ClassFrame{}};  // file scope
  bool pending_class = false;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::ident && (t.text == "class" || t.text == "struct")) {
      bool template_param =
          i > 0 && (is_punct(toks[i - 1], "<") || is_punct(toks[i - 1], ","));
      bool enum_class = i > 0 && toks[i - 1].kind == Token::Kind::ident &&
                        toks[i - 1].text == "enum";
      if (!template_param && !enum_class) pending_class = true;
    }
    if (is_punct(t, ";") && frames.size() == 1) pending_class = false;

    if (is_punct(t, "{")) {
      ClassFrame frame;
      frame.class_body = pending_class;
      pending_class = false;
      frames.push_back(std::move(frame));
      continue;
    }
    if (is_punct(t, "}")) {
      if (frames.size() > 1) frames.pop_back();
      if (frames.back().class_body) {
        // A nested body just closed inside a class. `};` means it was a
        // nested type or a brace-initialized field (keep accumulating until
        // the ';'); anything else was a member function definition.
        if (i + 1 >= toks.size() || !is_punct(toks[i + 1], ";"))
          frames.back().stmt.toks.clear();
      }
      continue;
    }

    ClassFrame& top = frames.back();
    if (!top.class_body) continue;
    if (is_punct(t, ";")) {
      analyze_member(path, toks, top.stmt, top.mutex_seen, sink);
      top.stmt.toks.clear();
      continue;
    }
    top.stmt.toks.push_back(i);
  }
}

}  // namespace

void check_lock_scopes(std::string_view path, const std::vector<Token>& tokens,
                       const LockOrder& order, std::vector<Finding>& sink) {
  walk_lock_scopes(path, tokens, order, sink);
}

void check_annotation_coverage(std::string_view path, const std::vector<Token>& tokens,
                               std::vector<Finding>& sink) {
  walk_annotation_coverage(path, tokens, sink);
}

int LockOrder::rank(std::string_view label) const {
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (labels[i] == label) return static_cast<int>(i);
  return -1;
}

LockOrder parse_lock_order(std::string_view text) {
  LockOrder order;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    std::size_t last = line.find_last_not_of(" \t\r");
    order.labels.push_back(line.substr(first, last - first + 1));
  }
  return order;
}

}  // namespace dnslocate::lint
