// Shared lexical layer for dnslint's two engines: the line/token rules
// (lint.cc, R1-R6) and the scope-aware lock analysis (scopes.cc, R7-R9).
//
// scrub() blanks comment/string/char-literal bodies to spaces while
// preserving length and line structure, so token scans can never be fooled
// by quoted or commented-out code; the comments themselves are captured for
// directive parsing (`// dnslint: allow(...)`).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dnslocate::lint {

[[nodiscard]] bool is_ident_char(char c);

/// A comment extracted during scrubbing (directives live in comments).
struct CommentSpan {
  std::size_t line = 0;    // 1-based line of the comment's first character
  bool owns_line = false;  // nothing but whitespace precedes it on that line
  std::string text;
};

/// Source with comment/string/char-literal bodies blanked to spaces.
/// Same length and line structure as the input.
struct Scrubbed {
  std::string code;
  std::vector<CommentSpan> comments;
};

[[nodiscard]] Scrubbed scrub(std::string_view src);

/// Split on '\n'; the views alias `text`.
[[nodiscard]] std::vector<std::string_view> split_lines(std::string_view text);

/// Find `word` as a whole identifier in `line`, starting at `from`.
[[nodiscard]] std::size_t find_ident(std::string_view line, std::string_view word,
                                     std::size_t from = 0);

[[nodiscard]] std::size_t skip_ws(std::string_view line, std::size_t pos);

/// Is the identifier at [pos, pos+len) called as a function (next token '(')?
[[nodiscard]] bool is_call(std::string_view line, std::size_t pos, std::size_t len);

/// Is the identifier at `pos` a member access (`x.foo`, `x->foo`)?
[[nodiscard]] bool is_member_access(std::string_view line, std::size_t pos);

/// The `::` qualifier immediately before the identifier at `pos` (empty for
/// the global namespace or none).
[[nodiscard]] std::string_view qualifier(std::string_view line, std::size_t pos);

/// One lexical token of scrubbed code: an identifier (possibly a keyword) or
/// a single punctuation character. Numbers are folded into `number`.
struct Token {
  enum class Kind { ident, punct, number };
  Kind kind = Kind::punct;
  std::string_view text;  // aliases the scrubbed code
  std::size_t line = 0;   // 1-based
};

/// Tokenize scrubbed code (comments/strings already blanked). Whitespace is
/// dropped; every other byte becomes an ident/number/punct token.
[[nodiscard]] std::vector<Token> tokenize(std::string_view scrubbed_code);

}  // namespace dnslocate::lint
