// dnslint — project-invariant static analysis for the dnslocate tree.
//
// The compiler cannot see the two properties the whole reproduction rests
// on: measurements are deterministic (seeded IDs, sim-clock time) and wire
// parsing never reads out of bounds. dnslint enforces them as machine
// checks over a token/line-level view of the source:
//
//   R1 determinism     — no ambient entropy or wall-clock reads outside the
//                        allowlisted clock/entropy seam (obs::ScopedClock,
//                        simnet::Rng / simnet time).
//   R2 wire-bounds     — buffer access in src/dnswire/ goes through the
//                        bounds-checked cursor helpers: no raw memcpy/
//                        pointer arithmetic/reinterpret_cast over wire bytes.
//   R3 raii-sockets    — no naked socket()/close()/recvfrom()/poll() calls
//                        outside the fd owners (src/sockets/, plus the one
//                        allowlisted accept-loop seam src/service/
//                        http_server.cc), and no poll() with an infinite
//                        (-1) timeout anywhere.
//   R4 header-hygiene  — headers use #pragma once (exactly once, no legacy
//                        include guards) and never `using namespace`.
//   R5 http-blocking   — src/service/ code outside the accept-loop seam
//                        runs on the HTTP event thread (handlers, stream
//                        pullers) and must never issue a blocking read:
//                        no recv()/read()/accept()/select()/fgets()/
//                        getline()/std::cin there.
//   R6 single-acceptance-seam
//                      — answer acceptance, duplicate-window fingerprinting
//                        and arbitration have exactly one implementation:
//                        the exchange kernel (src/core/exchange.*). Outside
//                        it, calls to dnswire::is_acceptable_response (except
//                        in src/dnswire/, which defines it), responses_conflict,
//                        rerandomize_query (except src/core/retry.*, which
//                        defines it) or a local payload/bytes hash are
//                        findings: transports must route answers through
//                        core::run_exchange / ExchangeLedger.
//
// A second, scope-aware engine (scopes.h) tracks RAII lock-guard lifetimes
// through nested scopes — lambdas, early returns, unlock()/lock(), moved
// unique_locks — and enforces the concurrency discipline that clang's
// thread-safety analysis (engine 1, netbase/thread_annotations.h) cannot
// express:
//
//   R7 no-blocking-under-lock
//                      — no blocking syscall (fsync/::write/poll/recv*/
//                        send*/sleep_for/...) and no Simulator::run() while
//                        a lock guard is live. Whole-token matching: a named
//                        helper over a deliberate leaf lock (the journal
//                        writer) documents itself at its definition site.
//   R8 lock-order      — nested acquisitions build a per-file graph; edges
//                        contradicting tools/dnslint/lock_order.txt or
//                        closing a cycle are deadlock findings.
//   R9 annotation-coverage
//                      — annotated subsystems (src/service, src/obs,
//                        src/atlas, src/netbase, src/sockets) declare every
//                        mutex as the netbase::Mutex capability wrapper, and
//                        every field after a Mutex member carries
//                        DNSLOCATE_GUARDED_BY (atomics/condvars exempt).
//
// Suppressions: `// dnslint: allow(<rule>): <reason>` on the offending line
// or alone on the line above (where it covers the whole statement that
// starts on the next line, however many lines it spans). The reason string
// is mandatory — an allow() without one is itself a finding
// (bad-suppression).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dnslocate::lint {

/// Stable rule identifiers (used in diagnostics and allow() directives).
inline constexpr std::string_view kRuleDeterminism = "determinism";
inline constexpr std::string_view kRuleWireBounds = "wire-bounds";
inline constexpr std::string_view kRuleRaiiSockets = "raii-sockets";
inline constexpr std::string_view kRuleHeaderHygiene = "header-hygiene";
inline constexpr std::string_view kRuleHttpBlocking = "http-blocking";
inline constexpr std::string_view kRuleAcceptanceSeam = "single-acceptance-seam";
inline constexpr std::string_view kRuleNoBlockingUnderLock = "no-blocking-under-lock";
inline constexpr std::string_view kRuleLockOrder = "lock-order";
inline constexpr std::string_view kRuleAnnotationCoverage = "annotation-coverage";
inline constexpr std::string_view kRuleBadSuppression = "bad-suppression";

/// One diagnostic.
struct Finding {
  std::string path;     // as given to lint_file (repo-relative by convention)
  std::size_t line = 0; // 1-based
  std::string rule;     // one of the kRule* ids
  std::string message;  // human-readable detail

  [[nodiscard]] std::string to_string() const;
};

/// Declared lock acquisition order for R8: one label per line, outermost
/// first, '#' starts a comment. A label is the last identifier of the lock
/// expression at the acquisition site (`run->mutex` -> "mutex").
struct LockOrder {
  std::vector<std::string> labels;

  /// Position in the declared order; -1 for undeclared labels (which are
  /// only checked for cycles, not rank).
  [[nodiscard]] int rank(std::string_view label) const;
};

/// Parse lock_order.txt contents.
[[nodiscard]] LockOrder parse_lock_order(std::string_view text);

/// Load `<root>/tools/dnslint/lock_order.txt`; empty order when absent (R8
/// then degrades to cycle detection only).
[[nodiscard]] LockOrder load_lock_order(const std::string& root);

/// Lint one file's contents. `path` decides which rules apply (R2 only under
/// src/dnswire/, R3 ownership outside src/sockets/, R4 for headers, R9 in
/// the annotated subsystems) and must be relative to the repo root (forward
/// slashes). The LockOrder overload feeds R8's declared-order check; the
/// two-argument form runs R8 in cycle-detection-only mode.
std::vector<Finding> lint_file(std::string_view path, std::string_view content);
std::vector<Finding> lint_file(std::string_view path, std::string_view content,
                               const LockOrder& lock_order);

/// Lint files on disk. Each entry of `files` is an absolute or cwd-relative
/// path; `root` is stripped to obtain the repo-relative path used for rule
/// scoping, and `<root>/tools/dnslint/lock_order.txt` (if present) supplies
/// the declared order for R8. Unreadable files produce a finding rather
/// than a crash.
std::vector<Finding> lint_paths(const std::string& root,
                                const std::vector<std::string>& files);

/// Discover lintable sources: every *.cc listed in `compile_commands_path`
/// (empty string = skip) that lives under root/src, plus every *.h / *.cc
/// found by walking root/src (the walk catches headers, which never appear
/// in a compilation database). Returns absolute paths, sorted, deduplicated.
std::vector<std::string> discover_sources(const std::string& root,
                                          const std::string& compile_commands_path);

}  // namespace dnslocate::lint
