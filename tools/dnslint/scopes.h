// Engine 2 of the concurrency-discipline pass: a brace/scope-aware walk of
// the token stream that tracks RAII lock-guard lifetimes (lock_guard,
// unique_lock, scoped_lock, netbase::MutexLock) through nested scopes —
// including lambda bodies (which suspend the enclosing function's guards:
// a lambda that *captures* a lock runs later, on some other frame),
// `.unlock()` / `.lock()` transitions, and `std::move`d unique_locks.
//
// Three rules run over the tracked state (ids in lint.h):
//
//   R7 no-blocking-under-lock — no blocking syscall (fsync/::write/poll/
//      recv*/send*/sleep_for/...) and no Simulator `.run()` while a guard
//      is live. The PR 8 service bug — fsync of the journal under the
//      service-wide mutex, stalling every worker — is this rule's fixture.
//   R8 lock-order — every nested acquisition adds an edge to a per-file
//      acquisition graph; edges contradicting the declared order
//      (tools/dnslint/lock_order.txt) or closing a cycle are findings.
//   R9 annotation-coverage — in annotated subsystems, every mutex member
//      must be the netbase::Mutex capability wrapper (never raw std::mutex),
//      and every field declared after a Mutex member must carry
//      DNSLOCATE_GUARDED_BY / DNSLOCATE_PT_GUARDED_BY (atomics, condition
//      variables and further Mutex members are exempt).
#pragma once

#include <string_view>
#include <vector>

#include "dnslint/lint.h"
#include "dnslint/scan.h"

namespace dnslocate::lint {

/// R7 + R8 over one file's token stream (tokenize() of scrubbed code).
void check_lock_scopes(std::string_view path, const std::vector<Token>& tokens,
                       const LockOrder& order, std::vector<Finding>& sink);

/// R9 over one file's token stream.
void check_annotation_coverage(std::string_view path, const std::vector<Token>& tokens,
                               std::vector<Finding>& sink);

}  // namespace dnslocate::lint
