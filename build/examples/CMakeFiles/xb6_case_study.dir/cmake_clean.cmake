file(REMOVE_RECURSE
  "CMakeFiles/xb6_case_study.dir/xb6_case_study.cpp.o"
  "CMakeFiles/xb6_case_study.dir/xb6_case_study.cpp.o.d"
  "xb6_case_study"
  "xb6_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xb6_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
