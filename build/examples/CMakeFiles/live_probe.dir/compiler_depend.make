# Empty compiler generated dependencies file for live_probe.
# This may be replaced when dependencies are built.
