file(REMOVE_RECURSE
  "CMakeFiles/custom_fleet.dir/custom_fleet.cpp.o"
  "CMakeFiles/custom_fleet.dir/custom_fleet.cpp.o.d"
  "custom_fleet"
  "custom_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
