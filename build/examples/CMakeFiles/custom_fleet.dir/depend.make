# Empty dependencies file for custom_fleet.
# This may be replaced when dependencies are built.
