# Empty dependencies file for interception_monitor.
# This may be replaced when dependencies are built.
