file(REMOVE_RECURSE
  "CMakeFiles/interception_monitor.dir/interception_monitor.cpp.o"
  "CMakeFiles/interception_monitor.dir/interception_monitor.cpp.o.d"
  "interception_monitor"
  "interception_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interception_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
