# Empty dependencies file for atlas_pilot.
# This may be replaced when dependencies are built.
