file(REMOVE_RECURSE
  "CMakeFiles/atlas_pilot.dir/atlas_pilot.cpp.o"
  "CMakeFiles/atlas_pilot.dir/atlas_pilot.cpp.o.d"
  "atlas_pilot"
  "atlas_pilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas_pilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
