file(REMOVE_RECURSE
  "CMakeFiles/zone_server.dir/zone_server.cpp.o"
  "CMakeFiles/zone_server.dir/zone_server.cpp.o.d"
  "zone_server"
  "zone_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
