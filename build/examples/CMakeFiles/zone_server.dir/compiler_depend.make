# Empty compiler generated dependencies file for zone_server.
# This may be replaced when dependencies are built.
