file(REMOVE_RECURSE
  "CMakeFiles/ablation_signals.dir/ablation_signals.cc.o"
  "CMakeFiles/ablation_signals.dir/ablation_signals.cc.o.d"
  "ablation_signals"
  "ablation_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
