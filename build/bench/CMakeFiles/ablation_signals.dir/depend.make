# Empty dependencies file for ablation_signals.
# This may be replaced when dependencies are built.
