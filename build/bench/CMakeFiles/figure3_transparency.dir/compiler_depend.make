# Empty compiler generated dependencies file for figure3_transparency.
# This may be replaced when dependencies are built.
