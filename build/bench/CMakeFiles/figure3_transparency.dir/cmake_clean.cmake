file(REMOVE_RECURSE
  "CMakeFiles/figure3_transparency.dir/figure3_transparency.cc.o"
  "CMakeFiles/figure3_transparency.dir/figure3_transparency.cc.o.d"
  "figure3_transparency"
  "figure3_transparency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_transparency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
