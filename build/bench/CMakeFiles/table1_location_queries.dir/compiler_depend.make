# Empty compiler generated dependencies file for table1_location_queries.
# This may be replaced when dependencies are built.
