
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_location_queries.cc" "bench/CMakeFiles/table1_location_queries.dir/table1_location_queries.cc.o" "gcc" "bench/CMakeFiles/table1_location_queries.dir/table1_location_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/report.dir/DependInfo.cmake"
  "/root/repo/build/src/atlas/CMakeFiles/atlas.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpe/CMakeFiles/cpe.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/isp.dir/DependInfo.cmake"
  "/root/repo/build/src/resolvers/CMakeFiles/resolvers.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/dnswire/CMakeFiles/dnswire.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/jsonio/CMakeFiles/jsonio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
