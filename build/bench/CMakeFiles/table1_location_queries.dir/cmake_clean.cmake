file(REMOVE_RECURSE
  "CMakeFiles/table1_location_queries.dir/table1_location_queries.cc.o"
  "CMakeFiles/table1_location_queries.dir/table1_location_queries.cc.o.d"
  "table1_location_queries"
  "table1_location_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_location_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
