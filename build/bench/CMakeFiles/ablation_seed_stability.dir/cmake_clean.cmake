file(REMOVE_RECURSE
  "CMakeFiles/ablation_seed_stability.dir/ablation_seed_stability.cc.o"
  "CMakeFiles/ablation_seed_stability.dir/ablation_seed_stability.cc.o.d"
  "ablation_seed_stability"
  "ablation_seed_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seed_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
