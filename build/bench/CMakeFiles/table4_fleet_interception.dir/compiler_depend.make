# Empty compiler generated dependencies file for table4_fleet_interception.
# This may be replaced when dependencies are built.
