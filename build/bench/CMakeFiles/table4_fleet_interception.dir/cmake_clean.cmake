file(REMOVE_RECURSE
  "CMakeFiles/table4_fleet_interception.dir/table4_fleet_interception.cc.o"
  "CMakeFiles/table4_fleet_interception.dir/table4_fleet_interception.cc.o.d"
  "table4_fleet_interception"
  "table4_fleet_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fleet_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
