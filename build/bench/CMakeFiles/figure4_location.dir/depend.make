# Empty dependencies file for figure4_location.
# This may be replaced when dependencies are built.
