file(REMOVE_RECURSE
  "CMakeFiles/figure4_location.dir/figure4_location.cc.o"
  "CMakeFiles/figure4_location.dir/figure4_location.cc.o.d"
  "figure4_location"
  "figure4_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
