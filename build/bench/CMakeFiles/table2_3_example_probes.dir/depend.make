# Empty dependencies file for table2_3_example_probes.
# This may be replaced when dependencies are built.
