file(REMOVE_RECURSE
  "CMakeFiles/table2_3_example_probes.dir/table2_3_example_probes.cc.o"
  "CMakeFiles/table2_3_example_probes.dir/table2_3_example_probes.cc.o.d"
  "table2_3_example_probes"
  "table2_3_example_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_3_example_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
