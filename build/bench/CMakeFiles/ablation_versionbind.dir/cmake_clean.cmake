file(REMOVE_RECURSE
  "CMakeFiles/ablation_versionbind.dir/ablation_versionbind.cc.o"
  "CMakeFiles/ablation_versionbind.dir/ablation_versionbind.cc.o.d"
  "ablation_versionbind"
  "ablation_versionbind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_versionbind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
