# Empty dependencies file for ablation_versionbind.
# This may be replaced when dependencies are built.
