file(REMOVE_RECURSE
  "CMakeFiles/ablation_dot.dir/ablation_dot.cc.o"
  "CMakeFiles/ablation_dot.dir/ablation_dot.cc.o.d"
  "ablation_dot"
  "ablation_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
