# Empty compiler generated dependencies file for ablation_dot.
# This may be replaced when dependencies are built.
