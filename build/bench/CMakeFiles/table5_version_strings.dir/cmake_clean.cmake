file(REMOVE_RECURSE
  "CMakeFiles/table5_version_strings.dir/table5_version_strings.cc.o"
  "CMakeFiles/table5_version_strings.dir/table5_version_strings.cc.o.d"
  "table5_version_strings"
  "table5_version_strings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_version_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
