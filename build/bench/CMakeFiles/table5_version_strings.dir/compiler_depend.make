# Empty compiler generated dependencies file for table5_version_strings.
# This may be replaced when dependencies are built.
