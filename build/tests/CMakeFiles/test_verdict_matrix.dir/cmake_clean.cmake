file(REMOVE_RECURSE
  "CMakeFiles/test_verdict_matrix.dir/test_verdict_matrix.cc.o"
  "CMakeFiles/test_verdict_matrix.dir/test_verdict_matrix.cc.o.d"
  "test_verdict_matrix"
  "test_verdict_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verdict_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
