file(REMOVE_RECURSE
  "CMakeFiles/test_core_dot.dir/test_core_dot.cc.o"
  "CMakeFiles/test_core_dot.dir/test_core_dot.cc.o.d"
  "test_core_dot"
  "test_core_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
