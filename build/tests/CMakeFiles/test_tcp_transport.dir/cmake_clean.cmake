file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_transport.dir/test_tcp_transport.cc.o"
  "CMakeFiles/test_tcp_transport.dir/test_tcp_transport.cc.o.d"
  "test_tcp_transport"
  "test_tcp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
