# Empty dependencies file for test_forwarder_cache.
# This may be replaced when dependencies are built.
