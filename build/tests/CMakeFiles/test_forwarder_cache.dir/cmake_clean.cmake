file(REMOVE_RECURSE
  "CMakeFiles/test_forwarder_cache.dir/test_forwarder_cache.cc.o"
  "CMakeFiles/test_forwarder_cache.dir/test_forwarder_cache.cc.o.d"
  "test_forwarder_cache"
  "test_forwarder_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forwarder_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
