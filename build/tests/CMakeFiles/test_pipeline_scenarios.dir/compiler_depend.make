# Empty compiler generated dependencies file for test_pipeline_scenarios.
# This may be replaced when dependencies are built.
