file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_scenarios.dir/test_pipeline_scenarios.cc.o"
  "CMakeFiles/test_pipeline_scenarios.dir/test_pipeline_scenarios.cc.o.d"
  "test_pipeline_scenarios"
  "test_pipeline_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
