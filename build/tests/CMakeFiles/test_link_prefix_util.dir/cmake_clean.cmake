file(REMOVE_RECURSE
  "CMakeFiles/test_link_prefix_util.dir/test_link_prefix_util.cc.o"
  "CMakeFiles/test_link_prefix_util.dir/test_link_prefix_util.cc.o.d"
  "test_link_prefix_util"
  "test_link_prefix_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_prefix_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
