# Empty compiler generated dependencies file for test_link_prefix_util.
# This may be replaced when dependencies are built.
