# Empty dependencies file for test_nat_extended.
# This may be replaced when dependencies are built.
