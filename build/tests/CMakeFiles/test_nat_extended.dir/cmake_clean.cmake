file(REMOVE_RECURSE
  "CMakeFiles/test_nat_extended.dir/test_nat_extended.cc.o"
  "CMakeFiles/test_nat_extended.dir/test_nat_extended.cc.o.d"
  "test_nat_extended"
  "test_nat_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nat_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
