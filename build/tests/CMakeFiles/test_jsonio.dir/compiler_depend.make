# Empty compiler generated dependencies file for test_jsonio.
# This may be replaced when dependencies are built.
