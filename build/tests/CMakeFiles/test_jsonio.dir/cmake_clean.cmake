file(REMOVE_RECURSE
  "CMakeFiles/test_jsonio.dir/test_jsonio.cc.o"
  "CMakeFiles/test_jsonio.dir/test_jsonio.cc.o.d"
  "test_jsonio"
  "test_jsonio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jsonio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
