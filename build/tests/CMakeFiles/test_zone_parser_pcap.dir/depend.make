# Empty dependencies file for test_zone_parser_pcap.
# This may be replaced when dependencies are built.
