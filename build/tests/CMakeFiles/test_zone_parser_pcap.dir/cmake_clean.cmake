file(REMOVE_RECURSE
  "CMakeFiles/test_zone_parser_pcap.dir/test_zone_parser_pcap.cc.o"
  "CMakeFiles/test_zone_parser_pcap.dir/test_zone_parser_pcap.cc.o.d"
  "test_zone_parser_pcap"
  "test_zone_parser_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zone_parser_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
