# Empty compiler generated dependencies file for test_loopback_pipeline.
# This may be replaced when dependencies are built.
