file(REMOVE_RECURSE
  "CMakeFiles/test_loopback_pipeline.dir/test_loopback_pipeline.cc.o"
  "CMakeFiles/test_loopback_pipeline.dir/test_loopback_pipeline.cc.o.d"
  "test_loopback_pipeline"
  "test_loopback_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loopback_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
