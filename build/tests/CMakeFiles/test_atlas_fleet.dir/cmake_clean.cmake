file(REMOVE_RECURSE
  "CMakeFiles/test_atlas_fleet.dir/test_atlas_fleet.cc.o"
  "CMakeFiles/test_atlas_fleet.dir/test_atlas_fleet.cc.o.d"
  "test_atlas_fleet"
  "test_atlas_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atlas_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
