# Empty dependencies file for test_atlas_fleet.
# This may be replaced when dependencies are built.
