file(REMOVE_RECURSE
  "CMakeFiles/test_simnet_core.dir/test_simnet_core.cc.o"
  "CMakeFiles/test_simnet_core.dir/test_simnet_core.cc.o.d"
  "test_simnet_core"
  "test_simnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
