# Empty dependencies file for test_simnet_core.
# This may be replaced when dependencies are built.
