# Empty dependencies file for test_simnet_nat.
# This may be replaced when dependencies are built.
