file(REMOVE_RECURSE
  "CMakeFiles/test_simnet_nat.dir/test_simnet_nat.cc.o"
  "CMakeFiles/test_simnet_nat.dir/test_simnet_nat.cc.o.d"
  "test_simnet_nat"
  "test_simnet_nat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
