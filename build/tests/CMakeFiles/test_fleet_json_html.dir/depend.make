# Empty dependencies file for test_fleet_json_html.
# This may be replaced when dependencies are built.
