file(REMOVE_RECURSE
  "CMakeFiles/test_fleet_json_html.dir/test_fleet_json_html.cc.o"
  "CMakeFiles/test_fleet_json_html.dir/test_fleet_json_html.cc.o.d"
  "test_fleet_json_html"
  "test_fleet_json_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fleet_json_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
