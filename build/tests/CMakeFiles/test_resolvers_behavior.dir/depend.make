# Empty dependencies file for test_resolvers_behavior.
# This may be replaced when dependencies are built.
