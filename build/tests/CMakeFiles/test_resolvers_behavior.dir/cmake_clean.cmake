file(REMOVE_RECURSE
  "CMakeFiles/test_resolvers_behavior.dir/test_resolvers_behavior.cc.o"
  "CMakeFiles/test_resolvers_behavior.dir/test_resolvers_behavior.cc.o.d"
  "test_resolvers_behavior"
  "test_resolvers_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolvers_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
