file(REMOVE_RECURSE
  "CMakeFiles/test_dnswire_codec.dir/test_dnswire_codec.cc.o"
  "CMakeFiles/test_dnswire_codec.dir/test_dnswire_codec.cc.o.d"
  "test_dnswire_codec"
  "test_dnswire_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnswire_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
