# Empty dependencies file for test_dnswire_codec.
# This may be replaced when dependencies are built.
