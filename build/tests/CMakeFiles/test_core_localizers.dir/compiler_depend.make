# Empty compiler generated dependencies file for test_core_localizers.
# This may be replaced when dependencies are built.
