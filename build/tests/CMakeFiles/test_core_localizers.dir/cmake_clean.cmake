file(REMOVE_RECURSE
  "CMakeFiles/test_core_localizers.dir/test_core_localizers.cc.o"
  "CMakeFiles/test_core_localizers.dir/test_core_localizers.cc.o.d"
  "test_core_localizers"
  "test_core_localizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_localizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
