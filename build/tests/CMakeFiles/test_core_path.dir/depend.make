# Empty dependencies file for test_core_path.
# This may be replaced when dependencies are built.
