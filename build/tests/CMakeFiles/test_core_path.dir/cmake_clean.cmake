file(REMOVE_RECURSE
  "CMakeFiles/test_core_path.dir/test_core_path.cc.o"
  "CMakeFiles/test_core_path.dir/test_core_path.cc.o.d"
  "test_core_path"
  "test_core_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
