file(REMOVE_RECURSE
  "CMakeFiles/test_core_signals.dir/test_core_signals.cc.o"
  "CMakeFiles/test_core_signals.dir/test_core_signals.cc.o.d"
  "test_core_signals"
  "test_core_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
