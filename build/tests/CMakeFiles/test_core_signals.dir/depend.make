# Empty dependencies file for test_core_signals.
# This may be replaced when dependencies are built.
