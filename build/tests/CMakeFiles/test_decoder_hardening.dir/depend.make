# Empty dependencies file for test_decoder_hardening.
# This may be replaced when dependencies are built.
