file(REMOVE_RECURSE
  "CMakeFiles/test_decoder_hardening.dir/test_decoder_hardening.cc.o"
  "CMakeFiles/test_decoder_hardening.dir/test_decoder_hardening.cc.o.d"
  "test_decoder_hardening"
  "test_decoder_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decoder_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
