file(REMOVE_RECURSE
  "CMakeFiles/test_cpe_isp.dir/test_cpe_isp.cc.o"
  "CMakeFiles/test_cpe_isp.dir/test_cpe_isp.cc.o.d"
  "test_cpe_isp"
  "test_cpe_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpe_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
