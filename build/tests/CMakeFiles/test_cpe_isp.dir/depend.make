# Empty dependencies file for test_cpe_isp.
# This may be replaced when dependencies are built.
