# Empty dependencies file for test_resolvers_forwarder.
# This may be replaced when dependencies are built.
