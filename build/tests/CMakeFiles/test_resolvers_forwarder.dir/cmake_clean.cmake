file(REMOVE_RECURSE
  "CMakeFiles/test_resolvers_forwarder.dir/test_resolvers_forwarder.cc.o"
  "CMakeFiles/test_resolvers_forwarder.dir/test_resolvers_forwarder.cc.o.d"
  "test_resolvers_forwarder"
  "test_resolvers_forwarder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolvers_forwarder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
