file(REMOVE_RECURSE
  "CMakeFiles/test_dnswire_name.dir/test_dnswire_name.cc.o"
  "CMakeFiles/test_dnswire_name.dir/test_dnswire_name.cc.o.d"
  "test_dnswire_name"
  "test_dnswire_name.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnswire_name.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
