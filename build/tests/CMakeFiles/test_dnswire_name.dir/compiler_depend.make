# Empty compiler generated dependencies file for test_dnswire_name.
# This may be replaced when dependencies are built.
