# Empty dependencies file for test_scenarios_extended.
# This may be replaced when dependencies are built.
