file(REMOVE_RECURSE
  "CMakeFiles/test_scenarios_extended.dir/test_scenarios_extended.cc.o"
  "CMakeFiles/test_scenarios_extended.dir/test_scenarios_extended.cc.o.d"
  "test_scenarios_extended"
  "test_scenarios_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenarios_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
