file(REMOVE_RECURSE
  "CMakeFiles/test_resolvers_zone.dir/test_resolvers_zone.cc.o"
  "CMakeFiles/test_resolvers_zone.dir/test_resolvers_zone.cc.o.d"
  "test_resolvers_zone"
  "test_resolvers_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolvers_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
