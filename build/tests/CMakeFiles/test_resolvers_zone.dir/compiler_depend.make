# Empty compiler generated dependencies file for test_resolvers_zone.
# This may be replaced when dependencies are built.
