# Empty dependencies file for test_dnswire_message.
# This may be replaced when dependencies are built.
