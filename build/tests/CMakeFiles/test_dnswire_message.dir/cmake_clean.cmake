file(REMOVE_RECURSE
  "CMakeFiles/test_dnswire_message.dir/test_dnswire_message.cc.o"
  "CMakeFiles/test_dnswire_message.dir/test_dnswire_message.cc.o.d"
  "test_dnswire_message"
  "test_dnswire_message.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnswire_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
