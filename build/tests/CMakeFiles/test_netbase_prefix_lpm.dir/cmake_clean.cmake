file(REMOVE_RECURSE
  "CMakeFiles/test_netbase_prefix_lpm.dir/test_netbase_prefix_lpm.cc.o"
  "CMakeFiles/test_netbase_prefix_lpm.dir/test_netbase_prefix_lpm.cc.o.d"
  "test_netbase_prefix_lpm"
  "test_netbase_prefix_lpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netbase_prefix_lpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
