# Empty dependencies file for test_netbase_prefix_lpm.
# This may be replaced when dependencies are built.
