# Empty compiler generated dependencies file for test_core_classify.
# This may be replaced when dependencies are built.
