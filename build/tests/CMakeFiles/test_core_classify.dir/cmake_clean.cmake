file(REMOVE_RECURSE
  "CMakeFiles/test_core_classify.dir/test_core_classify.cc.o"
  "CMakeFiles/test_core_classify.dir/test_core_classify.cc.o.d"
  "test_core_classify"
  "test_core_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
