# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("netbase")
subdirs("jsonio")
subdirs("dnswire")
subdirs("simnet")
subdirs("resolvers")
subdirs("cpe")
subdirs("isp")
subdirs("core")
subdirs("atlas")
subdirs("sockets")
subdirs("report")
