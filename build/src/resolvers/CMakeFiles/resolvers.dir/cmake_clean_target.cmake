file(REMOVE_RECURSE
  "libresolvers.a"
)
