
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolvers/forwarder.cc" "src/resolvers/CMakeFiles/resolvers.dir/forwarder.cc.o" "gcc" "src/resolvers/CMakeFiles/resolvers.dir/forwarder.cc.o.d"
  "/root/repo/src/resolvers/public_resolver.cc" "src/resolvers/CMakeFiles/resolvers.dir/public_resolver.cc.o" "gcc" "src/resolvers/CMakeFiles/resolvers.dir/public_resolver.cc.o.d"
  "/root/repo/src/resolvers/resolver_behavior.cc" "src/resolvers/CMakeFiles/resolvers.dir/resolver_behavior.cc.o" "gcc" "src/resolvers/CMakeFiles/resolvers.dir/resolver_behavior.cc.o.d"
  "/root/repo/src/resolvers/server_app.cc" "src/resolvers/CMakeFiles/resolvers.dir/server_app.cc.o" "gcc" "src/resolvers/CMakeFiles/resolvers.dir/server_app.cc.o.d"
  "/root/repo/src/resolvers/software.cc" "src/resolvers/CMakeFiles/resolvers.dir/software.cc.o" "gcc" "src/resolvers/CMakeFiles/resolvers.dir/software.cc.o.d"
  "/root/repo/src/resolvers/special_names.cc" "src/resolvers/CMakeFiles/resolvers.dir/special_names.cc.o" "gcc" "src/resolvers/CMakeFiles/resolvers.dir/special_names.cc.o.d"
  "/root/repo/src/resolvers/zone.cc" "src/resolvers/CMakeFiles/resolvers.dir/zone.cc.o" "gcc" "src/resolvers/CMakeFiles/resolvers.dir/zone.cc.o.d"
  "/root/repo/src/resolvers/zone_parser.cc" "src/resolvers/CMakeFiles/resolvers.dir/zone_parser.cc.o" "gcc" "src/resolvers/CMakeFiles/resolvers.dir/zone_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnswire/CMakeFiles/dnswire.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
