file(REMOVE_RECURSE
  "CMakeFiles/resolvers.dir/forwarder.cc.o"
  "CMakeFiles/resolvers.dir/forwarder.cc.o.d"
  "CMakeFiles/resolvers.dir/public_resolver.cc.o"
  "CMakeFiles/resolvers.dir/public_resolver.cc.o.d"
  "CMakeFiles/resolvers.dir/resolver_behavior.cc.o"
  "CMakeFiles/resolvers.dir/resolver_behavior.cc.o.d"
  "CMakeFiles/resolvers.dir/server_app.cc.o"
  "CMakeFiles/resolvers.dir/server_app.cc.o.d"
  "CMakeFiles/resolvers.dir/software.cc.o"
  "CMakeFiles/resolvers.dir/software.cc.o.d"
  "CMakeFiles/resolvers.dir/special_names.cc.o"
  "CMakeFiles/resolvers.dir/special_names.cc.o.d"
  "CMakeFiles/resolvers.dir/zone.cc.o"
  "CMakeFiles/resolvers.dir/zone.cc.o.d"
  "CMakeFiles/resolvers.dir/zone_parser.cc.o"
  "CMakeFiles/resolvers.dir/zone_parser.cc.o.d"
  "libresolvers.a"
  "libresolvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
