# Empty dependencies file for resolvers.
# This may be replaced when dependencies are built.
