file(REMOVE_RECURSE
  "CMakeFiles/netbase.dir/bogon.cc.o"
  "CMakeFiles/netbase.dir/bogon.cc.o.d"
  "CMakeFiles/netbase.dir/endpoint.cc.o"
  "CMakeFiles/netbase.dir/endpoint.cc.o.d"
  "CMakeFiles/netbase.dir/ip_address.cc.o"
  "CMakeFiles/netbase.dir/ip_address.cc.o.d"
  "CMakeFiles/netbase.dir/ipv4.cc.o"
  "CMakeFiles/netbase.dir/ipv4.cc.o.d"
  "CMakeFiles/netbase.dir/ipv6.cc.o"
  "CMakeFiles/netbase.dir/ipv6.cc.o.d"
  "CMakeFiles/netbase.dir/prefix.cc.o"
  "CMakeFiles/netbase.dir/prefix.cc.o.d"
  "libnetbase.a"
  "libnetbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
