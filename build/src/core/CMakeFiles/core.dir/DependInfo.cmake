
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cc" "src/core/CMakeFiles/core.dir/classify.cc.o" "gcc" "src/core/CMakeFiles/core.dir/classify.cc.o.d"
  "/root/repo/src/core/cpe_localizer.cc" "src/core/CMakeFiles/core.dir/cpe_localizer.cc.o" "gcc" "src/core/CMakeFiles/core.dir/cpe_localizer.cc.o.d"
  "/root/repo/src/core/describe.cc" "src/core/CMakeFiles/core.dir/describe.cc.o" "gcc" "src/core/CMakeFiles/core.dir/describe.cc.o.d"
  "/root/repo/src/core/detector.cc" "src/core/CMakeFiles/core.dir/detector.cc.o" "gcc" "src/core/CMakeFiles/core.dir/detector.cc.o.d"
  "/root/repo/src/core/dns0x20.cc" "src/core/CMakeFiles/core.dir/dns0x20.cc.o" "gcc" "src/core/CMakeFiles/core.dir/dns0x20.cc.o.d"
  "/root/repo/src/core/dot_probe.cc" "src/core/CMakeFiles/core.dir/dot_probe.cc.o" "gcc" "src/core/CMakeFiles/core.dir/dot_probe.cc.o.d"
  "/root/repo/src/core/isp_localizer.cc" "src/core/CMakeFiles/core.dir/isp_localizer.cc.o" "gcc" "src/core/CMakeFiles/core.dir/isp_localizer.cc.o.d"
  "/root/repo/src/core/path_probe.cc" "src/core/CMakeFiles/core.dir/path_probe.cc.o" "gcc" "src/core/CMakeFiles/core.dir/path_probe.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/replication.cc" "src/core/CMakeFiles/core.dir/replication.cc.o" "gcc" "src/core/CMakeFiles/core.dir/replication.cc.o.d"
  "/root/repo/src/core/sim_transport.cc" "src/core/CMakeFiles/core.dir/sim_transport.cc.o" "gcc" "src/core/CMakeFiles/core.dir/sim_transport.cc.o.d"
  "/root/repo/src/core/transparency.cc" "src/core/CMakeFiles/core.dir/transparency.cc.o" "gcc" "src/core/CMakeFiles/core.dir/transparency.cc.o.d"
  "/root/repo/src/core/ttl_probe.cc" "src/core/CMakeFiles/core.dir/ttl_probe.cc.o" "gcc" "src/core/CMakeFiles/core.dir/ttl_probe.cc.o.d"
  "/root/repo/src/core/verdict.cc" "src/core/CMakeFiles/core.dir/verdict.cc.o" "gcc" "src/core/CMakeFiles/core.dir/verdict.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnswire/CMakeFiles/dnswire.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/resolvers/CMakeFiles/resolvers.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
