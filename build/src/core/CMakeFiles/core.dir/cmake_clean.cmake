file(REMOVE_RECURSE
  "CMakeFiles/core.dir/classify.cc.o"
  "CMakeFiles/core.dir/classify.cc.o.d"
  "CMakeFiles/core.dir/cpe_localizer.cc.o"
  "CMakeFiles/core.dir/cpe_localizer.cc.o.d"
  "CMakeFiles/core.dir/describe.cc.o"
  "CMakeFiles/core.dir/describe.cc.o.d"
  "CMakeFiles/core.dir/detector.cc.o"
  "CMakeFiles/core.dir/detector.cc.o.d"
  "CMakeFiles/core.dir/dns0x20.cc.o"
  "CMakeFiles/core.dir/dns0x20.cc.o.d"
  "CMakeFiles/core.dir/dot_probe.cc.o"
  "CMakeFiles/core.dir/dot_probe.cc.o.d"
  "CMakeFiles/core.dir/isp_localizer.cc.o"
  "CMakeFiles/core.dir/isp_localizer.cc.o.d"
  "CMakeFiles/core.dir/path_probe.cc.o"
  "CMakeFiles/core.dir/path_probe.cc.o.d"
  "CMakeFiles/core.dir/pipeline.cc.o"
  "CMakeFiles/core.dir/pipeline.cc.o.d"
  "CMakeFiles/core.dir/replication.cc.o"
  "CMakeFiles/core.dir/replication.cc.o.d"
  "CMakeFiles/core.dir/sim_transport.cc.o"
  "CMakeFiles/core.dir/sim_transport.cc.o.d"
  "CMakeFiles/core.dir/transparency.cc.o"
  "CMakeFiles/core.dir/transparency.cc.o.d"
  "CMakeFiles/core.dir/ttl_probe.cc.o"
  "CMakeFiles/core.dir/ttl_probe.cc.o.d"
  "CMakeFiles/core.dir/verdict.cc.o"
  "CMakeFiles/core.dir/verdict.cc.o.d"
  "libcore.a"
  "libcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
