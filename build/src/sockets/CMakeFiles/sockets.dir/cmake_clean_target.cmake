file(REMOVE_RECURSE
  "libsockets.a"
)
