file(REMOVE_RECURSE
  "CMakeFiles/sockets.dir/loopback_server.cc.o"
  "CMakeFiles/sockets.dir/loopback_server.cc.o.d"
  "CMakeFiles/sockets.dir/tcp_transport.cc.o"
  "CMakeFiles/sockets.dir/tcp_transport.cc.o.d"
  "CMakeFiles/sockets.dir/udp_transport.cc.o"
  "CMakeFiles/sockets.dir/udp_transport.cc.o.d"
  "libsockets.a"
  "libsockets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
