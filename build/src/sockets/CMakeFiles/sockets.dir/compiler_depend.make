# Empty compiler generated dependencies file for sockets.
# This may be replaced when dependencies are built.
