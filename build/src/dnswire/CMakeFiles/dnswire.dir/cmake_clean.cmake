file(REMOVE_RECURSE
  "CMakeFiles/dnswire.dir/debug_queries.cc.o"
  "CMakeFiles/dnswire.dir/debug_queries.cc.o.d"
  "CMakeFiles/dnswire.dir/decoder.cc.o"
  "CMakeFiles/dnswire.dir/decoder.cc.o.d"
  "CMakeFiles/dnswire.dir/encoder.cc.o"
  "CMakeFiles/dnswire.dir/encoder.cc.o.d"
  "CMakeFiles/dnswire.dir/message.cc.o"
  "CMakeFiles/dnswire.dir/message.cc.o.d"
  "CMakeFiles/dnswire.dir/name.cc.o"
  "CMakeFiles/dnswire.dir/name.cc.o.d"
  "CMakeFiles/dnswire.dir/record.cc.o"
  "CMakeFiles/dnswire.dir/record.cc.o.d"
  "CMakeFiles/dnswire.dir/types.cc.o"
  "CMakeFiles/dnswire.dir/types.cc.o.d"
  "libdnswire.a"
  "libdnswire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnswire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
