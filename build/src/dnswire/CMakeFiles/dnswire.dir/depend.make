# Empty dependencies file for dnswire.
# This may be replaced when dependencies are built.
