
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnswire/debug_queries.cc" "src/dnswire/CMakeFiles/dnswire.dir/debug_queries.cc.o" "gcc" "src/dnswire/CMakeFiles/dnswire.dir/debug_queries.cc.o.d"
  "/root/repo/src/dnswire/decoder.cc" "src/dnswire/CMakeFiles/dnswire.dir/decoder.cc.o" "gcc" "src/dnswire/CMakeFiles/dnswire.dir/decoder.cc.o.d"
  "/root/repo/src/dnswire/encoder.cc" "src/dnswire/CMakeFiles/dnswire.dir/encoder.cc.o" "gcc" "src/dnswire/CMakeFiles/dnswire.dir/encoder.cc.o.d"
  "/root/repo/src/dnswire/message.cc" "src/dnswire/CMakeFiles/dnswire.dir/message.cc.o" "gcc" "src/dnswire/CMakeFiles/dnswire.dir/message.cc.o.d"
  "/root/repo/src/dnswire/name.cc" "src/dnswire/CMakeFiles/dnswire.dir/name.cc.o" "gcc" "src/dnswire/CMakeFiles/dnswire.dir/name.cc.o.d"
  "/root/repo/src/dnswire/record.cc" "src/dnswire/CMakeFiles/dnswire.dir/record.cc.o" "gcc" "src/dnswire/CMakeFiles/dnswire.dir/record.cc.o.d"
  "/root/repo/src/dnswire/types.cc" "src/dnswire/CMakeFiles/dnswire.dir/types.cc.o" "gcc" "src/dnswire/CMakeFiles/dnswire.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
