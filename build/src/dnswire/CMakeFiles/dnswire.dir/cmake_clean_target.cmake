file(REMOVE_RECURSE
  "libdnswire.a"
)
