file(REMOVE_RECURSE
  "CMakeFiles/jsonio.dir/json.cc.o"
  "CMakeFiles/jsonio.dir/json.cc.o.d"
  "libjsonio.a"
  "libjsonio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsonio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
