file(REMOVE_RECURSE
  "libjsonio.a"
)
