# Empty dependencies file for jsonio.
# This may be replaced when dependencies are built.
