file(REMOVE_RECURSE
  "CMakeFiles/cpe.dir/cpe_device.cc.o"
  "CMakeFiles/cpe.dir/cpe_device.cc.o.d"
  "CMakeFiles/cpe.dir/presets.cc.o"
  "CMakeFiles/cpe.dir/presets.cc.o.d"
  "libcpe.a"
  "libcpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
