# Empty compiler generated dependencies file for cpe.
# This may be replaced when dependencies are built.
