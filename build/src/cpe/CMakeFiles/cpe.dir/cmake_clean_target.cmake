file(REMOVE_RECURSE
  "libcpe.a"
)
