
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/aggregate.cc" "src/report/CMakeFiles/report.dir/aggregate.cc.o" "gcc" "src/report/CMakeFiles/report.dir/aggregate.cc.o.d"
  "/root/repo/src/report/barchart.cc" "src/report/CMakeFiles/report.dir/barchart.cc.o" "gcc" "src/report/CMakeFiles/report.dir/barchart.cc.o.d"
  "/root/repo/src/report/html_report.cc" "src/report/CMakeFiles/report.dir/html_report.cc.o" "gcc" "src/report/CMakeFiles/report.dir/html_report.cc.o.d"
  "/root/repo/src/report/results_io.cc" "src/report/CMakeFiles/report.dir/results_io.cc.o" "gcc" "src/report/CMakeFiles/report.dir/results_io.cc.o.d"
  "/root/repo/src/report/stats.cc" "src/report/CMakeFiles/report.dir/stats.cc.o" "gcc" "src/report/CMakeFiles/report.dir/stats.cc.o.d"
  "/root/repo/src/report/summary.cc" "src/report/CMakeFiles/report.dir/summary.cc.o" "gcc" "src/report/CMakeFiles/report.dir/summary.cc.o.d"
  "/root/repo/src/report/table.cc" "src/report/CMakeFiles/report.dir/table.cc.o" "gcc" "src/report/CMakeFiles/report.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atlas/CMakeFiles/atlas.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/jsonio/CMakeFiles/jsonio.dir/DependInfo.cmake"
  "/root/repo/build/src/cpe/CMakeFiles/cpe.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/isp.dir/DependInfo.cmake"
  "/root/repo/build/src/resolvers/CMakeFiles/resolvers.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/dnswire/CMakeFiles/dnswire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
