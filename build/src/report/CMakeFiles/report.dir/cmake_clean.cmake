file(REMOVE_RECURSE
  "CMakeFiles/report.dir/aggregate.cc.o"
  "CMakeFiles/report.dir/aggregate.cc.o.d"
  "CMakeFiles/report.dir/barchart.cc.o"
  "CMakeFiles/report.dir/barchart.cc.o.d"
  "CMakeFiles/report.dir/html_report.cc.o"
  "CMakeFiles/report.dir/html_report.cc.o.d"
  "CMakeFiles/report.dir/results_io.cc.o"
  "CMakeFiles/report.dir/results_io.cc.o.d"
  "CMakeFiles/report.dir/stats.cc.o"
  "CMakeFiles/report.dir/stats.cc.o.d"
  "CMakeFiles/report.dir/summary.cc.o"
  "CMakeFiles/report.dir/summary.cc.o.d"
  "CMakeFiles/report.dir/table.cc.o"
  "CMakeFiles/report.dir/table.cc.o.d"
  "libreport.a"
  "libreport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
