
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/device.cc" "src/simnet/CMakeFiles/simnet.dir/device.cc.o" "gcc" "src/simnet/CMakeFiles/simnet.dir/device.cc.o.d"
  "/root/repo/src/simnet/nat.cc" "src/simnet/CMakeFiles/simnet.dir/nat.cc.o" "gcc" "src/simnet/CMakeFiles/simnet.dir/nat.cc.o.d"
  "/root/repo/src/simnet/packet.cc" "src/simnet/CMakeFiles/simnet.dir/packet.cc.o" "gcc" "src/simnet/CMakeFiles/simnet.dir/packet.cc.o.d"
  "/root/repo/src/simnet/pcap.cc" "src/simnet/CMakeFiles/simnet.dir/pcap.cc.o" "gcc" "src/simnet/CMakeFiles/simnet.dir/pcap.cc.o.d"
  "/root/repo/src/simnet/rng.cc" "src/simnet/CMakeFiles/simnet.dir/rng.cc.o" "gcc" "src/simnet/CMakeFiles/simnet.dir/rng.cc.o.d"
  "/root/repo/src/simnet/simulator.cc" "src/simnet/CMakeFiles/simnet.dir/simulator.cc.o" "gcc" "src/simnet/CMakeFiles/simnet.dir/simulator.cc.o.d"
  "/root/repo/src/simnet/trace.cc" "src/simnet/CMakeFiles/simnet.dir/trace.cc.o" "gcc" "src/simnet/CMakeFiles/simnet.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/dnswire/CMakeFiles/dnswire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
