file(REMOVE_RECURSE
  "CMakeFiles/simnet.dir/device.cc.o"
  "CMakeFiles/simnet.dir/device.cc.o.d"
  "CMakeFiles/simnet.dir/nat.cc.o"
  "CMakeFiles/simnet.dir/nat.cc.o.d"
  "CMakeFiles/simnet.dir/packet.cc.o"
  "CMakeFiles/simnet.dir/packet.cc.o.d"
  "CMakeFiles/simnet.dir/pcap.cc.o"
  "CMakeFiles/simnet.dir/pcap.cc.o.d"
  "CMakeFiles/simnet.dir/rng.cc.o"
  "CMakeFiles/simnet.dir/rng.cc.o.d"
  "CMakeFiles/simnet.dir/simulator.cc.o"
  "CMakeFiles/simnet.dir/simulator.cc.o.d"
  "CMakeFiles/simnet.dir/trace.cc.o"
  "CMakeFiles/simnet.dir/trace.cc.o.d"
  "libsimnet.a"
  "libsimnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
