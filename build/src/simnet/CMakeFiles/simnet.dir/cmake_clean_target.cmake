file(REMOVE_RECURSE
  "libsimnet.a"
)
