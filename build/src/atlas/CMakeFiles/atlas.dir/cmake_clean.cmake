file(REMOVE_RECURSE
  "CMakeFiles/atlas.dir/fleet.cc.o"
  "CMakeFiles/atlas.dir/fleet.cc.o.d"
  "CMakeFiles/atlas.dir/fleet_json.cc.o"
  "CMakeFiles/atlas.dir/fleet_json.cc.o.d"
  "CMakeFiles/atlas.dir/longitudinal.cc.o"
  "CMakeFiles/atlas.dir/longitudinal.cc.o.d"
  "CMakeFiles/atlas.dir/measurement.cc.o"
  "CMakeFiles/atlas.dir/measurement.cc.o.d"
  "CMakeFiles/atlas.dir/scenario.cc.o"
  "CMakeFiles/atlas.dir/scenario.cc.o.d"
  "libatlas.a"
  "libatlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
