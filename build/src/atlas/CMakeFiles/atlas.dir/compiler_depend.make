# Empty compiler generated dependencies file for atlas.
# This may be replaced when dependencies are built.
