
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atlas/fleet.cc" "src/atlas/CMakeFiles/atlas.dir/fleet.cc.o" "gcc" "src/atlas/CMakeFiles/atlas.dir/fleet.cc.o.d"
  "/root/repo/src/atlas/fleet_json.cc" "src/atlas/CMakeFiles/atlas.dir/fleet_json.cc.o" "gcc" "src/atlas/CMakeFiles/atlas.dir/fleet_json.cc.o.d"
  "/root/repo/src/atlas/longitudinal.cc" "src/atlas/CMakeFiles/atlas.dir/longitudinal.cc.o" "gcc" "src/atlas/CMakeFiles/atlas.dir/longitudinal.cc.o.d"
  "/root/repo/src/atlas/measurement.cc" "src/atlas/CMakeFiles/atlas.dir/measurement.cc.o" "gcc" "src/atlas/CMakeFiles/atlas.dir/measurement.cc.o.d"
  "/root/repo/src/atlas/scenario.cc" "src/atlas/CMakeFiles/atlas.dir/scenario.cc.o" "gcc" "src/atlas/CMakeFiles/atlas.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpe/CMakeFiles/cpe.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/isp.dir/DependInfo.cmake"
  "/root/repo/build/src/resolvers/CMakeFiles/resolvers.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/jsonio/CMakeFiles/jsonio.dir/DependInfo.cmake"
  "/root/repo/build/src/dnswire/CMakeFiles/dnswire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
