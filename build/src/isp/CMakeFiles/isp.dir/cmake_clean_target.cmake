file(REMOVE_RECURSE
  "libisp.a"
)
