# Empty dependencies file for isp.
# This may be replaced when dependencies are built.
