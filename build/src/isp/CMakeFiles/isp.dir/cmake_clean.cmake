file(REMOVE_RECURSE
  "CMakeFiles/isp.dir/backbone.cc.o"
  "CMakeFiles/isp.dir/backbone.cc.o.d"
  "CMakeFiles/isp.dir/isp_network.cc.o"
  "CMakeFiles/isp.dir/isp_network.cc.o.d"
  "libisp.a"
  "libisp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
