// §5 case study: how the Arris/Technicolor XB6's XDNS component uses DNAT
// to transparently intercept DNS — reconstructed packet by packet.
//
// We attach a trace sink to the simulator, send one query from the home
// host to Cloudflare (1.1.1.1), and print the full datapath: the DNAT
// rewrite at the CPE (the "role switch"), the XDNS/dnsmasq forwarder
// answering locally after consulting the ISP resolver, and conntrack
// restoring 1.1.1.1 as the response source — the spoofing that makes the
// interception invisible to the client.
#include <cstdio>

#include "atlas/scenario.h"
#include "core/pipeline.h"
#include "dnswire/debug_queries.h"
#include "simnet/pcap.h"

using namespace dnslocate;

int main() {
  atlas::ScenarioConfig home;
  home.cpe.kind = atlas::CpeStyle::Kind::xb6_buggy;
  home.isp_name = "comcast";
  home.asn = 7922;
  atlas::Scenario scenario(home);

  simnet::TraceSink trace;
  scenario.sim().set_trace(&trace);

  std::printf("=== XB6/XDNS case study: one query to Cloudflare DNS ===\n\n");
  auto query = dnswire::make_query(0xbeef, *dnswire::DnsName::parse("example.com"),
                                   dnswire::RecordType::A);
  netbase::Endpoint cloudflare{*netbase::IpAddress::parse("1.1.1.1"), netbase::kDnsPort};
  auto result = scenario.transport().query(cloudflare, query);

  std::fputs(trace.render().c_str(), stdout);

  // The same trace as a standard capture, for Wireshark/tcpdump inspection.
  const char* pcap_path = "xb6_case_study.pcap";
  if (simnet::write_pcap_file(trace, pcap_path)) {
    std::printf("\n(wrote %zu frames to %s — open with wireshark/tcpdump)\n",
                simnet::pcap_packet_count(trace), pcap_path);
  }

  std::printf("\nthe client saw: %s\n",
              result.answered() ? result.response->to_string().c_str() : "timeout");
  std::printf("DNAT rewrites observed : %llu\n",
              static_cast<unsigned long long>(scenario.cpe_handles().nat->dnat_hits()));
  std::printf("spoofed (un-NAT) writes: %llu\n",
              static_cast<unsigned long long>(scenario.cpe_handles().nat->unnat_hits()));
  std::printf("queries the query's intended target (1.1.1.1) ever received: %s\n",
              trace.count(simnet::TraceEvent::dnat_rewritten) > 0 ? "none — diverted at the CPE"
                                                                  : "all of them");

  // Now run the full technique and show it pinpoints the CPE.
  scenario.sim().set_trace(nullptr);
  core::LocalizationPipeline pipeline(scenario.pipeline_config());
  auto verdict = pipeline.run(scenario.transport());
  std::printf("\nlocalization technique verdict: %s\n",
              std::string(to_string(verdict.location)).c_str());
  if (verdict.cpe_check && verdict.cpe_check->cpe.has_string())
    std::printf("XDNS forwarder version.bind string: \"%s\"\n",
                verdict.cpe_check->cpe.txt->c_str());
  return verdict.location == core::InterceptorLocation::cpe ? 0 : 1;
}
