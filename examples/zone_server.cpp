// zone_server: serve a master-file zone over UDP on 127.0.0.1 — a pocket
// authoritative server built from the library's pieces. Useful as a test
// target for dnsq/live_probe and as a demonstration of the zone parser.
//
//   zone_server <zonefile> [--oneshot]
//
// --oneshot answers a single self-test query and exits (used in CI); the
// default serves until interrupted.
#include <csignal>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "dnswire/encoder.h"
#include "resolvers/resolver_behavior.h"
#include "resolvers/zone_parser.h"
#include "sockets/loopback_server.h"
#include "sockets/udp_transport.h"

using namespace dnslocate;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <zonefile> [--oneshot]\n", argv[0]);
    return 2;
  }
  bool oneshot = argc > 2 && std::string(argv[2]) == "--oneshot";

  std::ifstream input(argv[1]);
  if (!input) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream buffer;
  buffer << input.rdbuf();

  auto zones = std::make_shared<resolvers::ZoneStore>();
  auto parsed = resolvers::parse_master_file(buffer.str(), *zones);
  for (const auto& error : parsed.errors)
    std::fprintf(stderr, "warning: %s\n", error.to_string().c_str());
  std::printf("loaded %zu records from %s\n", parsed.records_added, argv[1]);

  resolvers::ResolverConfig config;
  config.software = resolvers::custom_string("dnslocate zone_server");
  config.zones = zones;
  sockets::LoopbackDnsServer server(
      std::make_shared<resolvers::ResolverBehavior>(config));
  std::printf("serving on %s\n", server.endpoint().to_string().c_str());

  if (oneshot) {
    // Self-test: resolve the first thing we can find via the socket path.
    sockets::UdpTransport transport;
    auto query = dnswire::make_query(1, *dnswire::DnsName::parse("version.bind"),
                                     dnswire::RecordType::TXT, dnswire::RecordClass::CH);
    core::QueryOptions options;
    options.timeout = std::chrono::milliseconds(1000);
    auto result = transport.query(server.endpoint(), query, options);
    if (!result.answered()) {
      std::fprintf(stderr, "self-test failed\n");
      return 1;
    }
    std::printf("self-test: version.bind -> \"%s\"\n",
                result.response->first_txt().value_or("?").c_str());
    return 0;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::printf("query it, e.g.: dnsq @127.0.0.1 <name> A   (Ctrl-C to stop)\n");
  while (g_stop == 0) {
    struct timespec delay{0, 100'000'000};
    nanosleep(&delay, nullptr);
  }
  std::printf("served %llu queries\n",
              static_cast<unsigned long long>(server.queries_served()));
  return 0;
}
