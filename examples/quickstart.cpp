// Quickstart: detect and localize DNS interception from a simulated home.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The same pipeline runs over real sockets — see examples/live_probe.cpp.
#include <cstdio>

#include "atlas/scenario.h"
#include "core/pipeline.h"

using namespace dnslocate;

int main() {
  // A home with the paper's §5 problem: an XB6 router whose XDNS component
  // DNATs every LAN DNS query to its own forwarder.
  atlas::ScenarioConfig home;
  home.cpe.kind = atlas::CpeStyle::Kind::xb6_buggy;
  home.isp_name = "example-isp";
  atlas::Scenario scenario(home);

  // The pipeline needs only (a) a way to send DNS queries and (b) the CPE's
  // public IP for the §3.2 check.
  core::LocalizationPipeline pipeline(scenario.pipeline_config());
  core::ProbeVerdict verdict = pipeline.run(scenario.transport());

  std::printf("interception verdict: %s\n\n", std::string(to_string(verdict.location)).c_str());

  std::printf("step 1 — location queries (non-standard answer => intercepted):\n");
  for (const auto& probe : verdict.detection.probes) {
    if (probe.family != netbase::IpFamily::v4) continue;
    std::printf("  %-15s %-24s -> %-28s [%s]\n",
                std::string(to_string(probe.kind)).c_str(),
                probe.server.to_string().c_str(), probe.display.c_str(),
                std::string(to_string(probe.verdict)).c_str());
  }

  if (verdict.cpe_check) {
    std::printf("\nstep 2 — version.bind comparison (identical strings => CPE):\n");
    std::printf("  CPE public IP -> \"%s\"\n", verdict.cpe_check->cpe.display.c_str());
    for (const auto& [kind, obs] : verdict.cpe_check->resolver_answers)
      std::printf("  %-15s -> \"%s\"\n", std::string(to_string(kind)).c_str(),
                  obs.display.c_str());
    std::printf("  => CPE is the interceptor: %s\n",
                verdict.cpe_check->cpe_is_interceptor ? "yes" : "no");
  }

  if (verdict.bogon) {
    std::printf("\nstep 3 — bogon queries (answer => interception inside the AS):\n");
    std::printf("  %s -> %s\n", verdict.bogon->v4.target.to_string().c_str(),
                verdict.bogon->v4.a_display.c_str());
  }

  if (verdict.transparency) {
    std::printf("\ntransparency (whoami): %s\n",
                std::string(to_string(verdict.transparency->overall)).c_str());
  }
  return 0;
}
