// dnsq: a minimal dig-style query tool over the library's socket transport.
//
//   dnsq [@server] name [type] [+chaos] [+ttl=N] [+timeout=MS] [+retry=N] [+short]
//
// Examples:
//   dnsq @1.1.1.1 id.server TXT +chaos        # the paper's location query
//   dnsq @9.9.9.9 version.bind TXT +chaos     # the §3.2 identity probe
//   dnsq @8.8.8.8 o-o.myaddr.l.google.com TXT
//   dnsq @8.8.8.8 example.com A +ttl=3        # TTL-limited (path probing)
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dnswire/encoder.h"
#include "sockets/udp_transport.h"

using namespace dnslocate;

namespace {

dnswire::RecordType parse_type(const std::string& text) {
  if (text == "A") return dnswire::RecordType::A;
  if (text == "AAAA") return dnswire::RecordType::AAAA;
  if (text == "TXT") return dnswire::RecordType::TXT;
  if (text == "CNAME") return dnswire::RecordType::CNAME;
  if (text == "NS") return dnswire::RecordType::NS;
  if (text == "PTR") return dnswire::RecordType::PTR;
  if (text == "SOA") return dnswire::RecordType::SOA;
  if (text == "ANY") return dnswire::RecordType::ANY;
  return dnswire::RecordType::A;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [@server] name [type] [+chaos] [+ttl=N] [+timeout=MS] [+retry=N]"
               " [+short]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  netbase::Endpoint server{*netbase::IpAddress::parse("1.1.1.1"), netbase::kDnsPort};
  std::string qname;
  dnswire::RecordType qtype = dnswire::RecordType::A;
  dnswire::RecordClass qclass = dnswire::RecordClass::IN;
  core::QueryOptions options;
  options.timeout = std::chrono::milliseconds(3000);
  bool short_output = false;
  bool have_type = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() > 1 && arg[0] == '@') {
      std::string target = arg.substr(1);
      if (auto endpoint = netbase::Endpoint::parse(target)) {
        server = *endpoint;  // "@127.0.0.1:5300" form
      } else if (auto addr = netbase::IpAddress::parse(target)) {
        server.address = *addr;
      } else {
        std::fprintf(stderr, "bad server address: %s\n", target.c_str());
        return 2;
      }
    } else if (arg == "+chaos") {
      qclass = dnswire::RecordClass::CH;
    } else if (arg == "+short") {
      short_output = true;
    } else if (arg.rfind("+ttl=", 0) == 0) {
      options.ttl = static_cast<std::uint8_t>(std::atoi(arg.c_str() + 5));
    } else if (arg.rfind("+timeout=", 0) == 0) {
      options.timeout = std::chrono::milliseconds(std::atoi(arg.c_str() + 9));
    } else if (arg.rfind("+retry=", 0) == 0) {
      int attempts = std::atoi(arg.c_str() + 7);
      if (attempts < 1) {
        std::fprintf(stderr, "bad +retry value: %s (want attempts >= 1)\n", arg.c_str() + 7);
        return 2;
      }
      options.retry = core::RetryPolicy::standard(static_cast<unsigned>(attempts));
    } else if (arg[0] == '+') {
      return usage(argv[0]);
    } else if (qname.empty()) {
      qname = arg;
    } else if (!have_type) {
      qtype = parse_type(arg);
      have_type = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (qname.empty()) return usage(argv[0]);

  auto name = dnswire::DnsName::parse(qname);
  if (!name) {
    std::fprintf(stderr, "bad name: %s\n", qname.c_str());
    return 2;
  }

  dnswire::Message query = dnswire::make_query(
      static_cast<std::uint16_t>(::getpid() & 0xffff), *name, qtype, qclass);
  sockets::UdpTransport transport;
  core::QueryResult result = transport.query(server, query, options);

  if (!result.answered()) {
    std::printf(";; no response from %s within %lld ms (%u attempt%s)\n",
                server.to_string().c_str(),
                static_cast<long long>(options.timeout.count()), result.retry.attempts,
                result.retry.attempts == 1 ? "" : "s");
    return 1;
  }
  if (short_output) {
    for (const auto& rr : result.response->answers) {
      if (auto* a = std::get_if<dnswire::ARecord>(&rr.rdata))
        std::printf("%s\n", a->address.to_string().c_str());
      else if (auto* aaaa = std::get_if<dnswire::AaaaRecord>(&rr.rdata))
        std::printf("%s\n", aaaa->address.to_string().c_str());
      else if (auto* txt = std::get_if<dnswire::TxtRecord>(&rr.rdata))
        std::printf("%s\n", txt->joined().c_str());
      else
        std::printf("%s\n", rr.to_string().c_str());
    }
    return 0;
  }
  std::printf(";; server %s, rtt %lld us%s", server.to_string().c_str(),
              static_cast<long long>(result.rtt.count()),
              result.replicated() ? ", REPLICATED (multiple responses!)" : "");
  if (result.retry.retries() > 0)
    std::printf(", answered on attempt %u", result.retry.attempts);
  std::printf("\n");
  std::fputs(result.response->to_string().c_str(), stdout);
  return 0;
}
