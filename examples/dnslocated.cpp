// dnslocated: the resident measurement service. A long-lived daemon hosting
// the JSON control plane over the fleet runtime — submit fleet plans over
// HTTP, watch verdicts stream as probes complete, scrape live metrics, and
// survive restarts: every accepted run has a durable manifest + checkpoint
// journal, so `kill -9` mid-campaign costs at most the last journal batch
// and the next start resumes exactly where the journal ends (status shows
// `recovered: true`).
//
// Usage: dnslocated --state-dir DIR [--port N] [flags]
//   --state-dir DIR        durable run state (manifests, journals, markers);
//                          scanned for unfinished runs at startup (required)
//   --port N               listen port on 127.0.0.1 (default 0 = ephemeral)
//   --port-file PATH       write the bound port (test/script discovery)
//   --workers N            concurrent fleet runs (default 2)
//   --tenant-cap N         active runs per tenant before 429 (default 2)
//   --max-probes N         largest admissible fleet (default 20000)
//   --run-threads N        worker threads within each run (default 1)
//   --probe-deadline-ms N  per-probe wall-clock budget (default none)
//
// Quickstart (see README.md for the full curl walkthrough):
//   dnslocated --state-dir /tmp/dns-state --port 8053 &
//   curl -d '{"seed":7,"orgs":[{"org":"X","asn":64500,"probes":100}]}'
//        http://127.0.0.1:8053/v1/fleets       (one command; line split here)
//   curl http://127.0.0.1:8053/v1/fleets/run-000001/verdicts
//
// SIGINT/SIGTERM drain gracefully (the shared handler in cli_common.h):
// in-flight probes finish, journals are fsync'd, interrupted runs stay
// unmarked so the next start resumes them, and the process exits 0.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "cli_common.h"
#include "obs/metrics.h"
#include "service/api.h"
#include "service/http_server.h"
#include "service/service.h"

using namespace dnslocate;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: dnslocated --state-dir DIR [--port N] [--port-file PATH]\n"
               "                  [--workers N] [--tenant-cap N] [--max-probes N]\n"
               "                  [--run-threads N] [--probe-deadline-ms N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  service::ServiceConfig config;
  service::HttpServer::Config http;
  const char* port_file = nullptr;

  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (const char* v = value("--state-dir")) {
      config.state_dir = v;
    } else if (const char* v2 = value("--port")) {
      http.port = static_cast<std::uint16_t>(std::atoi(v2));
    } else if (const char* v3 = value("--port-file")) {
      port_file = v3;
    } else if (const char* v4 = value("--workers")) {
      config.workers = static_cast<unsigned>(std::atol(v4));
    } else if (const char* v5 = value("--tenant-cap")) {
      config.tenant_cap = static_cast<std::size_t>(std::atol(v5));
    } else if (const char* v6 = value("--max-probes")) {
      config.max_probes = static_cast<std::size_t>(std::atol(v6));
    } else if (const char* v7 = value("--run-threads")) {
      config.run_threads = static_cast<unsigned>(std::atol(v7));
    } else if (const char* v8 = value("--probe-deadline-ms")) {
      config.probe_deadline = std::chrono::milliseconds(std::atol(v8));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      usage();
      return 2;
    }
  }
  if (config.state_dir.empty()) {
    usage();
    return 2;
  }

  // Live metrics for /metrics: enabled before any worker thread exists.
  obs::Config obs_config;
  obs_config.metrics = true;
  obs::enable(obs_config);

  // Graceful drain on SIGINT/SIGTERM — the same handler the CLI examples
  // install, firing the same kind of run-level CancelToken.
  core::CancelToken shutdown = examples::install_signal_drain();

  try {
    service::MeasurementService service(config);
    service::HttpServer server(http, [&service](const service::HttpRequest& request) {
      return service::route_request(service, request);
    });

    if (port_file != nullptr) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
    }
    std::printf("dnslocated listening on 127.0.0.1:%u (state: %s, recovered %zu runs)\n",
                static_cast<unsigned>(server.port()), config.state_dir.c_str(),
                service.recovered_runs());
    std::fflush(stdout);

    while (!shutdown.cancelled())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::printf("dnslocated: draining (in-flight probes finish, journals sync)\n");
    std::fflush(stdout);
    service.drain();   // finish + journal in-flight work; keep manifests unmarked
    server.stop();     // then stop answering
    std::printf("dnslocated: clean drain complete\n");
    std::fflush(stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dnslocated: %s\n", e.what());
    return 1;
  }
}
