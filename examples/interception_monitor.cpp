// interception_monitor: periodically re-run interception detection on the
// live network and report when the verdict changes — the deployable
// counterpart of the repository's longitudinal "firmware flip" experiment
// (a CPE update can silently start hijacking; this notices).
//
//   interception_monitor [--interval-s N] [--rounds N] [--cpe <public-ip>]
//
// With --rounds 1 it performs a single check and exits with a status code
// usable from cron/scripts: 0 = not intercepted, 3 = intercepted.
#include <ctime>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/describe.h"
#include "core/pipeline.h"
#include "sockets/udp_transport.h"

using namespace dnslocate;

int main(int argc, char** argv) {
  int interval_s = 300;
  int rounds = 1;
  core::PipelineConfig config;
  config.detection.query.timeout = std::chrono::milliseconds(2000);
  config.run_transparency = false;  // keep each round light

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interval-s") == 0 && i + 1 < argc) {
      interval_s = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cpe") == 0 && i + 1 < argc) {
      if (auto addr = netbase::IpAddress::parse(argv[++i])) config.cpe_public_ip = *addr;
    } else {
      std::fprintf(stderr, "usage: %s [--interval-s N] [--rounds N] [--cpe ip]\n", argv[0]);
      return 2;
    }
  }

  sockets::UdpTransport transport;
  core::LocalizationPipeline pipeline(config);
  std::string previous;
  bool last_intercepted = false;

  for (int round = 0; round < rounds || rounds <= 0; ++round) {
    auto verdict = pipeline.run(transport);
    std::string summary = core::summarize(verdict);
    last_intercepted = verdict.intercepted();

    if (summary != previous) {
      std::printf("[round %d] verdict changed: %s -> %s\n", round,
                  previous.empty() ? "(first run)" : previous.c_str(), summary.c_str());
      std::fputs(core::describe(verdict).c_str(), stdout);
      previous = summary;
    } else {
      std::printf("[round %d] unchanged: %s\n", round, summary.c_str());
    }
    std::fflush(stdout);

    if (round + 1 < rounds || rounds <= 0) {
      struct timespec delay{interval_s, 0};
      nanosleep(&delay, nullptr);
    }
  }
  return last_intercepted ? 3 : 0;
}
