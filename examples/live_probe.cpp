// live_probe: run the paper's technique on the *real* network this host is
// on, over plain UDP sockets — the deployable version of the tool.
//
//   live_probe [--cpe <public-ip>] [--timeout-ms N] [--no-v6]
//
// Without --cpe, step 2 (the CPE check) is skipped and CPE interception
// cannot be distinguished from ISP interception; the public IP of your home
// router is usually what a "what is my IP" service reports.
//
// In an offline or firewalled environment every query times out, which the
// technique conservatively reports as "not intercepted" (§3.1).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/describe.h"
#include "core/pipeline.h"
#include "sockets/udp_transport.h"

using namespace dnslocate;

int main(int argc, char** argv) {
  core::PipelineConfig config;
  int timeout_ms = 2000;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cpe") == 0 && i + 1 < argc) {
      auto addr = netbase::IpAddress::parse(argv[++i]);
      if (!addr) {
        std::fprintf(stderr, "bad --cpe address\n");
        return 2;
      }
      config.cpe_public_ip = *addr;
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-v6") == 0) {
      config.detection.test_v6 = false;
    } else {
      std::fprintf(stderr, "usage: %s [--cpe <public-ip>] [--timeout-ms N] [--no-v6]\n",
                   argv[0]);
      return 2;
    }
  }
  config.detection.query.timeout = std::chrono::milliseconds(timeout_ms);
  config.cpe_check.query.timeout = std::chrono::milliseconds(timeout_ms);
  config.bogon.query.timeout = std::chrono::milliseconds(timeout_ms);
  config.transparency.query.timeout = std::chrono::milliseconds(timeout_ms);

  sockets::UdpTransport transport;
  core::LocalizationPipeline pipeline(config);
  std::printf("probing the four public resolvers with location queries...\n");
  core::ProbeVerdict verdict = pipeline.run(transport);
  std::fputs(core::describe(verdict).c_str(), stdout);
  return 0;
}

namespace {
// The manual rendering below is kept as reference for building custom
// reports from the verdict structs; core::describe() above covers the
// common case.
[[maybe_unused]] void manual_render(const core::ProbeVerdict& verdict) {

  for (const auto& probe : verdict.detection.probes) {
    std::printf("  %-15s %-28s -> %-30s [%s]\n",
                std::string(to_string(probe.kind)).c_str(),
                probe.server.to_string().c_str(), probe.display.c_str(),
                std::string(to_string(probe.verdict)).c_str());
  }

  if (verdict.cpe_check) {
    std::printf("\nversion.bind comparison:\n  CPE -> \"%s\"\n",
                verdict.cpe_check->cpe.display.c_str());
    for (const auto& [kind, obs] : verdict.cpe_check->resolver_answers)
      std::printf("  %-15s -> \"%s\"\n", std::string(to_string(kind)).c_str(),
                  obs.display.c_str());
  } else if (verdict.intercepted()) {
    std::printf("\n(no --cpe address given: skipping the CPE check)\n");
  }

  if (verdict.bogon) {
    std::printf("\nbogon probes: v4 %s, v6 %s\n", verdict.bogon->v4.a_display.c_str(),
                verdict.bogon->v6.tested ? verdict.bogon->v6.a_display.c_str() : "(untested)");
  }

  std::printf("\nverdict: %s\n", std::string(to_string(verdict.location)).c_str());
  if (verdict.transparency)
    std::printf("transparency: %s\n",
                std::string(to_string(verdict.transparency->overall)).c_str());
}
}  // namespace
