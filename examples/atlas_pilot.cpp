// The full §4 pilot study in one run: generate the simulated probe fleet,
// measure every probe, and print all of the paper's artefacts (Table 4,
// Table 5, Figure 3, Figure 4) plus the accuracy-vs-ground-truth matrix the
// real study could not compute.
//
// Usage: atlas_pilot [scale] [--export results.jsonl] [--html report.html]
//                    [--plan plan.json] [--threads N] [common flags]
//   scale in (0,1]; default 1.0 = ~9,650 probes.
//   --export writes the per-probe dataset as JSONL (reload it with
//   report::run_from_jsonl for offline aggregation).
//   --html renders the whole study as one self-contained HTML page.
//   --plan measures a custom fleet described in JSON (atlas/fleet_json.h).
//   Common flags (journaling, supervision, observability) are shared with
//   custom_fleet; see examples/cli_common.h for the list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "atlas/fleet_json.h"
#include "cli_common.h"
#include "report/aggregate.h"
#include "report/html_report.h"
#include "report/results_io.h"
#include "report/summary.h"

using namespace dnslocate;

int main(int argc, char** argv) {
  double scale = 1.0;
  const char* export_path = nullptr;
  const char* html_path = nullptr;
  const char* plan_path = nullptr;
  unsigned threads = 1;
  examples::CommonCli common;
  for (int i = 1; i < argc; ++i) {
    if (common.parse(argc, argv, i)) {
      continue;
    } else if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
      export_path = argv[++i];
    } else if (std::strcmp(argv[i], "--html") == 0 && i + 1 < argc) {
      html_path = argv[++i];
    } else if (std::strcmp(argv[i], "--plan") == 0 && i + 1 < argc) {
      plan_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      scale = std::atof(argv[i]);
    }
  }
  if (scale <= 0 || scale > 1) scale = 1.0;
  if (!common.validate()) return 1;
  const char* journal_path = common.journal;
  common.enable_observability();

  std::vector<atlas::ProbeSpec> fleet;
  if (plan_path != nullptr) {
    std::ifstream input(plan_path);
    if (!input) {
      std::fprintf(stderr, "cannot open %s\n", plan_path);
      return 1;
    }
    std::stringstream buffer;
    buffer << input.rdbuf();
    auto parsed = atlas::fleet_from_json(buffer.str());
    for (const auto& error : parsed.errors)
      std::fprintf(stderr, "plan error: %s\n", error.c_str());
    if (!parsed.ok()) return 1;
    fleet = parsed.generate();
    std::printf("custom study over %zu simulated probes (plan %s)\n", fleet.size(),
                plan_path);
  } else {
    atlas::FleetConfig config;
    config.scale = scale;
    fleet = atlas::generate_fleet(config);
    std::printf("pilot study over %zu simulated probes (scale %.2f)\n", fleet.size(), scale);
  }

  atlas::MeasurementOptions options;
  options.threads = threads;
  if (journal_path != nullptr) options.journal_path = journal_path;
  common.apply(options);
  // Ctrl-C / SIGTERM drains instead of killing: in-flight probes finish,
  // the journal is fsync'd, and the run stays resumable.
  options.cancel = examples::install_signal_drain();
  std::size_t last_percent = 0;
  options.progress = [&](std::size_t done, std::size_t total) {
    std::size_t percent = done * 100 / total;
    if (percent != last_percent && percent % 20 == 0) {
      std::printf("  ... %zu%%\n", percent);
      last_percent = percent;
    }
  };

  atlas::MeasurementRun run;
  if (common.resume) {
    atlas::ResumeReport report;
    run = atlas::resume_fleet(journal_path, fleet, options, &report);
    for (const auto& warning : report.warnings)
      std::fprintf(stderr, "resume: %s\n", warning.c_str());
    std::printf("resumed from %s: %zu reused, %zu re-run after failure, %zu damaged\n",
                journal_path, report.reused, report.rerun_failed, report.damaged);
  } else {
    run = atlas::run_fleet(fleet, options);
  }
  if (examples::report_signal_drain(run, journal_path)) {
    common.export_observability();
    return 130;
  }
  if (run.stopped_early())
    std::printf("stopped early after %zu failures; %zu probes not run "
                "(journal intact — rerun with --resume)\n",
                run.count_outcome(atlas::ProbeOutcome::failed) +
                    run.count_outcome(atlas::ProbeOutcome::deadline_exceeded),
                run.not_run);

  std::printf("\n--- Table 4 ---\n%s", report::render_table4(run).render().c_str());
  std::printf("\n--- Table 5 ---\n%s", report::render_table5(run).render().c_str());
  std::printf("\n--- Figure 3 (top orgs, transparency) ---\n%s",
              report::render_figure3(run).render().c_str());
  std::printf("\n--- Figure 4a (top countries, location) ---\n%s",
              report::render_figure4(report::figure4_by_country(run)).render().c_str());
  std::printf("\n--- Figure 4b (top orgs, location) ---\n%s",
              report::render_figure4(report::figure4_by_org(run)).render().c_str());

  if (html_path != nullptr) {
    std::ofstream out(html_path);
    out << report::html_report(run);
    std::printf("\nwrote HTML report to %s\n", html_path);
  }
  if (export_path != nullptr) {
    std::ofstream out(export_path);
    out << report::run_to_jsonl(run);
    std::printf("\nwrote %zu probe records to %s\n", run.records.size(), export_path);
  }

  auto matrix = report::accuracy_matrix(run);
  std::printf("\n--- technique vs ground truth ---\n%s",
              report::render_confusion(matrix).render().c_str());
  std::printf("accuracy: %.4f\n", matrix.accuracy());

  auto census = report::run_census(run);
  std::printf("\n--- run health ---\n%s", report::render_run_census(census).render().c_str());
  if (!census.slowest.empty()) {
    std::printf("slowest probes:\n");
    for (const auto& note : census.slowest)
      std::printf("  probe %u (%s): %.1f ms\n", note.probe_id, note.org.c_str(),
                  static_cast<double>(note.elapsed.count()) / 1000.0);
  }
  for (const auto& note : census.failures)
    std::printf("failure: probe %u (%s) %s: %s\n", note.probe_id, note.org.c_str(),
                std::string(to_string(note.outcome)).c_str(), note.error.c_str());

  std::printf("\n--- summary ---\n%s\n", report::run_summary(run).c_str());
  common.export_observability();
  return 0;
}
