// Designing a custom measurement study: define a probe population as a
// JSON plan, measure it, and compare two ISP deployments — no recompilation
// needed for new studies (the same plan format feeds `atlas_pilot --plan`).
//
// The study here asks a question the paper's §5 raises: if an ISP ships the
// buggy XB6 to a fraction of its customers, how does the detected CPE
// interception scale with that fraction?
//
// Usage: custom_fleet [common flags]
//   --journal checkpoints each iteration to PREFIX-<buggy>.jsonl (the shared
//   flag's value is interpreted as a prefix here); --resume picks up a study
//   that was killed partway (finished iterations are replayed from their
//   journals instead of re-measured). The rest of the shared flags —
//   supervision and observability — are listed in examples/cli_common.h.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "atlas/fleet_json.h"
#include "atlas/measurement.h"
#include "cli_common.h"
#include "report/aggregate.h"
#include "report/table.h"

using namespace dnslocate;

int main(int argc, char** argv) {
  examples::CommonCli common;
  for (int i = 1; i < argc; ++i) {
    common.parse(argc, argv, i);
  }
  if (!common.validate()) return 1;
  const char* journal_prefix = common.journal;
  common.enable_observability();

  std::puts("custom study: buggy-XB6 deployment fraction vs detected CPE interception\n");

  report::TextTable table({"buggy XB6 routers", "fleet size", "detected CPE",
                           "detected total", "accuracy"});

  for (int buggy : {0, 5, 15, 30}) {
    // Build the plan programmatically (it round-trips through JSON; see
    // fleet_to_json / fleet_from_json).
    std::string plan_json = R"({
      "seed": 99, "ipv6_fraction": 0.4,
      "orgs": [
        {"org": "StudyNet", "asn": 64700, "country": "US", "probes": 600,
         "cpe_xb6": )" + std::to_string(buggy) + R"(,
         "isp_allfour": 2, "one_allowed": 3},
        {"org": "ControlNet", "asn": 64701, "country": "DE", "probes": 400}
      ]
    })";
    auto parsed = atlas::fleet_from_json(plan_json);
    if (!parsed.ok()) {
      std::fprintf(stderr, "plan error: %s\n", parsed.errors[0].c_str());
      return 1;
    }
    auto fleet = parsed.generate();

    atlas::MeasurementOptions options;
    common.apply(options);
    options.cancel = examples::install_signal_drain();
    std::string journal_path;
    if (journal_prefix != nullptr) {
      journal_path = std::string(journal_prefix) + "-" + std::to_string(buggy) + ".jsonl";
      options.journal_path = journal_path;
    }

    atlas::MeasurementRun run;
    if (common.resume) {
      atlas::ResumeReport report;
      run = atlas::resume_fleet(journal_path, fleet, options, &report);
      for (const auto& warning : report.warnings)
        std::fprintf(stderr, "resume (%d buggy): %s\n", buggy, warning.c_str());
      std::printf("  %d buggy: resumed %zu probes from %s\n", buggy, report.reused,
                  journal_path.c_str());
    } else {
      run = atlas::run_fleet(fleet, options);
    }
    if (examples::report_signal_drain(run, journal_prefix)) {
      common.export_observability();
      return 130;
    }
    if (run.stopped_early())
      std::fprintf(stderr, "  %d buggy: stopped early, %zu probes not run\n", buggy,
                   run.not_run);
    auto matrix = report::accuracy_matrix(run);

    char accuracy[16];
    std::snprintf(accuracy, sizeof accuracy, "%.4f", matrix.accuracy());
    table.add_row({std::to_string(buggy), std::to_string(fleet.size()),
                   std::to_string(run.count_location(core::InterceptorLocation::cpe)),
                   std::to_string(run.intercepted_count()), accuracy});
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts("\nDetected CPE interception tracks the deployed buggy-router count");
  std::puts("one-for-one — the technique measures exactly the deployment knob.");
  common.export_observability();
  return 0;
}
