// Flags shared by the example binaries (atlas_pilot, custom_fleet): the
// supervision knobs and the observability outputs. One parser, one help
// text, one behaviour — the binaries only keep their tool-specific flags.
#pragma once

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "atlas/measurement.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace dnslocate::examples {

/// The run-level cancellation token the signal handler fires. A static
/// local so the shared state exists before the handler can run.
inline core::CancelToken& drain_token() {
  static core::CancelToken token = core::CancelToken::manual();
  return token;
}

/// Install a graceful SIGINT/SIGTERM drain and return the token to put on
/// MeasurementOptions::cancel. The first signal cancels the token: workers
/// stop dispatching new probes, in-flight probes finish, and the journal is
/// flushed + fsync'd before run_fleet returns — a Ctrl-C'd run is always
/// resumable with --resume. SA_RESETHAND restores the default disposition,
/// so a second signal kills immediately (the journal still salvages).
inline core::CancelToken install_signal_drain() {
  drain_token();  // materialize shared state before the handler can fire
  struct sigaction action {};
  // cancel() is one relaxed atomic store on pre-existing shared state —
  // async-signal-safe in the only way that matters here.
  action.sa_handler = [](int) { drain_token().cancel(); };
  sigemptyset(&action.sa_mask);
  action.sa_flags = static_cast<int>(SA_RESETHAND);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  return drain_token();
}

/// Post-run drain report: if the run was interrupted by a signal, say what
/// survived and how to continue. Returns true when the run was drained.
inline bool report_signal_drain(const atlas::MeasurementRun& run, const char* journal) {
  if (!drain_token().cancelled()) return false;
  std::fprintf(stderr,
               "\ninterrupted by signal: %zu probes completed, %zu not run; "
               "journal %s — rerun with --resume to finish\n",
               run.records.size(), run.not_run,
               journal != nullptr ? journal : "disabled (pass --journal to checkpoint)");
  return true;
}

/// Common flag values. `journal` is a path for atlas_pilot and a prefix for
/// custom_fleet (which runs several journaled iterations) — the flag and its
/// validation are shared, the interpretation is the caller's.
struct CommonCli {
  const char* journal = nullptr;
  bool resume = false;
  long probe_deadline_ms = 0;
  long max_failures = 0;
  const char* metrics_out = nullptr;
  const char* trace_out = nullptr;
  long trace_buffer_events = 8192;
  atlas::QueryEngine engine = atlas::QueryEngine::async;
  long max_inflight = 64;
  long shards = 1;

  static constexpr const char* kUsage =
      "  --journal PATH        checkpoint completed probes to an append-only journal\n"
      "  --resume              restart from the journal, re-measuring only what is missing\n"
      "  --probe-deadline-ms N bound each probe's wall clock (overruns recorded as\n"
      "                        deadline_exceeded with a partial verdict)\n"
      "  --max-failures N      stop dispatching new probes after N failures\n"
      "  --engine MODE         per-stage query execution: 'async' (batched fan-out,\n"
      "                        default) or 'blocking' (historical sequential loop);\n"
      "                        both produce identical verdicts\n"
      "  --max-inflight N      cap concurrently outstanding queries per batch when a\n"
      "                        socket engine fans out (default 64; simulated probes\n"
      "                        ignore this)\n"
      "  --shards N            shard the fleet across N worker shards (stable hash of\n"
      "                        probe id; per-probe results are identical at any shard\n"
      "                        count; 0 = one shard per hardware thread)\n"
      "  --metrics-out PATH    write registry metrics as Prometheus text exposition\n"
      "  --trace-out PATH      write spans as Chrome trace-event JSON (load in Perfetto\n"
      "                        or chrome://tracing)\n"
      "  --trace-buffer-events N  per-thread span ring capacity (default 8192)\n";

  /// Try to consume argv[i] (and its value) as a common flag. Returns true
  /// if consumed, advancing `i` past any value. Callers put this first in
  /// their argument loop and handle tool-specific flags on false.
  bool parse(int argc, char** argv, int& i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (const char* v = value("--journal")) {
      journal = v;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (const char* v2 = value("--probe-deadline-ms")) {
      probe_deadline_ms = std::atol(v2);
    } else if (const char* v3 = value("--max-failures")) {
      max_failures = std::atol(v3);
    } else if (const char* v4 = value("--metrics-out")) {
      metrics_out = v4;
    } else if (const char* v5 = value("--trace-out")) {
      trace_out = v5;
    } else if (const char* v6 = value("--trace-buffer-events")) {
      trace_buffer_events = std::atol(v6);
    } else if (const char* v7 = value("--engine")) {
      auto parsed = atlas::query_engine_from(v7);
      if (!parsed) {
        std::fprintf(stderr, "--engine must be 'blocking' or 'async' (got '%s')\n", v7);
        std::exit(2);
      }
      engine = *parsed;
    } else if (const char* v8 = value("--max-inflight")) {
      max_inflight = std::atol(v8);
    } else if (const char* v9 = value("--shards")) {
      shards = std::atol(v9);
    } else {
      return false;
    }
    return true;
  }

  /// Flag combinations that cannot work; prints to stderr, returns false.
  [[nodiscard]] bool validate() const {
    if (resume && journal == nullptr) {
      std::fprintf(stderr, "--resume requires --journal PATH\n");
      return false;
    }
    if (trace_buffer_events <= 0) {
      std::fprintf(stderr, "--trace-buffer-events must be positive\n");
      return false;
    }
    if (max_inflight <= 0) {
      std::fprintf(stderr, "--max-inflight must be positive\n");
      return false;
    }
    if (shards < 0) {
      std::fprintf(stderr, "--shards must be non-negative (0 = hardware threads)\n");
      return false;
    }
    return true;
  }

  /// Copy the supervision knobs onto measurement options. The journal path
  /// is NOT applied here (atlas_pilot uses it verbatim, custom_fleet derives
  /// per-iteration paths from it).
  void apply(atlas::MeasurementOptions& options) const {
    if (probe_deadline_ms > 0)
      options.probe_deadline = std::chrono::milliseconds(probe_deadline_ms);
    if (max_failures > 0) options.max_failures = static_cast<std::size_t>(max_failures);
    options.engine = engine;
    options.max_inflight = static_cast<std::size_t>(max_inflight);
    options.shards = static_cast<unsigned>(shards);
  }

  /// Turn the observability subsystem on if any output was requested. Must
  /// run before worker threads spawn (the enable flags are unsynchronized).
  void enable_observability() const {
    if (metrics_out == nullptr && trace_out == nullptr) return;
    obs::Config config;
    config.metrics = metrics_out != nullptr;
    config.tracing = trace_out != nullptr;
    config.trace_buffer_events = static_cast<std::size_t>(trace_buffer_events);
    obs::enable(config);
  }

  /// Write the requested exports. Call after the run, once workers joined.
  void export_observability() const {
    if (metrics_out != nullptr) {
      std::ofstream out(metrics_out);
      out << obs::prometheus_text();
      std::printf("wrote metrics to %s\n", metrics_out);
    }
    if (trace_out != nullptr) {
      std::ofstream out(trace_out);
      out << obs::chrome_trace_json();
      std::uint64_t lost = obs::collector().dropped();
      if (lost > 0)
        std::fprintf(stderr,
                     "trace: %llu spans overwritten (raise --trace-buffer-events)\n",
                     static_cast<unsigned long long>(lost));
      std::printf("wrote trace to %s (open in Perfetto or chrome://tracing)\n", trace_out);
    }
  }
};

}  // namespace dnslocate::examples
